#!/usr/bin/env python3
"""Compare two BENCH_*.json files (default: the two newest in the series).

Usage:
    scripts/compare_bench.py [--threshold PCT] [--base FILE --head FILE]
    scripts/compare_bench.py [--threshold PCT] [CURRENT [PREVIOUS]]

`--head` is the candidate run and `--base` the baseline it is judged
against; both must be given together and take precedence over the
positional form. With no files named, the script picks the two
highest-numbered BENCH_<n>.json at the repo root, sorted by the *numeric*
index (BENCH_10 > BENCH_9 — a plain filename sort gets this wrong). With
one positional argument it compares that file against the
highest-numbered *other* file. Exits non-zero when any directional metric
regressed by more than the threshold (default 10%).

Direction is inferred from the metric name:
  * keys ending in `_ns` (latencies) regress when they go UP;
  * keys ending in `_per_sec` (throughputs) regress when they go DOWN;
  * everything else (counters such as `overflow_inline`, `steal_aborts`,
    `idle_wakeups`, `deque_grows`) is informational only — reported, never
    failed on, because counts are workload- not performance-determined.

Nested objects are walked; the comparison key is the dotted path.
"""

import argparse
import glob
import json
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_index(path):
    m = re.search(r"BENCH_(\d+)\.json$", os.path.basename(path))
    return int(m.group(1)) if m else -1


def flatten(obj, prefix=""):
    """Yield (dotted_key, number) for every numeric leaf."""
    if isinstance(obj, dict):
        for k, v in obj.items():
            yield from flatten(v, f"{prefix}{k}." if prefix else f"{k}.")
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        yield prefix.rstrip("."), float(obj)
    # strings / nulls / lists of non-metrics are ignored


def direction(key):
    """-1: lower is better, +1: higher is better, 0: informational."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf.endswith("_ns"):
        return -1
    if leaf.endswith("_per_sec"):
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?", help="current BENCH_*.json (positional form)")
    ap.add_argument("previous", nargs="?", help="baseline BENCH_*.json (positional form)")
    ap.add_argument("--base", help="explicit baseline BENCH_*.json (requires --head)")
    ap.add_argument("--head", help="explicit candidate BENCH_*.json (requires --base)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default 10)",
    )
    args = ap.parse_args()

    if bool(args.base) != bool(args.head):
        print("compare_bench: --base and --head must be given together", file=sys.stderr)
        return 2
    if args.base and (args.current or args.previous):
        print("compare_bench: --base/--head conflict with positional files", file=sys.stderr)
        return 2

    # Numeric sort on the series index: BENCH_10.json must rank above
    # BENCH_9.json, which a lexicographic filename sort would invert.
    series = sorted(glob.glob(os.path.join(ROOT, "BENCH_*.json")), key=bench_index)
    if args.head:
        current, previous = args.head, args.base
        for path in (current, previous):
            if not os.path.exists(path):
                print(f"compare_bench: no such file: {path}", file=sys.stderr)
                return 2
        with open(previous) as f:
            prev = dict(flatten(json.load(f)))
        with open(current) as f:
            cur = dict(flatten(json.load(f)))
        return report(current, previous, prev, cur, args.threshold)
    current = args.current or (series[-1] if series else None)
    if current is None:
        print("compare_bench: no BENCH_*.json found at repo root", file=sys.stderr)
        return 2
    previous = args.previous or next(
        (p for p in reversed(series) if os.path.abspath(p) != os.path.abspath(current)),
        None,
    )
    if previous is None:
        print(f"compare_bench: {os.path.basename(current)} is the first entry "
              "in the series; nothing to compare against")
        return 0

    with open(previous) as f:
        prev = dict(flatten(json.load(f)))
    with open(current) as f:
        cur = dict(flatten(json.load(f)))
    return report(current, previous, prev, cur, args.threshold)


def report(current, previous, prev, cur, threshold):
    print(f"compare_bench: {os.path.basename(current)} vs "
          f"{os.path.basename(previous)} (threshold {threshold:.0f}%)")
    regressions = []
    for key in sorted(cur):
        if key not in prev:
            print(f"  new     {key} = {cur[key]:g}")
            continue
        old, new = prev[key], cur[key]
        sense = direction(key)
        if old == 0:
            delta_pct = 0.0 if new == 0 else float("inf")
        else:
            delta_pct = (new - old) / abs(old) * 100.0
        tag = "info" if sense == 0 else ("ok" if -sense * delta_pct <= threshold else "REGRESSED")
        print(f"  {tag:<9} {key}: {old:g} -> {new:g} ({delta_pct:+.1f}%)")
        if tag == "REGRESSED":
            regressions.append((key, old, new, delta_pct))
    for key in sorted(set(prev) - set(cur)):
        print(f"  dropped {key} (was {prev[key]:g})")

    if regressions:
        print(f"compare_bench: {len(regressions)} metric(s) regressed by more "
              f"than {threshold:.0f}%:", file=sys.stderr)
        for key, old, new, pct in regressions:
            print(f"  {key}: {old:g} -> {new:g} ({pct:+.1f}%)", file=sys.stderr)
        return 1
    print("compare_bench: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
