#!/usr/bin/env python3
"""Memory-ordering contract lint (ISSUE 9).

Every `Ordering::*` literal in `crates/core/src` must be covered by a
contract row in `docs/ordering_contract.md` that names the file, the
atomic field and operation (or containing function, for orderings that
appear outside an atomic call, e.g. the hb checker's dispatch match),
the *allowed* orderings, and a one-line justification.  The lint fails
CI when

  * an `Ordering::` use has no covering contract row, or
  * the ordering used deviates from the row's allowed set, or
  * a contract row matches no occurrence at all (stale row).

It is purely offline: stdlib only, no network, no cargo.

Usage:
    scripts/ordering_lint.py              # lint (exit 1 on violation)
    scripts/ordering_lint.py --dump       # print observed-inventory table
    scripts/ordering_lint.py --root DIR   # repo root (default: script/../)

Matching model
--------------
An occurrence is keyed `(file, key)` where `file` is relative to
`crates/core/src` and `key` is either

  * `field.op`  — receiver identifier + atomic method, e.g.
    `public_bot.store`, `age.compare_exchange`; free `fence(...)` calls
    key as `fence.fence`;
  * `fn:name`   — fallback for orderings not inside an atomic call
    (the enclosing function), e.g. the hb shim's ordering match.

The binding scans for the innermost enclosing call among
load/store/swap/compare_exchange[_weak]/fetch_*/fetch_update/fence, by
paren matching, so multi-line calls and nested calls
(`a.store(b.load(Acquire), Release)`) bind correctly.

`#[cfg(test)]`-gated regions, comments, and string literals are
stripped before scanning: the contract governs shipped code, not test
scaffolding.
"""

from __future__ import annotations

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

ORDERINGS = {"Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"}

ATOMIC_METHODS = (
    "compare_exchange_weak",
    "compare_exchange",
    "fetch_update",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "load",
    "store",
    "swap",
)

OP_SITE_RE = re.compile(
    r"(?:(?P<recv>[A-Za-z_][A-Za-z0-9_]*)\s*\.\s*(?P<meth>"
    + "|".join(ATOMIC_METHODS)
    + r")|(?<![A-Za-z0-9_.])(?P<fence>fence))\s*\("
)
ORDERING_RE = re.compile(r"\bOrdering\s*::\s*(?P<ord>[A-Za-z]+)")
FN_RE = re.compile(r"\bfn\s+([A-Za-z_][A-Za-z0-9_]*)")
CFG_TEST_RE = re.compile(r"#\s*\[\s*cfg\s*\(\s*(?:test\b|all\s*\(\s*test\b|any\s*\(\s*test\b)")


def strip_noise(src: str) -> str:
    """Blank out comments and string/char literals, preserving offsets."""
    out = list(src)
    i, n = 0, len(src)
    while i < n:
        c = src[i]
        if c == "/" and i + 1 < n and src[i + 1] == "/":
            j = src.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and src[i + 1] == "*":
            depth, j = 1, i + 2
            while j < n and depth:
                if src.startswith("/*", j):
                    depth += 1
                    j += 2
                elif src.startswith("*/", j):
                    depth -= 1
                    j += 2
                else:
                    j += 1
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c == '"':
            j = i + 1
            while j < n:
                if src[j] == "\\":
                    j += 2
                elif src[j] == '"':
                    j += 1
                    break
                else:
                    j += 1
            for k in range(i + 1, min(j - 1, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c == "'":
            # Char literal or lifetime. Treat as char literal only when it
            # closes within a few chars ('x', '\n', '\u{..}').
            m = re.match(r"'(?:\\u\{[0-9a-fA-F]+\}|\\.|[^'\\])'", src[i:])
            if m:
                for k in range(i, i + m.end()):
                    out[k] = " "
                i += m.end()
            else:
                i += 1
        else:
            i += 1
    return "".join(out)


def strip_cfg_test(src: str) -> str:
    """Blank out every `#[cfg(test)] <item> { .. }` region, offset-preserving."""
    out = list(src)
    for m in CFG_TEST_RE.finditer(src):
        # Find the opening brace of the gated item and blank to its match.
        i = src.find("{", m.end())
        if i == -1:
            continue
        depth, j = 1, i + 1
        n = len(src)
        while j < n and depth:
            if out[j] == "{":
                depth += 1
            elif out[j] == "}":
                depth -= 1
            j += 1
        for k in range(m.start(), j):
            if out[k] != "\n":
                out[k] = " "
    return "".join(out)


class Occurrence:
    __slots__ = ("file", "line", "key", "ordering")

    def __init__(self, file: str, line: int, key: str, ordering: str):
        self.file = file
        self.line = line
        self.key = key
        self.ordering = ordering


def bind_occurrences(rel: str, src: str) -> list[Occurrence]:
    """Assign every Ordering:: token to its innermost atomic-call site."""
    clean = strip_cfg_test(strip_noise(src))
    # Pre-compute op sites with their paren spans.
    sites = []  # (open_paren_idx, close_idx, key)
    for m in OP_SITE_RE.finditer(clean):
        open_idx = m.end() - 1
        depth, j = 1, open_idx + 1
        n = len(clean)
        while j < n and depth:
            if clean[j] == "(":
                depth += 1
            elif clean[j] == ")":
                depth -= 1
            j += 1
        key = "fence.fence" if m.group("fence") else f"{m.group('recv')}.{m.group('meth')}"
        sites.append((open_idx, j, key))
    fns = [(m.start(), m.group(1)) for m in FN_RE.finditer(clean)]

    occs = []
    for m in ORDERING_RE.finditer(clean):
        ordering = m.group("ord")
        if ordering not in ORDERINGS:
            continue
        pos = m.start()
        line = clean.count("\n", 0, pos) + 1
        # Innermost enclosing site = the one with the latest open paren
        # before pos whose span still contains pos.
        best = None
        for open_idx, close_idx, key in sites:
            if open_idx < pos < close_idx and (best is None or open_idx > best[0]):
                best = (open_idx, key)
        if best:
            key = best[1]
        else:
            prior = [name for start, name in fns if start < pos]
            key = f"fn:{prior[-1]}" if prior else "fn:?"
        occs.append(Occurrence(rel, line, key, ordering))
    return occs


ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*`([^`]+)`\s*\|\s*([^|]*)\|(.*)$")


def parse_contract(path: Path):
    """Parse `| `file` | `key` | Allowed | Justification |` table rows."""
    rows = {}  # (file, key) -> (allowed set, lineno)
    errors = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        m = ROW_RE.match(line.strip())
        if not m:
            continue
        file, key, allowed_raw = m.group(1), m.group(2), m.group(3)
        allowed = {a.strip() for a in allowed_raw.replace(",", " ").split() if a.strip()}
        bad = allowed - ORDERINGS
        if bad:
            errors.append(f"{path}:{lineno}: unknown ordering(s) {sorted(bad)} in row `{file}` `{key}`")
            allowed &= ORDERINGS
        if (file, key) in rows:
            errors.append(f"{path}:{lineno}: duplicate row for `{file}` `{key}`")
        rows[(file, key)] = (allowed, lineno)
    return rows, errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--dump", action="store_true", help="print observed inventory as a table skeleton")
    args = ap.parse_args()

    src_root = args.root / "crates" / "core" / "src"
    contract_path = args.root / "docs" / "ordering_contract.md"

    occs: list[Occurrence] = []
    for path in sorted(src_root.rglob("*.rs")):
        rel = path.relative_to(src_root).as_posix()
        occs.extend(bind_occurrences(rel, path.read_text()))

    if args.dump:
        grouped = defaultdict(lambda: (set(), []))
        for o in occs:
            seen, lines = grouped[(o.file, o.key)]
            seen.add(o.ordering)
            lines.append(o.line)
        print("| File | Site | Allowed | Justification |")
        print("|---|---|---|---|")
        for (file, key), (seen, lines) in sorted(grouped.items()):
            ords = ", ".join(sorted(seen, key=list(ORDERINGS).index)) if seen else ""
            print(f"| `{file}` | `{key}` | {ords} | TODO (lines {', '.join(map(str, sorted(set(lines))))}) |")
        print(f"\n{len(occs)} occurrences, {len(grouped)} distinct sites", file=sys.stderr)
        return 0

    if not contract_path.exists():
        print(f"ordering-lint: missing contract doc {contract_path}", file=sys.stderr)
        return 1

    rows, errors = parse_contract(contract_path)
    used_rows = set()
    for o in occs:
        row = rows.get((o.file, o.key))
        if row is None:
            errors.append(
                f"crates/core/src/{o.file}:{o.line}: `Ordering::{o.ordering}` at site `{o.key}` "
                f"has no contract row in docs/ordering_contract.md"
            )
            continue
        allowed, row_line = row
        used_rows.add((o.file, o.key))
        if o.ordering not in allowed:
            errors.append(
                f"crates/core/src/{o.file}:{o.line}: `Ordering::{o.ordering}` at site `{o.key}` "
                f"deviates from contract row (docs/ordering_contract.md:{row_line} allows "
                f"{{{', '.join(sorted(allowed))}}})"
            )
    for (file, key), (_, row_line) in sorted(rows.items()):
        if (file, key) not in used_rows:
            errors.append(
                f"docs/ordering_contract.md:{row_line}: stale row `{file}` `{key}` matches no "
                f"`Ordering::` occurrence in crates/core/src"
            )

    if errors:
        for e in errors:
            print(f"ordering-lint: {e}", file=sys.stderr)
        print(f"ordering-lint: FAIL ({len(errors)} violation(s), {len(occs)} occurrences checked)", file=sys.stderr)
        return 1
    print(f"ordering-lint: OK ({len(occs)} `Ordering::` occurrences across {len(set(o.file for o in occs))} files, "
          f"{len(rows)} contract rows, 100% coverage)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
