//! Every scheduler variant must compute byte-identical results for the
//! deterministic PBBS benchmarks, at every worker count — the property
//! that lets the paper compare schedulers on timing alone.

use lcws::pbbs::registry::all_instances;
use lcws::{Policies, PoolBuilder, StealAmount, Variant, VictimSelection};

fn tiny_scale() {
    std::env::set_var("LCWS_SCALE", "0.01");
}

#[test]
fn checksums_agree_across_variants_and_thread_counts() {
    tiny_scale();
    // A representative subset spanning workload classes (flat loops,
    // sort-heavy, irregular graph, geometry, strings).
    let wanted = [
        "integerSort/randomSeq_int",
        "comparisonSort/randomSeq_double",
        "histogram/randomSeq_256_int",
        "removeDuplicates/randomSeq_100K_int",
        "breadthFirstSearch/rMatGraph",
        "maximalIndependentSet/randLocalGraph",
        "spanningForest/randLocalGraph",
        "convexHull/2DinSphere",
        "wordCounts/trigramSeq",
        "suffixArray/dna",
    ];
    for inst in all_instances()
        .iter()
        .filter(|i| wanted.contains(&i.label().as_str()))
    {
        let prepared = inst.prepare();
        let mut reference: Option<u64> = None;
        for variant in Variant::ALL {
            for threads in [1usize, 3] {
                let pool = PoolBuilder::new(variant).threads(threads).build();
                let outcome = pool.run(|| prepared.run_parallel());
                match reference {
                    None => reference = Some(outcome.checksum),
                    Some(r) => assert_eq!(
                        r,
                        outcome.checksum,
                        "{} diverged under {variant} with {threads} threads",
                        inst.label()
                    ),
                }
            }
        }
    }
}

/// The policy layer must preserve the equivalence property: pools built
/// from a variant's explicit policy bundle, and pools running the new open
/// axes (near-first victims, steal-half batches), must reproduce the exact
/// checksums of the plain variant pools — scheduling policy may move work,
/// never change answers.
#[test]
fn checksums_agree_across_policy_compositions() {
    tiny_scale();
    let wanted = [
        "integerSort/randomSeq_int",
        "breadthFirstSearch/rMatGraph",
        "convexHull/2DinSphere",
    ];
    for inst in all_instances()
        .iter()
        .filter(|i| wanted.contains(&i.label().as_str()))
    {
        let prepared = inst.prepare();
        let mut reference: Option<u64> = None;
        let mut check = |label: &str, variant: Variant, policies: Policies| {
            let pool = PoolBuilder::new(variant)
                .policies(policies)
                .threads(3)
                .build();
            let outcome = pool.run(|| prepared.run_parallel());
            match reference {
                None => reference = Some(outcome.checksum),
                Some(r) => assert_eq!(
                    r,
                    outcome.checksum,
                    "{} diverged under composition {label}",
                    inst.label()
                ),
            }
        };
        // The five named compositions, explicitly.
        for variant in Variant::ALL {
            check(&variant.to_string(), variant, variant.policies());
        }
        // The new axes over them.
        for variant in Variant::ALL {
            let mut p = variant.policies();
            p.victim = VictimSelection::NearFirst;
            check(&format!("{variant}+near-first"), variant, p);
        }
        let mut p = Policies::signal();
        p.steal = StealAmount::Half;
        check("signal+steal-half", Variant::Signal, p);
    }
}

#[test]
fn repeated_runs_are_deterministic_per_variant() {
    tiny_scale();
    let instances = all_instances();
    let inst = instances
        .iter()
        .find(|i| i.label() == "maximalMatching/rMatGraph")
        .expect("instance registered");
    let prepared = inst.prepare();
    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    let first = pool.run(|| prepared.run_parallel()).checksum;
    for _ in 0..5 {
        let again = pool.run(|| prepared.run_parallel()).checksum;
        assert_eq!(first, again, "speculative matching must be deterministic");
    }
}
