//! Runs every registered PBBS instance's checker (parallel result vs
//! sequential reference) at a small scale, inside a signal-LCWS pool —
//! end-to-end validation of the whole suite on the paper's scheduler.

use lcws::pbbs::registry::all_instances;
use lcws::{PoolBuilder, Variant};

#[test]
fn every_instance_verifies_under_signal_lcws() {
    std::env::set_var("LCWS_SCALE", "0.005");
    let pool = PoolBuilder::new(Variant::Signal).threads(3).build();
    for inst in all_instances() {
        let prepared = inst.prepare();
        let result = pool.run(|| prepared.verify());
        assert!(
            result.is_ok(),
            "{} failed verification: {}",
            inst.label(),
            result.unwrap_err()
        );
    }
}

#[test]
fn every_instance_verifies_under_conservative_exposure() {
    std::env::set_var("LCWS_SCALE", "0.005");
    let pool = PoolBuilder::new(Variant::SignalConservative)
        .threads(2)
        .build();
    for inst in all_instances() {
        let prepared = inst.prepare();
        let result = pool.run(|| prepared.verify());
        assert!(
            result.is_ok(),
            "{} failed verification: {}",
            inst.label(),
            result.unwrap_err()
        );
    }
}
