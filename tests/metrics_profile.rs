//! Mini-Figure-3 assertions: the synchronization-profile *shapes* the
//! paper reports must hold on live runs — LCWS variants execute a small
//! fraction of WS's fences and CAS ops, conservative exposure never
//! publishes a victim's last task, and WS never exposes or signals at all.

use lcws::{par_for_grain, PoolBuilder, Snapshot, Variant};

fn profile(variant: Variant, threads: usize) -> Snapshot {
    let pool = PoolBuilder::new(variant).threads(threads).build();
    let (_, m) = pool.run_measured(|| {
        par_for_grain(0..150_000, 64, |i| {
            std::hint::black_box(i);
        });
    });
    m
}

#[test]
fn lcws_fence_ratio_is_far_below_ws() {
    // Figure 3a: USLCWS uses less than 1% of WS's fences (we allow 10%
    // headroom for the small input and single-core host).
    let ws = profile(Variant::Ws, 2);
    assert!(ws.fences() > 1_000, "WS must fence per local op: {ws}");
    for variant in [Variant::UsLcws, Variant::Signal, Variant::SignalHalf] {
        let m = profile(variant, 2);
        let ratio = m.fences() as f64 / ws.fences() as f64;
        assert!(
            ratio < 0.10,
            "{variant}: fence ratio {ratio:.4} not ≪ 1 ({m} vs ws {ws})"
        );
    }
}

#[test]
fn lcws_cas_ratio_is_below_ws() {
    // Figure 3b: USLCWS executes well under half of WS's CAS operations.
    let ws = profile(Variant::Ws, 2);
    let us = profile(Variant::UsLcws, 2);
    let ratio = us.cas() as f64 / ws.cas().max(1) as f64;
    assert!(ratio < 0.60, "CAS ratio {ratio:.3} too high ({us} vs {ws})");
}

#[test]
fn ws_never_exposes_or_signals() {
    let ws = profile(Variant::Ws, 4);
    assert_eq!(ws.exposures(), 0);
    assert_eq!(ws.signals_sent(), 0);
    assert_eq!(ws.get(lcws::Counter::StealPrivate), 0);
}

#[test]
fn uslcws_never_signals() {
    let us = profile(Variant::UsLcws, 4);
    assert_eq!(
        us.signals_sent(),
        0,
        "user-space variant must not use signals"
    );
}

#[test]
fn exposure_accounting_is_consistent() {
    // Exposed tasks are either stolen or re-taken by the owner; the two
    // sinks can never exceed the source.
    for variant in [Variant::Signal, Variant::SignalHalf, Variant::UsLcws] {
        let m = profile(variant, 4);
        assert!(
            m.steals_ok() + m.owner_public_pops() <= m.exposures() + 1,
            "{variant}: sinks exceed exposures: {m}"
        );
    }
}

#[test]
fn single_worker_lcws_runs_nearly_synchronization_free() {
    // The limiting case of the paper's low-processor-count argument: with
    // P = 1 nothing is ever stolen, so an LCWS scheduler should execute
    // (almost) no fences and no CAS at all, while WS still pays per-op.
    let us = profile(Variant::UsLcws, 1);
    assert_eq!(
        us.fences(),
        0,
        "no thieves → no public pops → no fences: {us}"
    );
    assert_eq!(us.cas(), 0, "{us}");
    let ws = profile(Variant::Ws, 1);
    assert!(ws.fences() > 1_000, "WS pays fences even alone: {ws}");
}

#[test]
fn signals_flow_only_under_signal_variants_with_thieves() {
    // With oversubscribed workers on a fine-grained loop, thieves find
    // private work and must request exposure at least occasionally. On a
    // heavily loaded single-core host worker 0 can occasionally finish
    // before any helper is scheduled, so grow the workload and retry.
    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    for attempt in 0..6 {
        let n = 200_000usize << attempt;
        let (_, m) = pool.run_measured(|| {
            par_for_grain(0..n, 64, |i| {
                std::hint::black_box(i);
            });
        });
        if m.get(lcws::Counter::StealAttempt) > 0 {
            return;
        }
    }
    panic!("thieves never attempted a steal across six growing runs");
}
