//! # lcws — Efficient Synchronization-Light Work Stealing (SPAA '23) in Rust
//!
//! Facade crate: re-exports the scheduler core, the Parlay-style parallel
//! toolkit, and the PBBS benchmark suite from one place. See `README.md`
//! for the project layout, `DESIGN.md` for the paper→code map, and
//! `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use lcws::{PoolBuilder, Variant};
//!
//! let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
//! let mut data: Vec<u64> = (0..10_000).rev().collect();
//! pool.run(|| lcws::parlay::sort(&mut data));
//! assert!(data.windows(2).all(|w| w[0] <= w[1]));
//! ```

#![deny(missing_docs)]

pub use lcws_core::{
    default_grain, in_pool, join, num_workers, par_for, par_for_grain, scope, worker_index,
    Counter, DequeKind, ExposurePolicy, IdlePolicy, NotifyChannel, ParseVariantError, Policies,
    PolicyError, PoolBuilder, PopBottomMode, Scope, Snapshot, SplitDeque, StealAmount, ThreadPool,
    Variant, VictimSelection,
};

/// The Parlay-style parallel algorithms toolkit (see `parlay-rs`).
pub mod parlay {
    pub use parlay_rs::*;
}

/// The PBBS benchmark suite and input generators (see `pbbs-rs`).
pub mod pbbs {
    pub use pbbs_rs::*;
}

/// Synchronization-operation instrumentation (see `lcws-metrics`).
pub mod metrics {
    pub use lcws_metrics::*;
}
