//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros — on top of a plain wall-clock measurement
//! loop.
//!
//! Statistics are deliberately simple: per sample we time a batch of
//! iterations sized so one batch takes ≳1ms (amortizing timer overhead),
//! collect `sample_size` samples, and report min / median / mean ns per
//! iteration. There is no warm-up analysis, outlier classification, or
//! HTML report — results print to stdout in a `cargo bench`-like format.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Elements- or bytes-per-iteration annotation; used to print a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost across a measured batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup runs before every routine call; batches of one.
    PerIteration,
    /// Small inputs: large batches per setup.
    SmallInput,
    /// Large inputs: modest batches per setup.
    LargeInput,
}

impl BatchSize {
    fn batch_len(self) -> u64 {
        match self {
            BatchSize::PerIteration => 1,
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
        }
    }
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    #[doc(hidden)]
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; drives the measurement loop.
pub struct Bencher {
    /// Iterations the harness asks this sample to run.
    iters: u64,
    /// Measured time for those iterations (set by `iter*`).
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` run `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` with fresh input from `setup` each batch; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();
        let mut remaining = self.iters;
        let mut elapsed = Duration::ZERO;
        while remaining > 0 {
            let n = remaining.min(batch);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            elapsed += start.elapsed();
            remaining -= n;
        }
        self.elapsed = elapsed;
    }

    /// Like `iter_batched`, with the input passed by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

struct Settings {
    sample_size: usize,
    throughput: Option<Throughput>,
}

/// One benchmark's collected samples, as ns/iter.
fn run_samples<F: FnMut(&mut Bencher)>(settings: &Settings, f: &mut F) -> Vec<f64> {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes ≥1ms (or the count reaches 2^20), so timer noise is amortized.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= (1 << 20) {
            break;
        }
        iters *= 2;
    }
    (0..settings.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect()
}

fn report(id: &str, settings: &Settings, samples: &mut [f64]) {
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let rate = match settings.throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3} Melem/s)", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / median * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("{id:<60} min {min:>12.1} ns  median {median:>12.1} ns  mean {mean:>12.1} ns{rate}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Time `f` under `id`.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut samples = run_samples(&self.settings, &mut f);
        report(&full, &self.settings, &mut samples);
        self
    }

    /// Time `f` under `id`, passing `input` through.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Upstream parses CLI filters here; the shim runs everything.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name} --");
        BenchmarkGroup {
            name,
            settings: Settings {
                sample_size: self.sample_size,
                throughput: None,
            },
            _criterion: self,
        }
    }

    /// Time `f` under `id` outside any group.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Criterion
    where
        N: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let settings = Settings {
            sample_size: self.sample_size,
            throughput: None,
        };
        let mut samples = run_samples(&settings, &mut f);
        report(&id.into_id(), &settings, &mut samples);
        self
    }
}

/// Declare a benchmark group: either `criterion_group!(name, targets...)`
/// or the braced form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_self_test");
        g.throughput(Throughput::Elements(1));
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::PerIteration)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        trivial(&mut c);
        c.bench_function("top_level", |b| b.iter(|| black_box(3u32).pow(2)));
    }
}
