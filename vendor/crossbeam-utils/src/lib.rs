//! Offline stand-in for `crossbeam-utils`: only [`CachePadded`].

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line (128 bytes: the
/// x86_64 spatial-prefetcher pair / Apple Silicon line size, matching
/// upstream crossbeam's choice), preventing false sharing between adjacent
/// deque fields — which would otherwise show up directly in the paper's
/// synchronization-cost measurements.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pad `value` to a full cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> CachePadded<T> {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_access() {
        let p = CachePadded::new(42u64);
        assert_eq!(*p, 42);
        assert_eq!(std::mem::align_of_val(&p), 128);
        assert!(std::mem::size_of_val(&p) >= 128);
        assert_eq!(p.into_inner(), 42);
    }
}
