//! Offline stand-in for the `libc` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *exact* subset of libc it uses: POSIX signal
//! installation (`sigaction`) and per-thread signal delivery
//! (`pthread_self` / `pthread_kill`), which the signal-based LCWS
//! schedulers are built on, plus the monotonic clock (`clock_gettime`)
//! that timestamps the async-signal-safe trace layer. The declarations
//! below bind directly to the system C library and use the glibc
//! x86_64/aarch64 Linux ABI layouts.
//!
//! Only Linux is supported — exactly like the upstream paper artifact,
//! which also relies on Linux signal semantics (see DESIGN.md §2).

#![allow(non_camel_case_types)]
#![no_std]

pub type c_int = i32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type pthread_t = c_ulong;
pub type clockid_t = c_int;
pub type time_t = c_long;

/// Opaque C `void` for pointer parameters (mirrors `core::ffi::c_void`).
pub use core::ffi::c_void;

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    pub __val: [c_ulong; 16],
}

/// glibc `struct sigaction` (Linux, non-MIPS layout): handler word first,
/// then the mask, flags, and the legacy restorer pointer.
#[repr(C)]
pub struct sigaction {
    pub sa_sigaction: usize,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<unsafe extern "C" fn()>,
}

/// glibc `siginfo_t` (Linux): 128 bytes; only the three leading fields are
/// laid out by name, the remainder is the kernel's union payload.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad: [c_int; 29],
}

/// `struct timespec` (glibc 64-bit layout).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// Restart interruptible syscalls instead of failing them with `EINTR`.
pub const SA_RESTART: c_int = 0x1000_0000;
/// The handler is the three-argument `sa_sigaction` form; the kernel passes
/// `siginfo_t` and the interrupted context. Registering through the
/// `sa_sigaction` field without this flag relies on the Linux union layout.
pub const SA_SIGINFO: c_int = 0x0000_0004;
/// Monotonic system-wide clock (`clock_gettime`); async-signal-safe per
/// POSIX.1-2008.
pub const CLOCK_MONOTONIC: clockid_t = 1;
/// User-defined signal 1 (Linux, non-MIPS/non-SPARC value).
pub const SIGUSR1: c_int = 10;
/// No such process/thread — `pthread_kill` on an exited target.
pub const ESRCH: c_int = 3;
/// Resource temporarily unavailable (transient send refusal).
pub const EAGAIN: c_int = 11;
/// Invalid argument — e.g. a reused/invalid pthread handle.
pub const EINVAL: c_int = 22;

/// `pthread_sigmask` how-values (Linux/glibc).
pub const SIG_BLOCK: c_int = 0;
/// Unblock the signals in the given set.
pub const SIG_UNBLOCK: c_int = 1;
/// Replace the thread's mask with the given set.
pub const SIG_SETMASK: c_int = 2;

extern "C" {
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn sigaddset(set: *mut sigset_t, signum: c_int) -> c_int;
    pub fn pthread_sigmask(how: c_int, set: *const sigset_t, oldset: *mut sigset_t) -> c_int;
    pub fn pthread_self() -> pthread_t;
    pub fn pthread_kill(thread: pthread_t, sig: c_int) -> c_int;
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}
