//! Offline stand-in for the `libc` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *exact* subset of libc it uses: POSIX signal
//! installation (`sigaction`) and per-thread signal delivery
//! (`pthread_self` / `pthread_kill`), which the signal-based LCWS
//! schedulers are built on. The declarations below bind directly to the
//! system C library and use the glibc x86_64/aarch64 Linux ABI layouts.
//!
//! Only Linux is supported — exactly like the upstream paper artifact,
//! which also relies on Linux signal semantics (see DESIGN.md §2).

#![allow(non_camel_case_types)]
#![no_std]

pub type c_int = i32;
pub type c_ulong = u64;
pub type pthread_t = c_ulong;

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    pub __val: [c_ulong; 16],
}

/// glibc `struct sigaction` (Linux, non-MIPS layout): handler word first,
/// then the mask, flags, and the legacy restorer pointer.
#[repr(C)]
pub struct sigaction {
    pub sa_sigaction: usize,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<unsafe extern "C" fn()>,
}

/// Restart interruptible syscalls instead of failing them with `EINTR`.
pub const SA_RESTART: c_int = 0x1000_0000;
/// User-defined signal 1 (Linux, non-MIPS/non-SPARC value).
pub const SIGUSR1: c_int = 10;
/// No such process/thread — `pthread_kill` on an exited target.
pub const ESRCH: c_int = 3;
/// Resource temporarily unavailable (transient send refusal).
pub const EAGAIN: c_int = 11;
/// Invalid argument — e.g. a reused/invalid pthread handle.
pub const EINVAL: c_int = 22;

extern "C" {
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn pthread_self() -> pthread_t;
    pub fn pthread_kill(thread: pthread_t, sig: c_int) -> c_int;
}
