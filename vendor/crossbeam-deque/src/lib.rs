//! Offline stand-in for `crossbeam-deque`.
//!
//! Implements the [`Worker`]/[`Stealer`] API subset the benchmarks use as
//! their industry-baseline comparison point. The algorithm is the classic
//! Chase–Lev deque with the fence placement of Lê et al. ("Correct and
//! Efficient Work-Stealing for Weak Memory Models", PPoPP '13) — the same
//! algorithm upstream crossbeam-deque implements — so the owner-path cost
//! the `deque_ops` benchmark measures (one SeqCst fence per pop) is
//! representative of the real crate.
//!
//! Differences from upstream: the buffer is fixed-capacity (upstream grows
//! it); pushing beyond [`DEFAULT_CAPACITY`] panics. The workspace only uses
//! this deque in single-kilobyte microbenchmarks.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, Ordering};
use std::sync::Arc;

/// Fixed slot count of the shim deque.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// Lost a race; try again.
    Retry,
}

struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Owner's bottom index (next push slot).
    bottom: AtomicIsize,
    /// Thieves' top index (next steal slot).
    top: AtomicIsize,
}

unsafe impl<T: Send> Send for Buffer<T> {}
unsafe impl<T: Send> Sync for Buffer<T> {}

impl<T> Buffer<T> {
    #[inline]
    fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        self.slots[index as usize & (self.slots.len() - 1)].get()
    }
}

/// The owner's handle: LIFO push/pop at the bottom.
pub struct Worker<T> {
    buf: Arc<Buffer<T>>,
}

/// A thief's handle: FIFO steals from the top.
pub struct Stealer<T> {
    buf: Arc<Buffer<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl<T> Worker<T> {
    /// New deque whose owner operates in LIFO order (the work-stealing
    /// default).
    pub fn new_lifo() -> Worker<T> {
        let slots = (0..DEFAULT_CAPACITY)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Worker {
            buf: Arc::new(Buffer {
                slots,
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
            }),
        }
    }

    /// A stealer handle sharing this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            buf: Arc::clone(&self.buf),
        }
    }

    /// Is the deque observably empty?
    pub fn is_empty(&self) -> bool {
        let b = self.buf.bottom.load(Ordering::Relaxed);
        let t = self.buf.top.load(Ordering::Relaxed);
        b <= t
    }

    /// Owner: push at the bottom.
    pub fn push(&self, value: T) {
        let b = self.buf.bottom.load(Ordering::Relaxed);
        let t = self.buf.top.load(Ordering::Acquire);
        assert!(
            (b - t) < self.buf.slots.len() as isize,
            "crossbeam-deque shim: fixed capacity {} exceeded",
            self.buf.slots.len()
        );
        unsafe { (*self.buf.slot(b)).write(value) };
        self.buf.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner: pop from the bottom (LIFO).
    pub fn pop(&self) -> Option<T> {
        let b = self.buf.bottom.load(Ordering::Relaxed) - 1;
        self.buf.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.buf.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.buf.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = unsafe { (*self.buf.slot(b)).assume_init_read() };
        if t == b {
            // Last element: race thieves for it.
            let won = self
                .buf
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.buf.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                std::mem::forget(value);
                return None;
            }
        }
        Some(value)
    }
}

impl<T> Stealer<T> {
    /// Thief: steal from the top (FIFO).
    pub fn steal(&self) -> Steal<T> {
        let t = self.buf.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.buf.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let value = unsafe { (*self.buf.slot(t)).assume_init_read() };
        if self
            .buf
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(value)
        } else {
            std::mem::forget(value);
            Steal::Retry
        }
    }
}

impl<T> Drop for Buffer<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop the remaining initialized range.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        for i in t..b {
            unsafe { (*self.slot(i)).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        const N: usize = 10_000;
        let w = Worker::new_lifo();
        let taken = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = w.stealer();
                let taken = &taken;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                if v == usize::MAX {
                                    break;
                                }
                                local.push(v);
                            }
                            Steal::Retry => {}
                            Steal::Empty => std::hint::spin_loop(),
                        }
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            let mut local = Vec::new();
            for i in 0..N {
                w.push(i);
                if i % 2 == 0 {
                    if let Some(v) = w.pop() {
                        local.push(v);
                    }
                }
            }
            while let Some(v) = w.pop() {
                local.push(v);
            }
            // Poison pills to stop the thieves.
            for _ in 0..3 {
                w.push(usize::MAX);
            }
            taken.lock().unwrap().extend(local);
        });
        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicated element");
        assert_eq!(set.len(), N, "lost element");
    }
}
