//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest's API that this workspace's tests use:
//! the [`proptest!`] macro, value [`strategy::Strategy`]s for integer
//! ranges / [`strategy::Just`] / weighted unions ([`prop_oneof!`]) /
//! [`collection::vec`], [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: cases are generated from a SplitMix64 stream seeded
//!   by the test name, so failures reproduce exactly across runs — there is
//!   no persistence file.
//! * **No shrinking**: a failing case panics with the usual assertion
//!   message; inputs are typically small enough here to debug directly.
//! * `prop_assert*` panic immediately instead of returning `TestCaseError`.

/// Deterministic pseudo-random source driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the `proptest!` macro passes the test
    /// function's name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via the widening-multiply reduction
    /// (Lemire); `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;

    /// Something that can produce values for a property test.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union of strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights changed during sampling")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Width fits u64 for every supported type.
                    let width = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi.abs_diff(lo) as u64).wrapping_add(1);
                    if width == 0 {
                        // Full-domain u64/i64 range.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(width) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            // 53-bit uniform in [0, 1), scaled into the half-open range;
            // clamp the rare upward rounding at the top edge back inside.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let x = self.start + unit * (self.end - self.start);
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII, occasionally any scalar value.
            if rng.below(4) == 0 {
                char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    //! The glob-import surface test files use.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b, c]`
/// (unweighted arms get weight 1). All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// The property-test entry macro: declares `#[test]` functions whose
/// arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let result = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                        $body
                    }),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of `{}` failed (deterministic seed: test name)",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_below_is_in_bounds_and_varied() {
        let mut rng = TestRng::from_name("bounds");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 10, "all residues should appear");
    }

    #[test]
    fn determinism_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(v in crate::collection::vec(0u32..50, 1..20), flip in any::<bool>()) {
            prop_assert!(v.len() < 20 && !v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 50));
            let _ = flip;
        }

        #[test]
        fn oneof_and_map_work(op in prop_oneof![3 => Just(0u8), 1 => (1u8..4).prop_map(|x| x)]) {
            prop_assert!(op < 4);
        }
    }
}
