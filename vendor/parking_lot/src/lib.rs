//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset of parking_lot's API this workspace uses —
//! [`Mutex`], [`MutexGuard`], [`Condvar`] (including [`Condvar::wait_for`],
//! which the scheduler's sleeper subsystem relies on) — as thin wrappers
//! over `std::sync`. Semantic differences from upstream parking_lot that
//! matter here:
//!
//! * **No poisoning**: like parking_lot, a panic while holding the lock
//!   does not poison it. We recover the guard from `std`'s `PoisonError`.
//! * `lock()` returns the guard directly (no `Result`).
//!
//! Fairness/eventual-fairness and inline-word optimizations of the real
//! parking_lot are irrelevant to correctness and are not reproduced.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A parking_lot-style mutual-exclusion lock (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can temporarily take the std guard out
    // and put the re-acquired one back. Invariant: always `Some` outside
    // those wait calls.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed (rather than a notify)?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A parking_lot-style condition variable operating on [`MutexGuard`]s.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// [`Condvar::wait`] with a timeout. Spurious wakeups are possible, as
    /// with any condvar.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; parking_lot does.
        // Callers in this workspace ignore the return value.
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }

    #[test]
    fn condvar_wait_and_notify() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
                flag.store(true, Ordering::Release);
            });
            std::thread::sleep(Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_one();
        });
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let start = Instant::now();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
