//! Graph generators: `rMatGraph`, `randLocalGraph`, and grid graphs —
//! the input families of PBBS's graph benchmarks.

use parlay_rs::random::Random;
use parlay_rs::tabulate;

use crate::graph::Graph;

/// Recursive-matrix (R-MAT) power-law graph, as in PBBS's `rMatGraph`
/// (Chakrabarti–Zhan–Faloutsos parameters a=0.5, b=c=0.1, d=0.3).
pub fn rmat_graph(n: usize, m: usize, seed: u64) -> Graph {
    let levels = (usize::BITS - (n.max(2) - 1).leading_zeros()) as u64;
    let size = 1usize << levels;
    let r = Random::new(seed ^ 0x12A7);
    let edges: Vec<(u32, u32)> = tabulate(m, |e| {
        let (mut u, mut v) = (0usize, 0usize);
        for l in 0..levels {
            let x = r.ith_f64((e as u64) * levels * 2 + l);
            let y = r.ith_f64((e as u64) * levels * 2 + levels + l);
            // Quadrant probabilities a=0.5, b=0.1, c=0.1, d=0.3 with a
            // little per-level noise, as in the original generator.
            let a = 0.5 + 0.05 * (y - 0.5);
            let (du, dv) = if x < a {
                (0, 0)
            } else if x < a + 0.1 {
                (0, 1)
            } else if x < a + 0.2 {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        (((u % size) % n) as u32, ((v % size) % n) as u32)
    });
    Graph::from_edges(n, &edges)
}

/// `randLocalGraph`: each vertex gets `degree` edges to nearby vertices
/// (geometric locality in id space), PBBS's bounded-degree local graph.
pub fn rand_local_graph(n: usize, degree: usize, seed: u64) -> Graph {
    let r = Random::new(seed ^ 0x10CA1);
    let edges: Vec<(u32, u32)> = tabulate(n * degree, |k| {
        let u = k / degree;
        let j = (k % degree) as u64;
        // Distance drawn with a quadratic bias towards small hops.
        let x = r.ith_f64(k as u64 * 2);
        let span = ((n as f64).sqrt() as u64).max(2);
        let dist = 1 + (x * x * span as f64) as u64;
        let sign = r.ith_rand(k as u64 * 2 + 1) & 1 == 0;
        let v = if sign {
            (u as u64 + dist) % n as u64
        } else {
            (u as u64 + n as u64 - dist % n as u64) % n as u64
        };
        let _ = j;
        (u as u32, v as u32)
    });
    Graph::from_edges(n, &edges)
}

/// 2-dimensional grid graph (each vertex linked to its lattice
/// neighbours), PBBS's `2Dgrid`.
pub fn grid_graph_2d(side: usize) -> Graph {
    let n = side * side;
    let mut edges = Vec::with_capacity(2 * n);
    for y in 0..side {
        for x in 0..side {
            let v = (y * side + x) as u32;
            if x + 1 < side {
                edges.push((v, v + 1));
            }
            if y + 1 < side {
                edges.push((v, v + side as u32));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// 3-dimensional grid graph, PBBS's `3Dgrid` (the BFS instance the paper
/// calls out in §5.2).
pub fn grid_graph_3d(side: usize) -> Graph {
    let n = side * side * side;
    let mut edges = Vec::with_capacity(3 * n);
    let idx = |x: usize, y: usize, z: usize| (z * side * side + y * side + x) as u32;
    for z in 0..side {
        for y in 0..side {
            for x in 0..side {
                let v = idx(x, y, z);
                if x + 1 < side {
                    edges.push((v, idx(x + 1, y, z)));
                }
                if y + 1 < side {
                    edges.push((v, idx(x, y + 1, z)));
                }
                if z + 1 < side {
                    edges.push((v, idx(x, y, z + 1)));
                }
            }
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_shape() {
        let g = rmat_graph(1 << 10, 4 << 10, 7);
        assert_eq!(g.num_vertices(), 1 << 10);
        assert!(g.num_edges() > 1000, "most edges survive dedup");
        // Power-law-ish: max degree far above average.
        let max_deg = (0..g.num_vertices())
            .map(|v| g.degree(v as u32))
            .max()
            .unwrap();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 3.0 * avg,
            "rMAT should be skewed: max {max_deg}, avg {avg:.1}"
        );
    }

    #[test]
    fn rand_local_shape() {
        let g = rand_local_graph(2_000, 4, 3);
        assert_eq!(g.num_vertices(), 2_000);
        assert!(g.num_edges() > 4_000);
        let max_deg = (0..g.num_vertices())
            .map(|v| g.degree(v as u32))
            .max()
            .unwrap();
        assert!(max_deg < 100, "local graphs have bounded degree: {max_deg}");
    }

    #[test]
    fn grid_2d_degrees() {
        let g = grid_graph_2d(10);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 2 * 10 * 9);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 3); // edge
        assert_eq!(g.degree(55), 4); // interior
    }

    #[test]
    fn grid_3d_edge_count() {
        let g = grid_graph_3d(5);
        assert_eq!(g.num_vertices(), 125);
        assert_eq!(g.num_edges(), 3 * 5 * 5 * 4);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = rmat_graph(256, 1024, 11);
        let b = rmat_graph(256, 1024, 11);
        assert_eq!(a.edge_list(), b.edge_list());
    }
}
