//! Text generators: the trigram word/string distributions PBBS uses for
//! its string benchmarks (`wordCounts`, `invertedIndex`, `suffixArray`),
//! plus a synthetic document collection standing in for the `wikipedia`
//! input (which is proprietary-licensed data we substitute per DESIGN.md).

use parlay_rs::random::Random;
use parlay_rs::tabulate;

/// A word drawn from a letter-trigram Markov chain (like PBBS's
/// `trigramWords`): produces Zipf-ish word frequencies with realistic
/// letter statistics.
fn trigram_word(r: &Random, i: u64) -> String {
    // Length geometric-ish in [2, 12].
    let len = 2 + (r.ith_rand(i * 31) % 6 + r.ith_rand(i * 31 + 1) % 6) as usize / 2 + 1;
    let mut s = String::with_capacity(len);
    // Biased letter chain: next letter depends on previous via hashing,
    // restricted to a skewed alphabet distribution.
    const ALPHA: &[u8] = b"etaoinshrdlcumwfgypbvk";
    let mut state = r.ith_rand(i);
    for k in 0..len {
        let idx = (state % ALPHA.len() as u64) as usize;
        // Quadratic skew towards frequent letters.
        let idx = (idx * idx) / ALPHA.len();
        s.push(ALPHA[idx] as char);
        state = parlay_rs::random::hash64(state ^ (k as u64));
    }
    s
}

/// `trigramSeq_<n>`: a sequence of n words with skewed frequencies.
pub fn trigram_words(n: usize, seed: u64) -> Vec<String> {
    let r = Random::new(seed ^ 0x7E47);
    // Draw from a pool of ~sqrt(n·64) distinct words with Zipf-ish reuse.
    let pool = ((n as f64 * 64.0).sqrt() as u64).max(64);
    tabulate(n, |i| {
        let z = r.ith_f64(i as u64);
        // Zipf-like index: many hits on low indices.
        let widx = ((z * z * z) * pool as f64) as u64;
        trigram_word(&r.fork(1), widx)
    })
}

/// `trigramString_<n>`: one long string of trigram characters (for
/// suffix-array style benchmarks).
pub fn trigram_string(n: usize, seed: u64) -> Vec<u8> {
    let r = Random::new(seed ^ 0x7E58);
    const ALPHA: &[u8] = b"etaoinshrdlcumwfgypbvk ";
    tabulate(n, |i| {
        let h = r.ith_rand(i as u64 / 3) ^ (i as u64 % 3).wrapping_mul(0x9E37);
        let idx = (parlay_rs::random::hash64(h) % ALPHA.len() as u64) as usize;
        let idx = (idx * idx) / ALPHA.len();
        ALPHA[idx]
    })
}

/// DNA-like four-letter string (a classic suffix-array stress input).
pub fn dna_string(n: usize, seed: u64) -> Vec<u8> {
    let r = Random::new(seed ^ 0xD7A);
    const BASES: &[u8] = b"acgt";
    tabulate(n, |i| BASES[(r.ith_rand(i as u64) % 4) as usize])
}

/// A synthetic document collection: `num_docs` documents of roughly
/// `words_per_doc` trigram words each. Substitutes PBBS's `wikipedia250M`
/// for `invertedIndex` (same shape: many documents, Zipf vocabulary).
pub fn documents(num_docs: usize, words_per_doc: usize, seed: u64) -> Vec<Vec<String>> {
    let r = Random::new(seed ^ 0xD0C5);
    tabulate(num_docs, |d| {
        let len = words_per_doc / 2 + (r.ith_rand(d as u64) % words_per_doc.max(1) as u64) as usize;
        let docs_r = r.fork(d as u64);
        let pool = ((num_docs * words_per_doc) as f64).sqrt().max(64.0) as u64;
        (0..len.max(1))
            .map(|w| {
                let z = docs_r.ith_f64(w as u64);
                let widx = ((z * z * z) * pool as f64) as u64;
                trigram_word(&Random::new(seed ^ 0x11), widx)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn words_are_nonempty_and_skewed() {
        let ws = trigram_words(20_000, 1);
        assert!(ws.iter().all(|w| !w.is_empty()));
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for w in &ws {
            *freq.entry(w).or_default() += 1;
        }
        let max = freq.values().max().copied().unwrap();
        assert!(
            freq.len() > 50,
            "vocabulary too small: {} words",
            freq.len()
        );
        assert!(
            max > ws.len() / 200,
            "distribution should be skewed: top word {max}"
        );
    }

    #[test]
    fn strings_use_expected_alphabets() {
        let t = trigram_string(10_000, 2);
        assert!(t.iter().all(|c| c.is_ascii_lowercase() || *c == b' '));
        let d = dna_string(10_000, 2);
        assert!(d.iter().all(|c| b"acgt".contains(c)));
    }

    #[test]
    fn documents_shape() {
        let docs = documents(100, 50, 3);
        assert_eq!(docs.len(), 100);
        assert!(docs.iter().all(|d| !d.is_empty()));
        let total: usize = docs.iter().map(Vec::len).sum();
        assert!(total > 100 * 20, "documents should have real content");
    }

    #[test]
    fn deterministic() {
        assert_eq!(trigram_words(500, 7), trigram_words(500, 7));
        assert_eq!(dna_string(500, 7), dna_string(500, 7));
        assert_ne!(dna_string(500, 7), dna_string(500, 8));
    }
}
