//! Geometry generators: `2DinCube`, `2DinSphere`, `2Dkuzmin`, `3DinCube`,
//! `3DonSphere`, `3Dplummer` — PBBS's point distributions for convex hull,
//! nearest neighbors and n-body.

use parlay_rs::random::Random;
use parlay_rs::tabulate;

/// A 2-d point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Constructor.
    pub fn new(x: f64, y: f64) -> Point2 {
        Point2 { x, y }
    }

    /// Squared Euclidean distance.
    pub fn dist2(&self, o: &Point2) -> f64 {
        let dx = self.x - o.x;
        let dy = self.y - o.y;
        dx * dx + dy * dy
    }

    /// Twice the signed area of triangle `(a, b, c)`; positive when `c` is
    /// left of the directed line `a → b`.
    pub fn cross(a: &Point2, b: &Point2, c: &Point2) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }
}

/// A 3-d point (also used as a vector).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}

impl Point3 {
    /// Constructor.
    pub fn new(x: f64, y: f64, z: f64) -> Point3 {
        Point3 { x, y, z }
    }

    /// Squared Euclidean distance.
    pub fn dist2(&self, o: &Point3) -> f64 {
        let dx = self.x - o.x;
        let dy = self.y - o.y;
        let dz = self.z - o.z;
        dx * dx + dy * dy + dz * dz
    }
}

/// Uniform points in the unit square (`2DinCube`).
pub fn points_in_cube_2d(n: usize, seed: u64) -> Vec<Point2> {
    let r = Random::new(seed ^ 0x2D01);
    tabulate(n, |i| {
        Point2::new(r.ith_f64(2 * i as u64), r.ith_f64(2 * i as u64 + 1))
    })
}

/// Uniform points *inside* the unit disk (`2DinSphere`) via rejection-free
/// polar sampling.
pub fn points_in_sphere_2d(n: usize, seed: u64) -> Vec<Point2> {
    let r = Random::new(seed ^ 0x2D02);
    tabulate(n, |i| {
        let rad = r.ith_f64(2 * i as u64).sqrt();
        let theta = r.ith_f64(2 * i as u64 + 1) * std::f64::consts::TAU;
        Point2::new(rad * theta.cos(), rad * theta.sin())
    })
}

/// Kuzmin distribution (`2Dkuzmin`): heavily concentrated near the origin
/// with a long radial tail — the hull-unfriendly distribution.
pub fn points_kuzmin_2d(n: usize, seed: u64) -> Vec<Point2> {
    let r = Random::new(seed ^ 0x2D03);
    tabulate(n, |i| {
        let u = r.ith_f64(2 * i as u64).min(1.0 - 1e-12);
        // Inverse CDF of the Kuzmin disk: r = sqrt((1-u)^-2 - 1).
        let rad = ((1.0 - u).powi(-2) - 1.0).sqrt();
        let theta = r.ith_f64(2 * i as u64 + 1) * std::f64::consts::TAU;
        Point2::new(rad * theta.cos(), rad * theta.sin())
    })
}

/// Uniform points in the unit cube (`3DinCube`).
pub fn points_in_cube_3d(n: usize, seed: u64) -> Vec<Point3> {
    let r = Random::new(seed ^ 0x3D01);
    tabulate(n, |i| {
        Point3::new(
            r.ith_f64(3 * i as u64),
            r.ith_f64(3 * i as u64 + 1),
            r.ith_f64(3 * i as u64 + 2),
        )
    })
}

/// Uniform points *on* the unit sphere (`3DonSphere`).
pub fn points_on_sphere_3d(n: usize, seed: u64) -> Vec<Point3> {
    let r = Random::new(seed ^ 0x3D02);
    tabulate(n, |i| {
        let z = 2.0 * r.ith_f64(2 * i as u64) - 1.0;
        let theta = r.ith_f64(2 * i as u64 + 1) * std::f64::consts::TAU;
        let rad = (1.0 - z * z).sqrt();
        Point3::new(rad * theta.cos(), rad * theta.sin(), z)
    })
}

/// Plummer model (`3Dplummer`): the astrophysical cluster distribution
/// PBBS feeds to n-body.
pub fn points_plummer_3d(n: usize, seed: u64) -> Vec<Point3> {
    let r = Random::new(seed ^ 0x3D03);
    tabulate(n, |i| {
        let u = r.ith_f64(3 * i as u64).clamp(1e-10, 1.0 - 1e-10);
        let rad = (u.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
        let z = 2.0 * r.ith_f64(3 * i as u64 + 1) - 1.0;
        let theta = r.ith_f64(3 * i as u64 + 2) * std::f64::consts::TAU;
        let xy = (1.0 - z * z).sqrt();
        Point3::new(rad * xy * theta.cos(), rad * xy * theta.sin(), rad * z)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_points_in_bounds() {
        for p in points_in_cube_2d(5_000, 1) {
            assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
        }
        for p in points_in_cube_3d(5_000, 1) {
            assert!((0.0..1.0).contains(&p.z));
        }
    }

    #[test]
    fn disk_points_inside_unit_disk() {
        for p in points_in_sphere_2d(5_000, 2) {
            assert!(p.x * p.x + p.y * p.y <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn sphere_points_on_surface() {
        for p in points_on_sphere_3d(2_000, 3) {
            let r2 = p.x * p.x + p.y * p.y + p.z * p.z;
            assert!((r2 - 1.0).abs() < 1e-9, "r² = {r2}");
        }
    }

    #[test]
    fn kuzmin_concentrates_centrally() {
        let pts = points_kuzmin_2d(20_000, 4);
        let central = pts
            .iter()
            .filter(|p| p.dist2(&Point2::new(0.0, 0.0)) < 4.0)
            .count();
        assert!(
            central > pts.len() / 2,
            "kuzmin mass should sit near origin"
        );
    }

    #[test]
    fn cross_product_orientation() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let left = Point2::new(0.5, 1.0);
        let right = Point2::new(0.5, -1.0);
        assert!(Point2::cross(&a, &b, &left) > 0.0);
        assert!(Point2::cross(&a, &b, &right) < 0.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(points_in_cube_2d(100, 9), points_in_cube_2d(100, 9));
        assert_ne!(points_in_cube_2d(100, 9), points_in_cube_2d(100, 10));
    }
}
