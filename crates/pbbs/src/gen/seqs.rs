//! Sequence generators: `randomSeq`, `exptSeq`, `almostSortedSeq` and the
//! pair variants, mirroring PBBS's `sequenceData` generators.

use parlay_rs::random::Random;
use parlay_rs::tabulate;

/// `randomSeq_<n>_int`: uniform random 64-bit values in `[0, range)`.
pub fn random_seq(n: usize, range: u64, seed: u64) -> Vec<u64> {
    let r = Random::new(seed);
    tabulate(n, |i| r.ith_in_range(i as u64, 0, range.max(1)))
}

/// `exptSeq_<n>_int`: exponentially distributed values (many small keys,
/// a long tail), PBBS's skewed integer workload.
pub fn expt_seq(n: usize, range: u64, seed: u64) -> Vec<u64> {
    let r = Random::new(seed ^ 0xE19A);
    let range = range.max(2) as f64;
    let lambda = range.ln();
    tabulate(n, |i| {
        let u = r.ith_f64(i as u64).max(f64::MIN_POSITIVE);
        // Inverse-CDF sampling clipped to the range.
        let v = (-u.ln() / lambda * range).min(range - 1.0);
        v as u64
    })
}

/// `almostSortedSeq_<n>`: `0..n` with ~`sqrt(n)` random transpositions.
pub fn almost_sorted_seq(n: usize, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = tabulate(n, |i| i as u64);
    let r = Random::new(seed ^ 0xA5A5);
    let swaps = (n as f64).sqrt() as u64;
    for k in 0..swaps {
        let i = r.ith_in_range(2 * k, 0, n as u64) as usize;
        let j = r.ith_in_range(2 * k + 1, 0, n as u64) as usize;
        v.swap(i, j);
    }
    v
}

/// `randomSeq_<n>_int_pair_int`: key-value pairs with uniform keys.
pub fn random_pair_seq(n: usize, key_range: u64, seed: u64) -> Vec<(u64, u64)> {
    let r = Random::new(seed ^ 0x9AB1);
    tabulate(n, |i| {
        (
            r.ith_in_range(2 * i as u64, 0, key_range.max(1)),
            r.ith_rand(2 * i as u64 + 1),
        )
    })
}

/// Uniform random doubles in `[0, 1)` (`randomSeq_<n>_double`).
pub fn random_f64_seq(n: usize, seed: u64) -> Vec<f64> {
    let r = Random::new(seed ^ 0xD0B1);
    tabulate(n, |i| r.ith_f64(i as u64))
}

/// Exponentially distributed doubles (`exptSeq_<n>_double`).
pub fn expt_f64_seq(n: usize, seed: u64) -> Vec<f64> {
    let r = Random::new(seed ^ 0xE4D);
    tabulate(n, |i| -r.ith_f64(i as u64).max(f64::MIN_POSITIVE).ln())
}

/// Almost-sorted doubles.
pub fn almost_sorted_f64_seq(n: usize, seed: u64) -> Vec<f64> {
    let mut v: Vec<f64> = tabulate(n, |i| i as f64);
    let r = Random::new(seed ^ 0x50F7);
    let swaps = (n as f64).sqrt() as u64;
    for k in 0..swaps {
        let i = r.ith_in_range(2 * k, 0, n as u64) as usize;
        let j = r.ith_in_range(2 * k + 1, 0, n as u64) as usize;
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_seq_deterministic_in_range() {
        let a = random_seq(10_000, 1000, 1);
        let b = random_seq(10_000, 1000, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 1000));
        let c = random_seq(10_000, 1000, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn expt_seq_is_skewed_low() {
        let v = expt_seq(50_000, 1_000_000, 3);
        assert!(v.iter().all(|&x| x < 1_000_000));
        let below_tenth = v.iter().filter(|&&x| x < 100_000).count();
        assert!(
            below_tenth > v.len() / 2,
            "exponential data should concentrate low: {below_tenth}/{}",
            v.len()
        );
    }

    #[test]
    fn almost_sorted_is_mostly_sorted() {
        let v = almost_sorted_seq(10_000, 5);
        let inversions = v.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions > 0, "some disorder expected");
        assert!(inversions < 500, "should be almost sorted: {inversions}");
        // Still a permutation of 0..n.
        let mut s = v.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn pair_seq_key_range() {
        let v = random_pair_seq(5_000, 256, 9);
        assert!(v.iter().all(|&(k, _)| k < 256));
    }

    #[test]
    fn f64_seqs_shapes() {
        let u = random_f64_seq(5_000, 1);
        assert!(u.iter().all(|&x| (0.0..1.0).contains(&x)));
        let e = expt_f64_seq(5_000, 1);
        assert!(e.iter().all(|&x| x >= 0.0));
        let a = almost_sorted_f64_seq(5_000, 1);
        let inversions = a.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions < 300);
    }
}
