//! PBBS input generators: deterministic, parallel, seedless-reproducible
//! workload builders matching the suite's instance families.

pub mod geom;
pub mod graphs;
pub mod seqs;
pub mod text;

pub use geom::{Point2, Point3};
