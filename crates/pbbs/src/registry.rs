//! The benchmark registry: every (benchmark, input instance) pair — the
//! paper's *benchmark configurations* — behind a uniform interface the
//! experiment harness sweeps.
//!
//! A [`Prepared`] instance owns its (already generated) input. Calling
//! [`Prepared::run_parallel`] *inside* a `ThreadPool::run` executes the
//! parallel algorithm, timing only the algorithm itself (input cloning is
//! excluded, as in PBBS's timing harness) and returning a checksum used to
//! confirm that every scheduler variant computes the same answer.

use std::time::{Duration, Instant};

use crate::bench::{classify, geometry, graphs, nbody, seq_ops, sorting, strings, text_ops};
use crate::gen::{geom, graphs as graph_gen, seqs, text};
use crate::{checksum_u64s, scaled, Graph};

/// Result of one timed parallel execution.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Wall-clock time of the algorithm proper.
    pub elapsed: Duration,
    /// Deterministic digest of the output (identical across variants for
    /// deterministic benchmarks).
    pub checksum: u64,
}

/// A generated input plus the benchmark algorithms to run on it.
pub trait Prepared: Send + Sync {
    /// Execute the parallel algorithm once (call inside `ThreadPool::run`).
    fn run_parallel(&self) -> RunOutcome;

    /// Validate the parallel result against the sequential reference.
    fn verify(&self) -> Result<(), String>;
}

/// A named input instance of a benchmark.
pub struct Instance {
    /// Benchmark name (e.g. `integerSort`).
    pub benchmark: &'static str,
    /// Input instance name, PBBS-style (e.g. `randomSeq_int`).
    pub input: &'static str,
    prepare: Box<dyn Fn() -> Box<dyn Prepared> + Send + Sync>,
}

impl Instance {
    fn new<P, F>(benchmark: &'static str, input: &'static str, f: F) -> Instance
    where
        P: Prepared + 'static,
        F: Fn() -> P + Send + Sync + 'static,
    {
        Instance {
            benchmark,
            input,
            prepare: Box::new(move || Box::new(f())),
        }
    }

    /// Generate the input (outside any pool; generation is untimed).
    pub fn prepare(&self) -> Box<dyn Prepared> {
        (self.prepare)()
    }

    /// `benchmark/input` label used in reports.
    pub fn label(&self) -> String {
        format!("{}/{}", self.benchmark, self.input)
    }
}

/// A benchmark with its input instances.
pub struct Benchmark {
    /// PBBS benchmark name.
    pub name: &'static str,
    /// The suite's input instances for it.
    pub instances: Vec<Instance>,
}

// ---------------------------------------------------------------------------
// Prepared implementations
// ---------------------------------------------------------------------------

struct IntSort(Vec<u64>);
impl Prepared for IntSort {
    fn run_parallel(&self) -> RunOutcome {
        let mut v = self.0.clone();
        let t = Instant::now();
        sorting::integer_sort_bench(&mut v);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(v),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let mut v = self.0.clone();
        sorting::integer_sort_bench(&mut v);
        let mut e = self.0.clone();
        e.sort_unstable();
        if v == e {
            Ok(())
        } else {
            Err("integer sort output differs from std sort".into())
        }
    }
}

struct IntSortPairs(Vec<(u64, u64)>);
impl Prepared for IntSortPairs {
    fn run_parallel(&self) -> RunOutcome {
        let mut v = self.0.clone();
        let t = Instant::now();
        sorting::integer_sort_pairs_bench(&mut v);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(v.iter().flat_map(|&(k, x)| [k, x])),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let mut v = self.0.clone();
        sorting::integer_sort_pairs_bench(&mut v);
        let mut e = self.0.clone();
        e.sort_by_key(|p| p.0);
        if v == e {
            Ok(())
        } else {
            Err("pair sort differs from stable std sort".into())
        }
    }
}

struct CmpSortF64(Vec<f64>);
impl Prepared for CmpSortF64 {
    fn run_parallel(&self) -> RunOutcome {
        let mut v = self.0.clone();
        let t = Instant::now();
        sorting::comparison_sort_bench(&mut v);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(v.iter().map(|x| x.to_bits())),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let mut v = self.0.clone();
        sorting::comparison_sort_bench(&mut v);
        if sorting::is_sorted_by(&v, |a, b| a.total_cmp(b)) {
            Ok(())
        } else {
            Err("comparison sort output not sorted".into())
        }
    }
}

struct CmpSortStrings(Vec<String>);
impl Prepared for CmpSortStrings {
    fn run_parallel(&self) -> RunOutcome {
        let mut v = self.0.clone();
        let t = Instant::now();
        sorting::comparison_sort_strings_bench(&mut v);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(v.iter().map(|s| {
                parlay_rs::random::hash64(
                    s.len() as u64 ^ s.bytes().fold(0u64, |a, b| a.rotate_left(7) ^ b as u64),
                )
            })),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let mut v = self.0.clone();
        sorting::comparison_sort_strings_bench(&mut v);
        let mut e = self.0.clone();
        e.sort();
        if v == e {
            Ok(())
        } else {
            Err("string sort differs from std sort".into())
        }
    }
}

struct Histogram {
    keys: Vec<u64>,
    buckets: usize,
}
impl Prepared for Histogram {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let h = seq_ops::histogram(&self.keys, self.buckets);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(h),
        }
    }
    fn verify(&self) -> Result<(), String> {
        if seq_ops::histogram(&self.keys, self.buckets)
            == seq_ops::histogram_seq(&self.keys, self.buckets)
        {
            Ok(())
        } else {
            Err("histogram differs from sequential".into())
        }
    }
}

struct RemoveDuplicates(Vec<u64>);
impl Prepared for RemoveDuplicates {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let d = seq_ops::remove_duplicates(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(d),
        }
    }
    fn verify(&self) -> Result<(), String> {
        if seq_ops::remove_duplicates(&self.0) == seq_ops::remove_duplicates_seq(&self.0) {
            Ok(())
        } else {
            Err("removeDuplicates differs from sequential".into())
        }
    }
}

struct WordCounts(Vec<String>);
impl Prepared for WordCounts {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let wc = text_ops::word_counts(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(wc.iter().map(|(w, c)| c ^ w.len() as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        if text_ops::word_counts(&self.0) == text_ops::word_counts_seq(&self.0) {
            Ok(())
        } else {
            Err("wordCounts differs from sequential".into())
        }
    }
}

struct InvertedIndex(Vec<Vec<String>>);
impl Prepared for InvertedIndex {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let idx = text_ops::inverted_index(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(
                idx.iter()
                    .map(|(w, ds)| w.len() as u64 ^ checksum_u64s(ds.iter().map(|&d| d as u64))),
            ),
        }
    }
    fn verify(&self) -> Result<(), String> {
        if text_ops::inverted_index(&self.0) == text_ops::inverted_index_seq(&self.0) {
            Ok(())
        } else {
            Err("invertedIndex differs from sequential".into())
        }
    }
}

struct SuffixArray(Vec<u8>);
impl Prepared for SuffixArray {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let sa = strings::suffix_array(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(sa.iter().map(|&x| x as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        if strings::suffix_array(&self.0) == strings::suffix_array_seq(&self.0) {
            Ok(())
        } else {
            Err("suffix array differs from reference".into())
        }
    }
}

struct Lrs(Vec<u8>);
impl Prepared for Lrs {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let (len, start) = strings::longest_repeated_substring(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: ((len as u64) << 32) | start as u64,
        }
    }
    fn verify(&self) -> Result<(), String> {
        let (len, start) = strings::longest_repeated_substring(&self.0);
        let needle = &self.0[start as usize..(start + len) as usize];
        if len == 0
            || self
                .0
                .windows(needle.len().max(1))
                .filter(|w| *w == needle)
                .count()
                >= 2
        {
            Ok(())
        } else {
            Err("reported LRS does not repeat".into())
        }
    }
}

struct Bfs {
    graph: Graph,
    src: u32,
}
impl Prepared for Bfs {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let d = graphs::bfs(&self.graph, self.src);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(d.iter().map(|&x| x as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        if graphs::bfs(&self.graph, self.src) == graphs::bfs_seq(&self.graph, self.src) {
            Ok(())
        } else {
            Err("BFS distances differ from sequential".into())
        }
    }
}

struct Mis(Graph);
impl Prepared for Mis {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let mis = graphs::maximal_independent_set(&self.0, 42);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(mis.iter().map(|&b| b as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        graphs::check_mis(&self.0, &graphs::maximal_independent_set(&self.0, 42))
    }
}

struct Matching(Graph);
impl Prepared for Matching {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let (m, k) = graphs::maximal_matching(&self.0, 42);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(m.iter().map(|&b| b as u64).chain([k as u64])),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let (m, k) = graphs::maximal_matching(&self.0, 42);
        graphs::check_matching(&self.0, &m, k)
    }
}

struct Msf {
    graph: Graph,
    weights: Vec<u64>,
}
impl Prepared for Msf {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let f = graphs::min_spanning_forest(&self.graph, &self.weights);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(f.iter().map(|&e| e as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let f = graphs::min_spanning_forest(&self.graph, &self.weights);
        graphs::check_spanning_forest(&self.graph, &f)?;
        let total: u128 = f.iter().map(|&e| self.weights[e] as u128).sum();
        let expected = graphs::msf_weight_seq(&self.graph, &self.weights);
        if total == expected {
            Ok(())
        } else {
            Err(format!(
                "MSF weight {total} != sequential Kruskal {expected}"
            ))
        }
    }
}

struct Forest(Graph);
impl Prepared for Forest {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let f = graphs::spanning_forest(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            // Forest edge choice is deterministic (reservations), so the
            // index list itself is digestible.
            checksum: checksum_u64s(f.iter().map(|&e| e as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        graphs::check_spanning_forest(&self.0, &graphs::spanning_forest(&self.0))
    }
}

struct Hull(Vec<geom::Point2>);
impl Prepared for Hull {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let h = geometry::convex_hull(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(h.iter().map(|&x| x as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        geometry::check_hull(&self.0, &geometry::convex_hull(&self.0))
    }
}

struct Knn(Vec<geom::Point2>);
impl Prepared for Knn {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let nn = geometry::all_nearest_neighbors(&self.0);
        let elapsed = t.elapsed();
        // Digest the neighbor *distances* (bit-exact) rather than indices:
        // ties may resolve differently without being wrong.
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(
                nn.iter()
                    .enumerate()
                    .map(|(q, &i)| self.0[i as usize].dist2(&self.0[q]).to_bits()),
            ),
        }
    }
    fn verify(&self) -> Result<(), String> {
        // Spot-check against brute force on a sample (full brute force is
        // quadratic).
        let nn = geometry::all_nearest_neighbors(&self.0);
        let n = self.0.len();
        let step = (n / 200).max(1);
        for q in (0..n).step_by(step) {
            let mut best = f64::INFINITY;
            for (i, p) in self.0.iter().enumerate() {
                if i != q {
                    best = best.min(p.dist2(&self.0[q]));
                }
            }
            let got = self.0[nn[q] as usize].dist2(&self.0[q]);
            if (got - best).abs() > 1e-12 {
                return Err(format!("query {q}: kd-tree {got} vs brute {best}"));
            }
        }
        Ok(())
    }
}

struct Nbody(Vec<geom::Point3>);
impl Prepared for Nbody {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let f = nbody::nbody_forces(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s(f.iter().map(|p| {
                p.x.to_bits() ^ p.y.to_bits().rotate_left(21) ^ p.z.to_bits().rotate_left(42)
            })),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let pts = &self.0[..self.0.len().min(500)];
        let approx = nbody::nbody_forces(pts);
        let exact = nbody::nbody_forces_exact(pts);
        let mut err = 0.0;
        for (a, e) in approx.iter().zip(&exact) {
            let d2 = (a.x - e.x).powi(2) + (a.y - e.y).powi(2) + (a.z - e.z).powi(2);
            let m2 = (e.x * e.x + e.y * e.y + e.z * e.z).max(1e-18);
            err += (d2 / m2).sqrt();
        }
        let avg = err / pts.len().max(1) as f64;
        if avg < 0.1 {
            Ok(())
        } else {
            Err(format!("Barnes–Hut error too large: {avg:.4}"))
        }
    }
}

struct Classify(classify::Dataset);
impl Prepared for Classify {
    fn run_parallel(&self) -> RunOutcome {
        let t = Instant::now();
        let tree = classify::train(&self.0);
        let elapsed = t.elapsed();
        RunOutcome {
            elapsed,
            checksum: checksum_u64s((0..self.0.len()).map(|i| tree.predict(&self.0, i) as u64)),
        }
    }
    fn verify(&self) -> Result<(), String> {
        let par = classify::train(&self.0);
        let seq = classify::train_seq(&self.0);
        if par != seq {
            return Err("parallel and sequential trees differ".into());
        }
        let acc = classify::accuracy(&par, &self.0);
        if acc > 0.5 {
            Ok(())
        } else {
            Err(format!("training accuracy too low: {acc}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Every benchmark with all of its input instances — the full configuration
/// matrix of the evaluation (§5: "all input instances of all benchmarks").
pub fn all_benchmarks() -> Vec<Benchmark> {
    let n_sort = || scaled(600_000);
    let n_seq = || scaled(1_000_000);
    let n_text = || scaled(120_000);
    let n_sa = || scaled(120_000);
    let n_geo = || scaled(300_000);
    let graph_n = || scaled(60_000);

    vec![
        Benchmark {
            name: "integerSort",
            instances: vec![
                Instance::new("integerSort", "randomSeq_int", move || {
                    IntSort(seqs::random_seq(n_sort(), u64::MAX, 1))
                }),
                Instance::new("integerSort", "exptSeq_int", move || {
                    IntSort(seqs::expt_seq(n_sort(), 1 << 30, 2))
                }),
                Instance::new("integerSort", "randomSeq_int_pair_int", move || {
                    IntSortPairs(seqs::random_pair_seq(n_sort(), 1 << 30, 3))
                }),
                Instance::new("integerSort", "randomSeq_256_int_pair_int", move || {
                    IntSortPairs(seqs::random_pair_seq(n_sort(), 256, 4))
                }),
            ],
        },
        Benchmark {
            name: "comparisonSort",
            instances: vec![
                Instance::new("comparisonSort", "randomSeq_double", move || {
                    CmpSortF64(seqs::random_f64_seq(n_sort(), 5))
                }),
                Instance::new("comparisonSort", "exptSeq_double", move || {
                    CmpSortF64(seqs::expt_f64_seq(n_sort(), 6))
                }),
                Instance::new("comparisonSort", "almostSortedSeq_double", move || {
                    CmpSortF64(seqs::almost_sorted_f64_seq(n_sort(), 7))
                }),
                Instance::new("comparisonSort", "trigramSeq_string", move || {
                    CmpSortStrings(text::trigram_words(n_text(), 8))
                }),
            ],
        },
        Benchmark {
            name: "histogram",
            instances: vec![
                Instance::new("histogram", "randomSeq_100K_int", move || Histogram {
                    keys: seqs::random_seq(n_seq(), 100_000, 9),
                    buckets: 100_000,
                }),
                Instance::new("histogram", "randomSeq_256_int", move || Histogram {
                    keys: seqs::random_seq(n_seq(), 256, 10),
                    buckets: 256,
                }),
                Instance::new("histogram", "exptSeq_int", move || Histogram {
                    keys: seqs::expt_seq(n_seq(), 100_000, 11),
                    buckets: 100_000,
                }),
            ],
        },
        Benchmark {
            name: "removeDuplicates",
            instances: vec![
                Instance::new("removeDuplicates", "randomSeq_int", move || {
                    RemoveDuplicates(seqs::random_seq(n_seq(), u64::MAX >> 1, 12))
                }),
                Instance::new("removeDuplicates", "randomSeq_100K_int", move || {
                    RemoveDuplicates(seqs::random_seq(n_seq(), 100_000, 13))
                }),
            ],
        },
        Benchmark {
            name: "wordCounts",
            instances: vec![Instance::new("wordCounts", "trigramSeq", move || {
                WordCounts(text::trigram_words(n_text(), 14))
            })],
        },
        Benchmark {
            name: "invertedIndex",
            instances: vec![Instance::new("invertedIndex", "synthDocs", move || {
                InvertedIndex(text::documents(scaled(2_000).min(20_000), 60, 15))
            })],
        },
        Benchmark {
            name: "suffixArray",
            instances: vec![
                Instance::new("suffixArray", "trigramString", move || {
                    SuffixArray(text::trigram_string(n_sa(), 16))
                }),
                Instance::new("suffixArray", "dna", move || {
                    SuffixArray(text::dna_string(n_sa(), 17))
                }),
            ],
        },
        Benchmark {
            name: "longestRepeatedSubstring",
            instances: vec![Instance::new(
                "longestRepeatedSubstring",
                "trigramString",
                move || Lrs(text::trigram_string(scaled(60_000), 18)),
            )],
        },
        Benchmark {
            name: "breadthFirstSearch",
            instances: vec![
                Instance::new("breadthFirstSearch", "rMatGraph", move || Bfs {
                    graph: graph_gen::rmat_graph(graph_n(), graph_n() * 5, 19),
                    src: 0,
                }),
                Instance::new("breadthFirstSearch", "randLocalGraph", move || Bfs {
                    graph: graph_gen::rand_local_graph(graph_n(), 5, 20),
                    src: 0,
                }),
                Instance::new("breadthFirstSearch", "3Dgrid", move || {
                    let side = ((graph_n() as f64).cbrt() as usize).max(4);
                    Bfs {
                        graph: graph_gen::grid_graph_3d(side),
                        src: 0,
                    }
                }),
            ],
        },
        Benchmark {
            name: "maximalIndependentSet",
            instances: vec![
                Instance::new("maximalIndependentSet", "rMatGraph", move || {
                    Mis(graph_gen::rmat_graph(graph_n(), graph_n() * 5, 21))
                }),
                Instance::new("maximalIndependentSet", "randLocalGraph", move || {
                    Mis(graph_gen::rand_local_graph(graph_n(), 5, 22))
                }),
            ],
        },
        Benchmark {
            name: "maximalMatching",
            instances: vec![
                Instance::new("maximalMatching", "rMatGraph", move || {
                    Matching(graph_gen::rmat_graph(graph_n(), graph_n() * 5, 23))
                }),
                Instance::new("maximalMatching", "randLocalGraph", move || {
                    Matching(graph_gen::rand_local_graph(graph_n(), 5, 24))
                }),
                Instance::new("maximalMatching", "2Dgrid", move || {
                    let side = ((graph_n() as f64).sqrt() as usize).max(4);
                    Matching(graph_gen::grid_graph_2d(side))
                }),
            ],
        },
        Benchmark {
            name: "spanningForest",
            instances: vec![
                Instance::new("spanningForest", "rMatGraph", move || {
                    Forest(graph_gen::rmat_graph(graph_n(), graph_n() * 5, 25))
                }),
                Instance::new("spanningForest", "randLocalGraph", move || {
                    Forest(graph_gen::rand_local_graph(graph_n(), 5, 26))
                }),
            ],
        },
        Benchmark {
            // Exact-Kruskal-order MSF serializes on each growing
            // component's root (the reservation is the correctness
            // mechanism), so like PBBS's minSpanningForest it is by far
            // the slowest benchmark per element; its instances are sized
            // down accordingly.
            name: "minSpanningForest",
            instances: vec![
                Instance::new("minSpanningForest", "rMatGraph_W", move || {
                    let n = scaled(12_000);
                    let g = graph_gen::rmat_graph(n, n * 5, 35);
                    let weights = graphs::edge_weights(&g, 36);
                    Msf { graph: g, weights }
                }),
                Instance::new("minSpanningForest", "randLocalGraph_W", move || {
                    let g = graph_gen::rand_local_graph(scaled(12_000), 5, 37);
                    let weights = graphs::edge_weights(&g, 38);
                    Msf { graph: g, weights }
                }),
            ],
        },
        Benchmark {
            name: "convexHull",
            instances: vec![
                Instance::new("convexHull", "2DinSphere", move || {
                    Hull(geom::points_in_sphere_2d(n_geo(), 27))
                }),
                Instance::new("convexHull", "2DinCube", move || {
                    Hull(geom::points_in_cube_2d(n_geo(), 28))
                }),
                Instance::new("convexHull", "2Dkuzmin", move || {
                    Hull(geom::points_kuzmin_2d(n_geo(), 29))
                }),
            ],
        },
        Benchmark {
            name: "nearestNeighbors",
            instances: vec![
                Instance::new("nearestNeighbors", "2DinCube", move || {
                    Knn(geom::points_in_cube_2d(scaled(100_000), 30))
                }),
                Instance::new("nearestNeighbors", "2Dkuzmin", move || {
                    Knn(geom::points_kuzmin_2d(scaled(100_000), 31))
                }),
            ],
        },
        Benchmark {
            name: "classify",
            instances: vec![Instance::new("classify", "synthCovtype", move || {
                Classify(classify::synthetic_dataset(scaled(40_000), 8, 8, 34))
            })],
        },
        Benchmark {
            name: "nbody",
            instances: vec![
                Instance::new("nbody", "3DinCube", move || {
                    Nbody(geom::points_in_cube_3d(scaled(15_000), 32))
                }),
                Instance::new("nbody", "3Dplummer", move || {
                    Nbody(geom::points_plummer_3d(scaled(15_000), 33))
                }),
            ],
        },
    ]
}

/// Flattened list of every instance (the configuration axis of §5).
pub fn all_instances() -> Vec<Instance> {
    all_benchmarks()
        .into_iter()
        .flat_map(|b| b.instances)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shape() {
        let benches = all_benchmarks();
        assert!(benches.len() >= 15, "suite breadth: {}", benches.len());
        let total: usize = benches.iter().map(|b| b.instances.len()).sum();
        assert!(total >= 30, "configuration count: {total}");
        for b in &benches {
            assert!(!b.instances.is_empty(), "{} has no instances", b.name);
            for i in &b.instances {
                assert_eq!(i.benchmark, b.name);
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let inst = all_instances();
        let mut labels: Vec<String> = inst.iter().map(|i| i.label()).collect();
        labels.sort();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len());
    }

    // Full verify of every instance is exercised (with a small scale) by
    // the crate integration test `suite_verify.rs`.
}
