//! Graph benchmarks: `breadthFirstSearch`, `maximalIndependentSet`,
//! `maximalMatching`, `spanningForest`, `minSpanningForest`.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};

use parlay_rs::atomics::write_min_usize;
use parlay_rs::primitives::tabulate;
use parlay_rs::speculative::{speculative_for, ReserveCommit};

use crate::graph::Graph;

/// Vertex distance marker for "unreached".
pub const UNREACHED: u32 = u32::MAX;

/// Parallel frontier-based BFS from `src`: returns the distance of every
/// vertex (`UNREACHED` if disconnected). Distances are deterministic even
/// though the BFS tree is not (ties claim via CAS).
pub fn bfs(g: &Graph, src: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        // Each frontier vertex claims its unvisited neighbors with a CAS;
        // winners emit them into the next frontier.
        let next_nested: Vec<Vec<u32>> = tabulate(frontier.len(), |i| {
            let v = frontier[i];
            let mut out = Vec::new();
            for &u in g.neighbors(v) {
                if dist[u as usize].load(Ordering::Relaxed) == UNREACHED
                    && dist[u as usize]
                        .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    out.push(u);
                }
            }
            out
        });
        frontier = parlay_rs::flatten(&next_nested);
    }
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

/// Sequential reference BFS.
pub fn bfs_seq(g: &Graph, src: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    dist[src as usize] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHED {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

const UNDECIDED: u8 = 0;
const IN_SET: u8 = 1;
const OUT_SET: u8 = 2;

struct MisStep<'a> {
    g: &'a Graph,
    /// order[i] = vertex processed at priority i; rank[v] = its priority.
    order: &'a [u32],
    rank: &'a [usize],
    status: &'a [AtomicU8],
}

impl ReserveCommit for MisStep<'_> {
    fn reserve(&self, _i: usize) -> bool {
        true
    }

    fn commit(&self, i: usize) -> bool {
        let v = self.order[i];
        if self.status[v as usize].load(Ordering::Acquire) != UNDECIDED {
            return true;
        }
        // v joins the MIS iff every higher-priority neighbor is decided OUT;
        // if any higher-priority neighbor is undecided, wait (retry).
        let mut verdict = IN_SET;
        for &u in self.g.neighbors(v) {
            if self.rank[u as usize] < i {
                match self.status[u as usize].load(Ordering::Acquire) {
                    IN_SET => {
                        verdict = OUT_SET;
                        break;
                    }
                    UNDECIDED => return false, // earlier neighbor pending
                    _ => {}
                }
            }
        }
        self.status[v as usize].store(verdict, Ordering::Release);
        true
    }
}

/// Deterministic parallel maximal independent set over a random vertex
/// order derived from `seed` (PBBS's rootset/reservation algorithm).
/// Returns the membership flags.
pub fn maximal_independent_set(g: &Graph, seed: u64) -> Vec<bool> {
    let n = g.num_vertices();
    let order = random_permutation(n, seed);
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i;
    }
    let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let step = MisStep {
        g,
        order: &order,
        rank: &rank,
        status: &status,
    };
    speculative_for(&step, 0, n, 4096.max(n / 50));
    status
        .into_iter()
        .map(|s| s.into_inner() == IN_SET)
        .collect()
}

/// Check MIS validity: independent and maximal.
pub fn check_mis(g: &Graph, in_set: &[bool]) -> Result<(), String> {
    for &(u, v) in g.edge_list() {
        if in_set[u as usize] && in_set[v as usize] {
            return Err(format!("edge ({u},{v}) has both endpoints in the set"));
        }
    }
    for v in 0..g.num_vertices() as u32 {
        if !in_set[v as usize] && !g.neighbors(v).iter().any(|&u| in_set[u as usize]) {
            return Err(format!("vertex {v} could be added: set not maximal"));
        }
    }
    Ok(())
}

struct MatchStep<'a> {
    edges: &'a [(u32, u32)],
    order: &'a [u32],
    reservation: &'a [AtomicUsize],
    matched: &'a [AtomicU8],
    matched_edges: &'a AtomicUsize,
}

impl ReserveCommit for MatchStep<'_> {
    fn reserve(&self, i: usize) -> bool {
        let (u, v) = self.edges[self.order[i] as usize];
        if self.matched[u as usize].load(Ordering::Acquire) != 0
            || self.matched[v as usize].load(Ordering::Acquire) != 0
        {
            return false; // moot: an endpoint is taken
        }
        write_min_usize(&self.reservation[u as usize], i);
        write_min_usize(&self.reservation[v as usize], i);
        true
    }

    fn commit(&self, i: usize) -> bool {
        let (u, v) = self.edges[self.order[i] as usize];
        let hold_u = self.reservation[u as usize].load(Ordering::Acquire) == i;
        let hold_v = self.reservation[v as usize].load(Ordering::Acquire) == i;
        // Clear any reservation we hold (as PBBS's matchStep does): every
        // round's winners release their cells so the next round's reserve
        // phase re-establishes minimums among the still-live edges only.
        // Without this, a stale min-index reservation from a finished edge
        // would block every later edge on that vertex forever.
        if hold_u {
            self.reservation[u as usize].store(usize::MAX, Ordering::Release);
        }
        if hold_v {
            self.reservation[v as usize].store(usize::MAX, Ordering::Release);
        }
        if hold_u && hold_v {
            self.matched[u as usize].store(1, Ordering::Release);
            self.matched[v as usize].store(1, Ordering::Release);
            self.matched_edges.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Endpoint lost to a lower-index edge this round: that edge either
        // matched (we are moot, detected by next round's reserve) or will
        // retry; in both cases we must retry unless already moot.
        self.matched[u as usize].load(Ordering::Acquire) != 0
            || self.matched[v as usize].load(Ordering::Acquire) != 0
    }
}

/// Deterministic parallel maximal matching over a random edge order.
/// Returns `matched[v]` flags and the number of matched edges.
pub fn maximal_matching(g: &Graph, seed: u64) -> (Vec<bool>, usize) {
    let n = g.num_vertices();
    let m = g.num_edges();
    let order = random_permutation(m, seed ^ 0x3A7C);
    let reservation: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let matched: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
    let matched_edges = AtomicUsize::new(0);
    let step = MatchStep {
        edges: g.edge_list(),
        order: &order,
        reservation: &reservation,
        matched: &matched,
        matched_edges: &matched_edges,
    };
    speculative_for(&step, 0, m, 4096.max(m / 50));
    (
        matched.into_iter().map(|f| f.into_inner() != 0).collect(),
        matched_edges.into_inner(),
    )
}

/// Check matching validity: maximality (every edge touches a matched
/// vertex) — vertex-disjointness is structural (flags, not edge pairs), so
/// we additionally verify the matched-edge count is plausible.
pub fn check_matching(g: &Graph, matched: &[bool], edges_matched: usize) -> Result<(), String> {
    for &(u, v) in g.edge_list() {
        if !matched[u as usize] && !matched[v as usize] {
            return Err(format!("edge ({u},{v}) unmatched on both ends"));
        }
    }
    let matched_vertices = matched.iter().filter(|&&b| b).count();
    if matched_vertices != 2 * edges_matched {
        return Err(format!(
            "{matched_vertices} matched vertices but {edges_matched} matched edges"
        ));
    }
    Ok(())
}

struct ForestStep<'a> {
    edges: &'a [(u32, u32)],
    parents: &'a [AtomicU32],
    reservation: &'a [AtomicUsize],
    in_forest: &'a [AtomicU8],
    /// Roots reserved by each edge's latest `reserve` call (packed
    /// `ru << 32 | rv`), so `commit` can release them (each edge is
    /// processed by one task per round, and rounds are barrier-separated,
    /// so plain store/load ordering suffices).
    hooks: &'a [AtomicU64],
    /// Unweighted spanning forest only needs the smaller root reserved
    /// (any forest is acceptable). Kruskal-order MSF must reserve **both**
    /// roots: otherwise a heavier edge whose roots are disjoint from a
    /// lighter same-round competitor's *reserved* root could link a
    /// component pair the lighter edge also connects, breaking minimality.
    require_both: bool,
    /// Union-by-rank, used only when `require_both` (the exclusive hold on
    /// both roots makes any link direction safe). The single-reservation
    /// mode must keep small-ID → large-ID links for its acyclicity proof
    /// and tolerates the deeper trees because its identity processing
    /// order gives path compression locality; random (weight) orders do
    /// not, which is why rank balancing matters for MSF.
    rank: &'a [AtomicU32],
}

impl ForestStep<'_> {
    /// Root of `v`'s tree with path halving (safe concurrently: parents
    /// only ever move towards roots).
    fn find(&self, mut v: u32) -> u32 {
        loop {
            let p = self.parents[v as usize].load(Ordering::Acquire);
            if p == v {
                return v;
            }
            let gp = self.parents[p as usize].load(Ordering::Acquire);
            let _ = self.parents[v as usize].compare_exchange(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            v = gp;
        }
    }
}

impl ReserveCommit for ForestStep<'_> {
    fn reserve(&self, i: usize) -> bool {
        let (u, v) = self.edges[i];
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false; // already connected
        }
        let (small, large) = if ru < rv { (ru, rv) } else { (rv, ru) };
        self.hooks[i].store(((small as u64) << 32) | large as u64, Ordering::Relaxed);
        write_min_usize(&self.reservation[small as usize], i);
        if self.require_both {
            write_min_usize(&self.reservation[large as usize], i);
        }
        true
    }

    fn commit(&self, i: usize) -> bool {
        let packed = self.hooks[i].load(Ordering::Relaxed);
        let r_small = (packed >> 32) as u32;
        let r_large = packed as u32;
        let held_small = self.reservation[r_small as usize].load(Ordering::Acquire) == i;
        let held_large =
            self.require_both && self.reservation[r_large as usize].load(Ordering::Acquire) == i;
        // Release reservations unconditionally (PBBS-style): whether we
        // link, retry, or turn out moot, the cells must be freed, or later
        // edges livelock on a stale minimum index.
        if held_small {
            self.reservation[r_small as usize].store(usize::MAX, Ordering::Release);
        }
        if held_large {
            self.reservation[r_large as usize].store(usize::MAX, Ordering::Release);
        }
        let won = if self.require_both {
            held_small && held_large
        } else {
            held_small
        };
        let (u, v) = self.edges[i];
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return true; // connected meanwhile
        }
        let (small, large) = if ru < rv { (ru, rv) } else { (rv, ru) };
        // A held root cannot have been linked by anyone else (only the
        // reservation winner links it), and roots only grow within a
        // round, so held reservations still name the live roots.
        if won && small == r_small {
            if self.require_both {
                // Exclusive hold on both roots: link by rank to keep find
                // paths logarithmic under arbitrary processing orders.
                let rs = self.rank[small as usize].load(Ordering::Relaxed);
                let rl = self.rank[large as usize].load(Ordering::Relaxed);
                let (child, parent) = if rs < rl {
                    (small, large)
                } else {
                    (large, small)
                };
                if rs == rl {
                    self.rank[parent as usize].store(rl + 1, Ordering::Relaxed);
                }
                self.parents[child as usize].store(parent, Ordering::Release);
            } else {
                // Links always go small root → large root, so no cycle can
                // form within a commit phase.
                self.parents[small as usize].store(large, Ordering::Release);
            }
            self.in_forest[i].store(1, Ordering::Release);
            true
        } else {
            false // lost a root; retry next round
        }
    }
}

/// Deterministic parallel spanning forest via reservation-based union-find.
/// Returns the indices (into `g.edge_list()`) of the forest edges.
pub fn spanning_forest(g: &Graph) -> Vec<usize> {
    let order: Vec<u32> = (0..g.num_edges() as u32).collect();
    spanning_forest_ordered(g, &order, false)
}

/// Deterministic per-edge weights for the weighted-graph benchmarks
/// (PBBS attaches random weights to its generated graphs; we derive them
/// from a hash of the canonical endpoints so they survive regeneration).
pub fn edge_weights(g: &Graph, seed: u64) -> Vec<u64> {
    parlay_rs::map(g.edge_list(), |&(u, v)| {
        parlay_rs::random::hash64(seed ^ ((u as u64) << 32 | v as u64))
    })
}

/// Parallel minimum spanning forest (Kruskal shape): parallel radix sort
/// of the edges by weight, then the reservation-based union-find applied
/// in weight order. With distinct weights the MSF is unique; ties break
/// by edge index (the reservation priority), keeping the result
/// deterministic. Returns indices into `g.edge_list()`.
pub fn min_spanning_forest(g: &Graph, weights: &[u64]) -> Vec<usize> {
    assert_eq!(weights.len(), g.num_edges());
    let mut order: Vec<u32> = (0..g.num_edges() as u32).collect();
    parlay_rs::integer_sort_by_key(&mut order, |&e| weights[e as usize]);
    // Kruskal order requires both-roots reservations (see ForestStep).
    spanning_forest_ordered(g, &order, true)
}

/// Sequential reference MSF weight (Kruskal with std sort + union-find).
pub fn msf_weight_seq(g: &Graph, weights: &[u64]) -> u128 {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..g.num_edges() as u32).collect();
    order.sort_by_key(|&e| (weights[e as usize], e));
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    let mut total: u128 = 0;
    for &e in &order {
        let (u, v) = g.edge_list()[e as usize];
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            total += weights[e as usize] as u128;
        }
    }
    total
}

/// Spanning forest over edges processed in the given priority order
/// (`order[i]` = edge index of priority `i`). Returns original edge
/// indices of the forest.
pub fn spanning_forest_ordered(g: &Graph, order: &[u32], require_both: bool) -> Vec<usize> {
    let n = g.num_vertices();
    let m = g.num_edges();
    assert_eq!(order.len(), m);
    // Permute the edge list into priority order for the step, then map
    // chosen positions back to original indices.
    let permuted: Vec<(u32, u32)> = parlay_rs::map(order, |&e| g.edge_list()[e as usize]);
    let chosen = spanning_forest_raw(n, &permuted, require_both);
    let mut out: Vec<usize> = parlay_rs::map(&chosen, |&i| order[i] as usize);
    parlay_rs::integer_sort_by_key(&mut out, |&e| e as u64);
    out
}

fn spanning_forest_raw(n: usize, edges: &[(u32, u32)], require_both: bool) -> Vec<usize> {
    let m = edges.len();
    let parents: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let reservation: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let in_forest: Vec<AtomicU8> = (0..m).map(|_| AtomicU8::new(0)).collect();
    let hooks: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(u64::MAX)).collect();
    let rank: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let step = ForestStep {
        edges,
        parents: &parents,
        reservation: &reservation,
        in_forest: &in_forest,
        hooks: &hooks,
        require_both,
        rank: &rank,
    };
    speculative_for(&step, 0, m, 4096.max(m / 50));
    parlay_rs::pack_index(
        &in_forest
            .into_iter()
            .map(|f| f.into_inner() != 0)
            .collect::<Vec<_>>(),
    )
}

/// Number of connected components (sequential union-find reference).
pub fn num_components_seq(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    let mut comps = n;
    for &(u, v) in g.edge_list() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            comps -= 1;
        }
    }
    comps
}

/// Check a spanning forest: right edge count and acyclic/spanning.
pub fn check_spanning_forest(g: &Graph, forest: &[usize]) -> Result<(), String> {
    let n = g.num_vertices();
    let expected = n - num_components_seq(g);
    if forest.len() != expected {
        return Err(format!(
            "forest has {} edges, expected {expected}",
            forest.len()
        ));
    }
    // The chosen edges must be acyclic (union-find re-check).
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for &e in forest {
        let (u, v) = g.edge_list()[e];
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru == rv {
            return Err(format!("forest edge {e} closes a cycle"));
        }
        parent[ru as usize] = rv;
    }
    Ok(())
}

/// Deterministic pseudo-random permutation of `0..n` (Fisher–Yates with a
/// hash-based stream; sequential — generation is not part of timed work).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let r = parlay_rs::random::Random::new(seed);
    let mut v: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (r.ith_rand(i as u64) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::graphs::{grid_graph_2d, rand_local_graph, rmat_graph};

    #[test]
    fn bfs_matches_sequential_distances() {
        for g in [
            rmat_graph(512, 2048, 1),
            rand_local_graph(800, 4, 2),
            grid_graph_2d(20),
        ] {
            assert_eq!(bfs(&g, 0), bfs_seq(&g, 0));
        }
    }

    #[test]
    fn bfs_disconnected_marks_unreached() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn mis_is_valid_on_various_graphs() {
        for (i, g) in [
            rmat_graph(400, 1600, 3),
            rand_local_graph(600, 5, 4),
            grid_graph_2d(15),
        ]
        .iter()
        .enumerate()
        {
            let mis = maximal_independent_set(g, 42 + i as u64);
            check_mis(g, &mis).unwrap();
        }
    }

    #[test]
    fn mis_deterministic_for_fixed_seed() {
        let g = rmat_graph(300, 1200, 5);
        let a = maximal_independent_set(&g, 9);
        let b = maximal_independent_set(&g, 9);
        assert_eq!(a, b, "speculative MIS must be deterministic");
    }

    #[test]
    fn matching_is_valid() {
        for (i, g) in [rmat_graph(400, 1600, 6), rand_local_graph(500, 4, 7)]
            .iter()
            .enumerate()
        {
            let (matched, k) = maximal_matching(g, 11 + i as u64);
            check_matching(g, &matched, k).unwrap();
        }
    }

    #[test]
    fn matching_deterministic_for_fixed_seed() {
        let g = rand_local_graph(400, 4, 8);
        let (a, ka) = maximal_matching(&g, 5);
        let (b, kb) = maximal_matching(&g, 5);
        assert_eq!((a, ka), (b, kb));
    }

    #[test]
    fn spanning_forest_is_valid() {
        for g in [
            rmat_graph(500, 1000, 9),
            rand_local_graph(700, 3, 10),
            grid_graph_2d(12),
            Graph::from_edges(5, &[]), // edgeless
        ] {
            let forest = spanning_forest(&g);
            check_spanning_forest(&g, &forest).unwrap();
        }
    }

    #[test]
    fn msf_weight_matches_sequential_kruskal() {
        for (i, g) in [
            rmat_graph(400, 1600, 31),
            rand_local_graph(600, 4, 32),
            grid_graph_2d(14),
        ]
        .iter()
        .enumerate()
        {
            let w = edge_weights(g, 100 + i as u64);
            let forest = min_spanning_forest(g, &w);
            check_spanning_forest(g, &forest).unwrap();
            let total: u128 = forest.iter().map(|&e| w[e] as u128).sum();
            assert_eq!(
                total,
                msf_weight_seq(g, &w),
                "MSF weight mismatch on graph {i}"
            );
        }
    }

    #[test]
    fn msf_is_deterministic() {
        let g = rmat_graph(300, 1500, 33);
        let w = edge_weights(&g, 7);
        assert_eq!(min_spanning_forest(&g, &w), min_spanning_forest(&g, &w));
    }

    #[test]
    fn msf_triangle_picks_light_edges() {
        // Triangle 0-1-2: weights chosen so the heaviest edge is excluded.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        // edge_list is sorted: [(0,1), (0,2), (1,2)]
        let w = vec![1u64, 10, 2];
        let forest = min_spanning_forest(&g, &w);
        assert_eq!(forest, vec![0, 2], "must pick weights 1 and 2");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = random_permutation(1000, 3);
        let mut s = p.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &x)| x == i as u32));
        assert_ne!(p, s, "should be shuffled");
    }
}
