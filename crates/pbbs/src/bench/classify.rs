//! `classify` (decision tree): the PBBS benchmark the paper's §5.2 calls
//! out as a worst case for signal-based LCWS (steal-heavy, high signaling
//! overhead on ⟨classify/decisionTree, covtype⟩).
//!
//! PBBS trains on the proprietary-ish `covtype` dataset; per DESIGN.md we
//! substitute a synthetic dataset with the same shape (quantized integer
//! features, few classes, labels generated from a hidden rule plus noise)
//! so the algorithm's irregular nested parallelism — parallel split search
//! across features × parallel partition × parallel recursion on uneven
//! subtrees — is exercised identically.

use lcws_core::join;
use parlay_rs::primitives::tabulate;
use parlay_rs::random::Random;

/// Number of quantization levels per feature.
pub const LEVELS: usize = 64;

/// A dataset of quantized features (column-major) and class labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `features[f][i]` = value of feature `f` for sample `i`, in
    /// `0..LEVELS`.
    pub features: Vec<Vec<u8>>,
    /// `labels[i]` in `0..num_classes`.
    pub labels: Vec<u8>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Is the dataset empty?
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Synthetic covtype-like generator: `dims` quantized features, labels
/// from a hidden 3-split rule with `noise` label flips.
pub fn synthetic_dataset(n: usize, dims: usize, num_classes: usize, seed: u64) -> Dataset {
    assert!(dims >= 3 && (2..=256).contains(&num_classes));
    let r = Random::new(seed ^ 0xC0F7);
    let features: Vec<Vec<u8>> = (0..dims)
        .map(|f| {
            let rf = r.fork(f as u64);
            tabulate(n, move |i| (rf.ith_rand(i as u64) % LEVELS as u64) as u8)
        })
        .collect();
    let labels: Vec<u8> = tabulate(n, |i| {
        // Hidden rule over features 0..3.
        let a = features[0][i] as usize >= LEVELS / 2;
        let b = features[1][i] as usize >= LEVELS / 3;
        let c = features[2][i] as usize >= 2 * LEVELS / 3;
        let class = ((a as usize) * 4 + (b as usize) * 2 + c as usize) % num_classes;
        // 10% label noise.
        if r.ith_rand(0xAB00 + i as u64).is_multiple_of(10) {
            ((class + 1 + (r.ith_rand(i as u64) as usize % (num_classes - 1))) % num_classes) as u8
        } else {
            class as u8
        }
    });
    Dataset {
        features,
        labels,
        num_classes,
    }
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// Predict this class.
    Leaf(u8),
    /// Split on `feature < threshold`.
    Node {
        /// Feature index.
        feature: u16,
        /// Samples with `value < threshold` go left.
        threshold: u8,
        /// Left subtree.
        left: Box<Tree>,
        /// Right subtree.
        right: Box<Tree>,
    },
}

impl Tree {
    /// Predict the class of sample `i` of `data`.
    pub fn predict(&self, data: &Dataset, i: usize) -> u8 {
        match self {
            Tree::Leaf(c) => *c,
            Tree::Node {
                feature,
                threshold,
                left,
                right,
            } => {
                if data.features[*feature as usize][i] < *threshold {
                    left.predict(data, i)
                } else {
                    right.predict(data, i)
                }
            }
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node { left, right, .. } => 1 + left.size() + right.size(),
        }
    }
}

const MIN_LEAF: usize = 32;
const MAX_DEPTH: usize = 12;

/// Weighted Gini impurity of a split described by per-side class counts.
fn gini_of(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

/// Best `(threshold, weighted_gini)` for one feature over `idx`, via a
/// class×level histogram and a prefix sweep. Ties pick the smallest
/// threshold (determinism).
fn best_split_for_feature(data: &Dataset, idx: &[u32], feature: usize) -> (u8, f64) {
    let k = data.num_classes;
    let mut hist = vec![0u64; LEVELS * k];
    for &i in idx {
        let v = data.features[feature][i as usize] as usize;
        hist[v * k + data.labels[i as usize] as usize] += 1;
    }
    let total_counts: Vec<u64> = (0..k)
        .map(|c| (0..LEVELS).map(|v| hist[v * k + c]).sum())
        .collect();
    let n = idx.len() as f64;
    let mut left = vec![0u64; k];
    let mut best = (0u8, f64::INFINITY);
    for t in 1..LEVELS {
        for c in 0..k {
            left[c] += hist[(t - 1) * k + c];
        }
        let left_n: u64 = left.iter().sum();
        let right_n = idx.len() as u64 - left_n;
        if left_n == 0 || right_n == 0 {
            continue;
        }
        let right: Vec<u64> = (0..k).map(|c| total_counts[c] - left[c]).collect();
        let w = (left_n as f64 / n) * gini_of(&left) + (right_n as f64 / n) * gini_of(&right);
        if w + 1e-12 < best.1 {
            best = (t as u8, w);
        }
    }
    best
}

fn majority(data: &Dataset, idx: &[u32]) -> u8 {
    let mut counts = vec![0u64; data.num_classes];
    for &i in idx {
        counts[data.labels[i as usize] as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(c, _)| c as u8)
        .unwrap_or(0)
}

fn is_pure(data: &Dataset, idx: &[u32]) -> bool {
    idx.windows(2)
        .all(|w| data.labels[w[0] as usize] == data.labels[w[1] as usize])
}

fn build(data: &Dataset, idx: Vec<u32>, depth: usize, parallel: bool) -> Tree {
    if idx.len() <= MIN_LEAF || depth >= MAX_DEPTH || is_pure(data, &idx) {
        return Tree::Leaf(majority(data, &idx));
    }
    let dims = data.features.len();
    // Parallel split search across features.
    let candidates: Vec<(u8, f64)> = if parallel {
        tabulate(dims, |f| best_split_for_feature(data, &idx, f))
    } else {
        (0..dims)
            .map(|f| best_split_for_feature(data, &idx, f))
            .collect()
    };
    // Deterministic argmin: strict improvement, lowest feature wins ties.
    let mut best_f = usize::MAX;
    let mut best = (0u8, f64::INFINITY);
    for (f, &(t, g)) in candidates.iter().enumerate() {
        if g + 1e-12 < best.1 {
            best = (t, g);
            best_f = f;
        }
    }
    if best_f == usize::MAX {
        return Tree::Leaf(majority(data, &idx));
    }
    let (threshold, _) = best;
    let col = &data.features[best_f];
    let (left_idx, right_idx) = if parallel {
        join(
            || parlay_rs::filter(&idx, |&i| col[i as usize] < threshold),
            || parlay_rs::filter(&idx, |&i| col[i as usize] >= threshold),
        )
    } else {
        (
            idx.iter()
                .copied()
                .filter(|&i| col[i as usize] < threshold)
                .collect(),
            idx.iter()
                .copied()
                .filter(|&i| col[i as usize] >= threshold)
                .collect(),
        )
    };
    if left_idx.is_empty() || right_idx.is_empty() {
        return Tree::Leaf(majority(data, &idx));
    }
    let (left, right) = if parallel {
        join(
            || build(data, left_idx, depth + 1, true),
            || build(data, right_idx, depth + 1, true),
        )
    } else {
        (
            build(data, left_idx, depth + 1, false),
            build(data, right_idx, depth + 1, false),
        )
    };
    Tree::Node {
        feature: best_f as u16,
        threshold,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Train a decision tree in parallel (nested irregular fork-join).
pub fn train(data: &Dataset) -> Tree {
    build(data, (0..data.len() as u32).collect(), 0, true)
}

/// Sequential reference trainer (identical deterministic tie-breaking, so
/// it produces the *same tree*).
pub fn train_seq(data: &Dataset) -> Tree {
    build(data, (0..data.len() as u32).collect(), 0, false)
}

/// Training-set accuracy of `tree` on `data` (parallel evaluation).
pub fn accuracy(tree: &Tree, data: &Dataset) -> f64 {
    let hits = parlay_rs::count(
        &tabulate(data.len(), |i| tree.predict(data, i) == data.labels[i]),
        |&h| h,
    );
    hits as f64 / data.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_and_sequential_trees_identical() {
        let data = synthetic_dataset(4_000, 6, 8, 1);
        let par = train(&data);
        let seq = train_seq(&data);
        assert_eq!(par, seq, "deterministic tie-breaking must make trees equal");
    }

    #[test]
    fn tree_learns_the_hidden_rule() {
        let data = synthetic_dataset(8_000, 6, 8, 2);
        let tree = train(&data);
        let acc = accuracy(&tree, &data);
        // 10% label noise bounds perfect accuracy near 0.9; far above the
        // 1/8 random baseline proves real learning.
        assert!(acc > 0.6, "accuracy too low: {acc}");
        assert!(tree.size() > 10, "tree suspiciously small: {}", tree.size());
    }

    #[test]
    fn pure_and_tiny_nodes_become_leaves() {
        let mut data = synthetic_dataset(1_000, 4, 4, 3);
        data.labels.iter_mut().for_each(|l| *l = 2);
        let tree = train(&data);
        assert_eq!(tree, Tree::Leaf(2));
    }

    #[test]
    fn prediction_depends_on_features() {
        let data = synthetic_dataset(5_000, 6, 8, 4);
        let tree = train(&data);
        let preds: std::collections::HashSet<u8> =
            (0..200).map(|i| tree.predict(&data, i)).collect();
        assert!(preds.len() > 1, "tree predicts a constant");
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini_of(&[10, 0, 0]), 0.0);
        let g = gini_of(&[5, 5]);
        assert!((g - 0.5).abs() < 1e-12);
        assert_eq!(gini_of(&[]), 0.0);
    }
}
