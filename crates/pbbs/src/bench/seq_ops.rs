//! `histogram` and `removeDuplicates`.

use parlay_rs::hashtable::ConcurrentSet;
use parlay_rs::primitives::{par_blocks, tabulate, tabulate_grain};

/// Parallel histogram of `keys` into `buckets` counters, PBBS-style:
/// per-block private counting followed by a tree reduction over the block
/// count arrays (no atomics on the hot path).
pub fn histogram(keys: &[u64], buckets: usize) -> Vec<u64> {
    let n = keys.len();
    if n == 0 {
        return vec![0; buckets];
    }
    let grain = lcws_core::default_grain(n).max(buckets / 4);
    let blocks = n.div_ceil(grain);
    let partials: Vec<Vec<u64>> = tabulate_grain(blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        let mut counts = vec![0u64; buckets];
        for &k in &keys[lo..hi] {
            counts[(k as usize) % buckets] += 1;
        }
        counts
    });
    // Reduce the block count arrays bucket-wise, in parallel over buckets.
    tabulate(buckets, |d| partials.iter().map(|p| p[d]).sum())
}

/// Sequential reference histogram.
pub fn histogram_seq(keys: &[u64], buckets: usize) -> Vec<u64> {
    let mut counts = vec![0u64; buckets];
    for &k in keys {
        counts[(k as usize) % buckets] += 1;
    }
    counts
}

/// Parallel `removeDuplicates` via the phase-concurrent hash set; returns
/// the distinct keys in **sorted** order for deterministic comparison
/// (PBBS checks set equality; sorting makes the checksum canonical).
pub fn remove_duplicates(keys: &[u64]) -> Vec<u64> {
    let set = ConcurrentSet::with_capacity(keys.len().max(16));
    par_blocks(keys, lcws_core::default_grain(keys.len()), |_b, block| {
        for &k in block {
            set.insert(k);
        }
    });
    let mut out = set.elements();
    parlay_rs::integer_sort(&mut out);
    out
}

/// Sequential reference for `removeDuplicates` (sorted distinct keys).
pub fn remove_duplicates_seq(keys: &[u64]) -> Vec<u64> {
    let mut v = keys.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::seqs;

    #[test]
    fn histogram_matches_sequential() {
        let keys = seqs::random_seq(40_000, 1_000, 1);
        assert_eq!(histogram(&keys, 1_000), histogram_seq(&keys, 1_000));
    }

    #[test]
    fn histogram_few_buckets() {
        let keys = seqs::random_seq(40_000, 256, 2);
        let h = histogram(&keys, 256);
        assert_eq!(h.iter().sum::<u64>(), 40_000);
        assert_eq!(h, histogram_seq(&keys, 256));
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(histogram(&[], 8), vec![0u64; 8]);
    }

    #[test]
    fn remove_duplicates_matches_sequential() {
        let keys = seqs::random_seq(30_000, 5_000, 3); // heavy duplication
        assert_eq!(remove_duplicates(&keys), remove_duplicates_seq(&keys));
    }

    #[test]
    fn remove_duplicates_all_unique_and_all_same() {
        let unique: Vec<u64> = (0..10_000).collect();
        assert_eq!(remove_duplicates(&unique), unique);
        let same = vec![42u64; 10_000];
        assert_eq!(remove_duplicates(&same), vec![42]);
    }
}
