//! `nbody`: one gravitational force-calculation step with a Barnes–Hut
//! octree (θ-approximation), the PBBS n-body workload shape. PBBS uses the
//! Callahan–Kosaraju well-separated pair decomposition; Barnes–Hut is the
//! classic substitute with the same irregular-tree task structure
//! (substitution recorded in DESIGN.md).

use lcws_core::join;
use parlay_rs::primitives::tabulate;

use crate::gen::geom::Point3;

/// Opening criterion: a cell of width `w` at distance `d` is summarized
/// when `w / d < THETA`.
const THETA: f64 = 0.5;
/// Max bodies per leaf.
const LEAF: usize = 16;
/// Softening to avoid singular forces between near-coincident bodies.
const SOFTENING2: f64 = 1e-9;

/// An octree node over a cubic region.
struct Cell {
    half: f64,
    mass: f64,
    com: Point3,
    children: Vec<Cell>,
    /// Body indices for leaf cells.
    bodies: Vec<u32>,
}

impl Cell {
    fn build(pts: &[Point3], ids: Vec<u32>, center: Point3, half: f64, depth: usize) -> Cell {
        let mass = ids.len() as f64;
        let com = if ids.is_empty() {
            center
        } else {
            let (sx, sy, sz) = ids.iter().fold((0.0, 0.0, 0.0), |(x, y, z), &i| {
                let p = pts[i as usize];
                (x + p.x, y + p.y, z + p.z)
            });
            Point3::new(sx / mass, sy / mass, sz / mass)
        };
        if ids.len() <= LEAF || depth > 40 {
            return Cell {
                half,
                mass,
                com,
                children: Vec::new(),
                bodies: ids,
            };
        }
        // Partition into octants.
        let mut buckets: Vec<Vec<u32>> = (0..8).map(|_| Vec::new()).collect();
        for &i in &ids {
            let p = pts[i as usize];
            let o = ((p.x >= center.x) as usize)
                | (((p.y >= center.y) as usize) << 1)
                | (((p.z >= center.z) as usize) << 2);
            buckets[o].push(i);
        }
        let q = half / 2.0;
        // Build the eight children with nested fork-join (irregular tree
        // parallelism — the workload shape this benchmark contributes).
        let child_centers: Vec<Point3> = (0..8)
            .map(|o| {
                Point3::new(
                    center.x + if o & 1 != 0 { q } else { -q },
                    center.y + if o & 2 != 0 { q } else { -q },
                    center.z + if o & 4 != 0 { q } else { -q },
                )
            })
            .collect();
        let mut iter = buckets.into_iter().zip(child_centers);
        let mut build_one = || {
            let (ids, c) = iter.next().unwrap();
            move || Cell::build(pts, ids, c, q, depth + 1)
        };
        // 8 children as a balanced join tree.
        let (c0, c1, c2, c3, c4, c5, c6, c7) = {
            let f0 = build_one();
            let f1 = build_one();
            let f2 = build_one();
            let f3 = build_one();
            let f4 = build_one();
            let f5 = build_one();
            let f6 = build_one();
            let f7 = build_one();
            let ((a, b), (c, d)) = join(
                || join(|| join(f0, f1), || join(f2, f3)),
                || join(|| join(f4, f5), || join(f6, f7)),
            );
            (a.0, a.1, b.0, b.1, c.0, c.1, d.0, d.1)
        };
        Cell {
            half,
            mass,
            com,
            children: vec![c0, c1, c2, c3, c4, c5, c6, c7],
            bodies: Vec::new(),
        }
    }

    fn force_on(&self, pts: &[Point3], q: usize, acc: &mut Point3) {
        if self.mass == 0.0 {
            return;
        }
        let p = pts[q];
        if self.children.is_empty() {
            for &i in &self.bodies {
                if i as usize != q {
                    accumulate(&pts[i as usize], 1.0, &p, acc);
                }
            }
            return;
        }
        let d2 = self.com.dist2(&p).max(SOFTENING2);
        let width = self.half * 2.0;
        if width * width < THETA * THETA * d2 {
            accumulate(&self.com, self.mass, &p, acc);
        } else {
            for c in &self.children {
                c.force_on(pts, q, acc);
            }
        }
    }
}

#[inline]
fn accumulate(src: &Point3, mass: f64, at: &Point3, acc: &mut Point3) {
    let dx = src.x - at.x;
    let dy = src.y - at.y;
    let dz = src.z - at.z;
    let d2 = (dx * dx + dy * dy + dz * dz) + SOFTENING2;
    let inv = mass / (d2 * d2.sqrt());
    acc.x += dx * inv;
    acc.y += dy * inv;
    acc.z += dz * inv;
}

/// One Barnes–Hut force step: acceleration on every unit-mass body.
pub fn nbody_forces(pts: &[Point3]) -> Vec<Point3> {
    if pts.is_empty() {
        return Vec::new();
    }
    // Bounding cube.
    let mut lo = pts[0];
    let mut hi = pts[0];
    for p in pts {
        lo = Point3::new(lo.x.min(p.x), lo.y.min(p.y), lo.z.min(p.z));
        hi = Point3::new(hi.x.max(p.x), hi.y.max(p.y), hi.z.max(p.z));
    }
    let center = Point3::new(
        (lo.x + hi.x) / 2.0,
        (lo.y + hi.y) / 2.0,
        (lo.z + hi.z) / 2.0,
    );
    let half = ((hi.x - lo.x).max(hi.y - lo.y).max(hi.z - lo.z) / 2.0).max(1e-12) * 1.0001;
    let root = Cell::build(pts, (0..pts.len() as u32).collect(), center, half, 0);
    tabulate(pts.len(), |q| {
        let mut acc = Point3::new(0.0, 0.0, 0.0);
        root.force_on(pts, q, &mut acc);
        acc
    })
}

/// Exact O(n²) reference forces.
pub fn nbody_forces_exact(pts: &[Point3]) -> Vec<Point3> {
    (0..pts.len())
        .map(|q| {
            let mut acc = Point3::new(0.0, 0.0, 0.0);
            for (i, p) in pts.iter().enumerate() {
                if i != q {
                    accumulate(p, 1.0, &pts[q], &mut acc);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::geom::{points_in_cube_3d, points_plummer_3d};

    fn magnitude(p: &Point3) -> f64 {
        (p.x * p.x + p.y * p.y + p.z * p.z).sqrt()
    }

    #[test]
    fn two_bodies_attract_equally_and_oppositely() {
        let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0)];
        let f = nbody_forces(&pts);
        assert!(f[0].x > 0.9 && f[1].x < -0.9);
        assert!((f[0].x + f[1].x).abs() < 1e-9);
        assert!(f[0].y.abs() < 1e-12 && f[0].z.abs() < 1e-12);
    }

    #[test]
    fn barnes_hut_approximates_exact_forces() {
        let pts = points_in_cube_3d(800, 1);
        let approx = nbody_forces(&pts);
        let exact = nbody_forces_exact(&pts);
        let mut rel_err_sum = 0.0;
        for (a, e) in approx.iter().zip(&exact) {
            let diff = Point3::new(a.x - e.x, a.y - e.y, a.z - e.z);
            rel_err_sum += magnitude(&diff) / magnitude(e).max(1e-9);
        }
        let avg_rel = rel_err_sum / pts.len() as f64;
        assert!(
            avg_rel < 0.05,
            "θ=0.5 should give ~1% average force error, got {avg_rel:.4}"
        );
    }

    #[test]
    fn plummer_distribution_runs() {
        let pts = points_plummer_3d(2_000, 2);
        let f = nbody_forces(&pts);
        assert_eq!(f.len(), pts.len());
        assert!(f
            .iter()
            .all(|p| p.x.is_finite() && p.y.is_finite() && p.z.is_finite()));
    }

    #[test]
    fn empty_and_single() {
        assert!(nbody_forces(&[]).is_empty());
        let one = nbody_forces(&[Point3::new(1.0, 2.0, 3.0)]);
        assert_eq!(magnitude(&one[0]), 0.0);
    }
}
