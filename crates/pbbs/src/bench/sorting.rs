//! `integerSort` and `comparisonSort`.

use parlay_rs::sort::{integer_sort, integer_sort_by_key, sample_sort_by};

/// Parallel integer sort of `u64` keys (stable LSD radix).
pub fn integer_sort_bench(data: &mut [u64]) {
    integer_sort(data);
}

/// Parallel integer sort of key-value pairs by key.
pub fn integer_sort_pairs_bench(data: &mut [(u64, u64)]) {
    integer_sort_by_key(data, |p| p.0);
}

/// Parallel comparison sort of doubles — **sample sort**, the algorithm
/// PBBS's `comparisonSort` uses. NaNs are not present in PBBS inputs;
/// total order via `total_cmp`.
pub fn comparison_sort_bench(data: &mut [f64]) {
    sample_sort_by(data, |a, b| a.total_cmp(b));
}

/// Parallel comparison sort of strings (sample sort).
pub fn comparison_sort_strings_bench(data: &mut [String]) {
    sample_sort_by(data, |a, b| a.cmp(b));
}

/// Is `data` sorted (non-decreasing) under `cmp`?
pub fn is_sorted_by<T, C: Fn(&T, &T) -> std::cmp::Ordering>(data: &[T], cmp: C) -> bool {
    data.windows(2)
        .all(|w| cmp(&w[0], &w[1]) != std::cmp::Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::seqs;

    #[test]
    fn integer_sort_bench_sorts() {
        let mut v = seqs::random_seq(30_000, u64::MAX, 1);
        let mut expected = v.clone();
        expected.sort_unstable();
        integer_sort_bench(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn pair_sort_is_stable_on_small_keys() {
        let mut v = seqs::random_pair_seq(20_000, 256, 2);
        let mut expected = v.clone();
        expected.sort_by_key(|p| p.0);
        integer_sort_pairs_bench(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn double_sort_matches_std() {
        let mut v = seqs::expt_f64_seq(25_000, 3);
        let mut expected = v.clone();
        expected.sort_by(|a, b| a.total_cmp(b));
        comparison_sort_bench(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn string_sort_matches_std() {
        let mut v = crate::gen::text::trigram_words(8_000, 4);
        let mut expected = v.clone();
        expected.sort();
        comparison_sort_strings_bench(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn almost_sorted_input() {
        let mut v = seqs::almost_sorted_seq(20_000, 5);
        integer_sort_bench(&mut v);
        assert!(is_sorted_by(&v, |a, b| a.cmp(b)));
    }
}
