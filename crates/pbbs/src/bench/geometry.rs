//! Geometry benchmarks: `convexHull` (parallel quickhull) and
//! `nearestNeighbors` (k-d tree, 1-NN per point).

use lcws_core::join;
use parlay_rs::primitives::tabulate;

use crate::gen::geom::Point2;

/// Parallel quickhull: indices of the convex hull of `pts`, in
/// counter-clockwise order starting from the leftmost point.
pub fn convex_hull(pts: &[Point2]) -> Vec<u32> {
    let n = pts.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    // Extreme points by (x, y) lexicographic order.
    let lo = (0..n)
        .min_by(|&a, &b| {
            (pts[a].x, pts[a].y)
                .partial_cmp(&(pts[b].x, pts[b].y))
                .unwrap()
        })
        .unwrap() as u32;
    let hi = (0..n)
        .max_by(|&a, &b| {
            (pts[a].x, pts[a].y)
                .partial_cmp(&(pts[b].x, pts[b].y))
                .unwrap()
        })
        .unwrap() as u32;
    if lo == hi {
        return vec![lo]; // all points identical
    }
    let idx: Vec<u32> = tabulate(n, |i| i as u32);
    let above = parlay_rs::filter(&idx, |&i| {
        Point2::cross(&pts[lo as usize], &pts[hi as usize], &pts[i as usize]) > 0.0
    });
    let below = parlay_rs::filter(&idx, |&i| {
        Point2::cross(&pts[hi as usize], &pts[lo as usize], &pts[i as usize]) > 0.0
    });
    let (upper, lower) = join(
        || quickhull_rec(pts, &above, lo, hi),
        || quickhull_rec(pts, &below, hi, lo),
    );
    // lo → above-chain → hi → below-chain traverses the hull clockwise
    // (the above chain runs left-to-right over the top). Reverse and
    // rotate so the result is CCW starting at the leftmost point.
    let mut hull = Vec::with_capacity(upper.len() + lower.len() + 2);
    hull.push(lo);
    hull.extend(upper);
    hull.push(hi);
    hull.extend(lower);
    hull.reverse();
    hull.rotate_right(1);
    debug_assert_eq!(hull[0], lo);
    hull
}

/// Hull points strictly left of `a → b`, recursively, in chain order.
fn quickhull_rec(pts: &[Point2], candidates: &[u32], a: u32, b: u32) -> Vec<u32> {
    if candidates.is_empty() {
        return Vec::new();
    }
    // Farthest point from the line a→b.
    let far = *candidates
        .iter()
        .max_by(|&&p, &&q| {
            let dp = Point2::cross(&pts[a as usize], &pts[b as usize], &pts[p as usize]);
            let dq = Point2::cross(&pts[a as usize], &pts[b as usize], &pts[q as usize]);
            dp.partial_cmp(&dq).unwrap()
        })
        .unwrap();
    let (left_of_af, left_of_fb) = join(
        || {
            parlay_rs::filter(candidates, |&i| {
                Point2::cross(&pts[a as usize], &pts[far as usize], &pts[i as usize]) > 0.0
            })
        },
        || {
            parlay_rs::filter(candidates, |&i| {
                Point2::cross(&pts[far as usize], &pts[b as usize], &pts[i as usize]) > 0.0
            })
        },
    );
    let (mut lo_chain, hi_chain) = join(
        || quickhull_rec(pts, &left_of_af, a, far),
        || quickhull_rec(pts, &left_of_fb, far, b),
    );
    lo_chain.push(far);
    lo_chain.extend(hi_chain);
    lo_chain
}

/// Sequential reference hull (Andrew's monotone chain). Returns hull
/// indices in CCW order starting from the leftmost point; collinear
/// boundary points are excluded (matching quickhull's strict test).
pub fn convex_hull_seq(pts: &[Point2]) -> Vec<u32> {
    let n = pts.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        (pts[a as usize].x, pts[a as usize].y)
            .partial_cmp(&(pts[b as usize].x, pts[b as usize].y))
            .unwrap()
    });
    order.dedup_by(|a, b| pts[*a as usize] == pts[*b as usize]);
    if order.len() == 1 {
        return vec![order[0]];
    }
    let cross = |o: u32, a: u32, b: u32| {
        Point2::cross(&pts[o as usize], &pts[a as usize], &pts[b as usize])
    };
    let mut lower: Vec<u32> = Vec::new();
    for &p in &order {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<u32> = Vec::new();
    for &p in order.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    // Standard monotone chain with the `cross ≤ 0` pop rule yields the hull
    // in counter-clockwise order starting at the leftmost point: the lower
    // chain left→right, then the upper chain right→left.
    let mut hull = lower;
    hull.extend(upper);
    hull
}

/// Validity check for a hull: all points inside or on the hull, hull is
/// convex and CCW.
pub fn check_hull(pts: &[Point2], hull: &[u32]) -> Result<(), String> {
    if pts.is_empty() {
        return if hull.is_empty() {
            Ok(())
        } else {
            Err("hull of empty set".into())
        };
    }
    if hull.len() < 3 {
        return Ok(()); // degenerate inputs
    }
    let h = hull.len();
    for k in 0..h {
        let a = &pts[hull[k] as usize];
        let b = &pts[hull[(k + 1) % h] as usize];
        let c = &pts[hull[(k + 2) % h] as usize];
        if Point2::cross(a, b, c) <= 0.0 {
            return Err(format!("hull not strictly convex at position {k}"));
        }
    }
    const EPS: f64 = 1e-9;
    for (i, p) in pts.iter().enumerate() {
        for k in 0..h {
            let a = &pts[hull[k] as usize];
            let b = &pts[hull[(k + 1) % h] as usize];
            let scale = a.dist2(b).sqrt().max(1.0);
            if Point2::cross(a, b, p) < -EPS * scale {
                return Err(format!("point {i} lies outside hull edge {k}"));
            }
        }
    }
    Ok(())
}

/// A k-d tree over 2-d points for nearest-neighbor queries.
pub struct KdTree {
    nodes: Vec<KdNode>,
    /// Point indices, permuted into tree order.
    order: Vec<u32>,
    pts: Vec<Point2>,
}

struct KdNode {
    /// Range into `order`.
    lo: usize,
    hi: usize,
    /// Split coordinate value (x for even depth, y for odd).
    split: f64,
    /// Children node ids (`usize::MAX` = leaf).
    left: usize,
    right: usize,
}

const KD_LEAF: usize = 16;

impl KdTree {
    /// Build in parallel (median split by alternating coordinate).
    pub fn build(pts: &[Point2]) -> KdTree {
        use parking_lot::Mutex;
        let nodes = Mutex::new(Vec::new());
        let mut order: Vec<u32> = (0..pts.len() as u32).collect();
        let root = Self::build_rec(pts, &mut order, 0, 0, &nodes);
        debug_assert!(pts.is_empty() || root == 0);
        KdTree {
            nodes: nodes.into_inner(),
            order,
            pts: pts.to_vec(),
        }
    }

    fn build_rec(
        pts: &[Point2],
        order: &mut [u32],
        offset: usize,
        depth: usize,
        nodes: &parking_lot::Mutex<Vec<KdNode>>,
    ) -> usize {
        let id = {
            let mut n = nodes.lock();
            n.push(KdNode {
                lo: offset,
                hi: offset + order.len(),
                split: 0.0,
                left: usize::MAX,
                right: usize::MAX,
            });
            n.len() - 1
        };
        if order.len() <= KD_LEAF {
            return id;
        }
        let by_x = depth.is_multiple_of(2);
        let mid = order.len() / 2;
        order.select_nth_unstable_by(mid, |&a, &b| {
            let (ka, kb) = if by_x {
                (pts[a as usize].x, pts[b as usize].x)
            } else {
                (pts[a as usize].y, pts[b as usize].y)
            };
            ka.partial_cmp(&kb).unwrap()
        });
        let split = if by_x {
            pts[order[mid] as usize].x
        } else {
            pts[order[mid] as usize].y
        };
        let (lo_half, hi_half) = order.split_at_mut(mid);
        let (l, r) = join(
            || Self::build_rec(pts, lo_half, offset, depth + 1, nodes),
            || Self::build_rec(pts, hi_half, offset + mid, depth + 1, nodes),
        );
        {
            let mut n = nodes.lock();
            n[id].split = split;
            n[id].left = l;
            n[id].right = r;
        }
        id
    }

    /// Nearest neighbor of `pts[q]` excluding `q` itself; `None` for a
    /// single-point set.
    pub fn nearest_excluding(&self, q: usize) -> Option<u32> {
        if self.pts.len() < 2 {
            return None;
        }
        let target = self.pts[q];
        let mut best = (f64::INFINITY, u32::MAX);
        self.search(0, 0, q as u32, &target, &mut best);
        Some(best.1)
    }

    fn search(&self, node: usize, depth: usize, skip: u32, t: &Point2, best: &mut (f64, u32)) {
        let nd = &self.nodes[node];
        if nd.left == usize::MAX {
            for &i in &self.order[nd.lo..nd.hi] {
                if i != skip {
                    let d = self.pts[i as usize].dist2(t);
                    if d < best.0 {
                        *best = (d, i);
                    }
                }
            }
            return;
        }
        let key = if depth.is_multiple_of(2) { t.x } else { t.y };
        let (near, far) = if key < nd.split {
            (nd.left, nd.right)
        } else {
            (nd.right, nd.left)
        };
        self.search(near, depth + 1, skip, t, best);
        let plane = key - nd.split;
        if plane * plane < best.0 {
            self.search(far, depth + 1, skip, t, best);
        }
    }
}

/// `nearestNeighbors` benchmark: for every point, the index of its nearest
/// other point (1-NN), via a parallel-built k-d tree and parallel queries.
pub fn all_nearest_neighbors(pts: &[Point2]) -> Vec<u32> {
    let tree = KdTree::build(pts);
    tabulate(pts.len(), |q| tree.nearest_excluding(q).unwrap_or(u32::MAX))
}

/// Brute-force 1-NN reference.
pub fn all_nearest_neighbors_seq(pts: &[Point2]) -> Vec<u32> {
    (0..pts.len())
        .map(|q| {
            let mut best = (f64::INFINITY, u32::MAX);
            for (i, p) in pts.iter().enumerate() {
                if i != q {
                    let d = p.dist2(&pts[q]);
                    if d < best.0 {
                        best = (d, i as u32);
                    }
                }
            }
            best.1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::geom::{points_in_cube_2d, points_in_sphere_2d, points_kuzmin_2d};

    #[test]
    fn hull_of_square_with_interior() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
            Point2::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        check_hull(&pts, &hull).unwrap();
        let mut ids = hull.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hull_valid_on_generators() {
        for pts in [
            points_in_cube_2d(5_000, 1),
            points_in_sphere_2d(5_000, 2),
            points_kuzmin_2d(5_000, 3),
        ] {
            let hull = convex_hull(&pts);
            check_hull(&pts, &hull).unwrap();
            // Same vertex set as the sequential reference.
            let mut a = hull.clone();
            a.sort_unstable();
            let mut b = convex_hull_seq(&pts);
            b.sort_unstable();
            assert_eq!(a, b, "hull vertex sets must agree");
        }
    }

    #[test]
    fn hull_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point2::new(1.0, 2.0)]), vec![0]);
        let two = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let h = convex_hull(&two);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = points_in_cube_2d(2_000, 4);
        let fast = all_nearest_neighbors(&pts);
        let slow = all_nearest_neighbors_seq(&pts);
        for q in 0..pts.len() {
            // Allow distance ties to resolve differently.
            let df = pts[fast[q] as usize].dist2(&pts[q]);
            let ds = pts[slow[q] as usize].dist2(&pts[q]);
            assert!((df - ds).abs() < 1e-12, "query {q}: kd {df} vs brute {ds}");
        }
    }

    #[test]
    fn knn_on_skewed_distribution() {
        let pts = points_kuzmin_2d(1_500, 5);
        let fast = all_nearest_neighbors(&pts);
        let slow = all_nearest_neighbors_seq(&pts);
        for q in 0..pts.len() {
            let df = pts[fast[q] as usize].dist2(&pts[q]);
            let ds = pts[slow[q] as usize].dist2(&pts[q]);
            assert!((df - ds).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_tiny_inputs() {
        assert!(all_nearest_neighbors(&[]).is_empty());
        assert_eq!(
            all_nearest_neighbors(&[Point2::new(0.0, 0.0)]),
            vec![u32::MAX]
        );
        let two = vec![Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)];
        assert_eq!(all_nearest_neighbors(&two), vec![1, 0]);
    }
}
