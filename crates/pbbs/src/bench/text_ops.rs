//! `wordCounts` and `invertedIndex`.

use std::collections::BTreeMap;

use parlay_rs::primitives::{pack_index, tabulate};
use parlay_rs::sort::sort_by;

/// Parallel word counting: sort-based (sort the words, then find segment
/// boundaries with a parallel pack — the PBBS `group_by` strategy).
/// Returns `(word, count)` pairs sorted by word.
pub fn word_counts(words: &[String]) -> Vec<(String, u64)> {
    let n = words.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sorted = words.to_vec();
    sort_by(&mut sorted, |a, b| a.cmp(b));
    let starts: Vec<bool> = tabulate(n, |i| i == 0 || sorted[i] != sorted[i - 1]);
    let idx = pack_index(&starts);
    tabulate(idx.len(), |k| {
        let lo = idx[k];
        let hi = if k + 1 < idx.len() { idx[k + 1] } else { n };
        (sorted[lo].clone(), (hi - lo) as u64)
    })
}

/// Sequential reference for [`word_counts`].
pub fn word_counts_seq(words: &[String]) -> Vec<(String, u64)> {
    let mut m: BTreeMap<&String, u64> = BTreeMap::new();
    for w in words {
        *m.entry(w).or_default() += 1;
    }
    m.into_iter().map(|(w, c)| (w.clone(), c)).collect()
}

/// Parallel inverted index: for each word, the sorted list of document ids
/// containing it. Sort-based: build (word, doc) pairs per document, sort by
/// (word, doc), dedup, then segment. Returns postings sorted by word.
pub fn inverted_index(docs: &[Vec<String>]) -> Vec<(String, Vec<u32>)> {
    // Flatten (word, doc) pairs in parallel.
    let pairs_nested: Vec<Vec<(String, u32)>> = tabulate(docs.len(), |d| {
        docs[d]
            .iter()
            .map(|w| (w.clone(), d as u32))
            .collect::<Vec<_>>()
    });
    let mut pairs = parlay_rs::flatten(&pairs_nested);
    if pairs.is_empty() {
        return Vec::new();
    }
    sort_by(&mut pairs, |a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let n = pairs.len();
    // Drop duplicate (word, doc) pairs.
    let keep: Vec<bool> = tabulate(n, |i| i == 0 || pairs[i] != pairs[i - 1]);
    let kept = pack_index(&keep);
    let deduped: Vec<&(String, u32)> = kept.iter().map(|&i| &pairs[i]).collect();
    let m = deduped.len();
    // Word segment boundaries.
    let starts: Vec<bool> = tabulate(m, |i| i == 0 || deduped[i].0 != deduped[i - 1].0);
    let seg = pack_index(&starts);
    tabulate(seg.len(), |k| {
        let lo = seg[k];
        let hi = if k + 1 < seg.len() { seg[k + 1] } else { m };
        (
            deduped[lo].0.clone(),
            deduped[lo..hi].iter().map(|p| p.1).collect(),
        )
    })
}

/// Sequential reference for [`inverted_index`].
pub fn inverted_index_seq(docs: &[Vec<String>]) -> Vec<(String, Vec<u32>)> {
    let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for (d, doc) in docs.iter().enumerate() {
        for w in doc {
            let entry = m.entry(w.clone()).or_default();
            if entry.last() != Some(&(d as u32)) {
                entry.push(d as u32);
            }
        }
    }
    // Document passes may visit a word twice non-adjacently; dedup fully.
    m.into_iter()
        .map(|(w, mut ds)| {
            ds.sort_unstable();
            ds.dedup();
            (w, ds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::text;

    #[test]
    fn word_counts_matches_sequential() {
        let words = text::trigram_words(15_000, 1);
        assert_eq!(word_counts(&words), word_counts_seq(&words));
    }

    #[test]
    fn word_counts_empty_and_single() {
        assert!(word_counts(&[]).is_empty());
        let one = vec!["hello".to_string()];
        assert_eq!(word_counts(&one), vec![("hello".to_string(), 1)]);
    }

    #[test]
    fn counts_sum_to_input_length() {
        let words = text::trigram_words(9_999, 2);
        let total: u64 = word_counts(&words).iter().map(|(_, c)| c).sum();
        assert_eq!(total, 9_999);
    }

    #[test]
    fn inverted_index_matches_sequential() {
        let docs = text::documents(120, 40, 3);
        assert_eq!(inverted_index(&docs), inverted_index_seq(&docs));
    }

    #[test]
    fn inverted_index_postings_sorted_unique() {
        let docs = text::documents(60, 30, 4);
        for (_, postings) in inverted_index(&docs) {
            assert!(postings.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn inverted_index_empty() {
        assert!(inverted_index(&[]).is_empty());
    }
}
