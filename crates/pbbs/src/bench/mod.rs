//! The benchmark algorithm implementations, one module per PBBS problem
//! family. Each module exposes a parallel implementation (built on
//! `parlay-rs`), a sequential reference, and a checker.

pub mod classify;
pub mod geometry;
pub mod graphs;
pub mod nbody;
pub mod seq_ops;
pub mod sorting;
pub mod strings;
pub mod text_ops;
