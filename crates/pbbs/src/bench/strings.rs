//! String benchmarks: `suffixArray` (parallel prefix doubling) and
//! `longestRepeatedSubstring` (suffix array + LCP).

use parlay_rs::primitives::tabulate;
use parlay_rs::sort::integer_sort_by_key;

/// Parallel suffix array by prefix doubling: O(log n) rounds, each a
/// parallel radix sort of `(rank[i], rank[i+k])` pairs.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(n < u32::MAX as usize / 2);
    // Initial ranks: the bytes themselves (+1 so 0 can mean "past the end").
    let mut rank: Vec<u32> = tabulate(n, |i| text[i] as u32 + 1);
    let mut sa: Vec<u32> = tabulate(n, |i| i as u32);
    let mut k = 1usize;
    loop {
        // Sort suffixes by (rank[i], rank[i+k]) packed into one u64.
        let key = |&i: &u32| -> u64 {
            let r1 = rank[i as usize] as u64;
            let r2 = if (i as usize) + k < n {
                rank[i as usize + k] as u64
            } else {
                0
            };
            (r1 << 32) | r2
        };
        integer_sort_by_key(&mut sa, key);
        // Re-rank: same key as predecessor → same rank.
        let new_rank_of_pos: Vec<u32> = {
            let flags: Vec<u32> =
                tabulate(n, |j| u32::from(j > 0 && key(&sa[j]) != key(&sa[j - 1])));
            let ranks_in_order = parlay_rs::scan_inclusive(&flags, 0u32, |a, b| a + b);
            // Scatter back to positions: new_rank[sa[j]] = ranks[j] + 1.
            let mut out = vec![0u32; n];
            {
                let slots = parlay_rs::primitives::UnsafeSlice::new(&mut out);
                lcws_core::par_for(0..n, |j| unsafe {
                    // Safety: sa is a permutation, so writes are disjoint.
                    slots.write(sa[j] as usize, ranks_in_order[j] + 1);
                });
            }
            out
        };
        let distinct = new_rank_of_pos[sa[n - 1] as usize];
        rank = new_rank_of_pos;
        if distinct as usize == n {
            break;
        }
        k *= 2;
        if k >= 2 * n {
            break; // all suffixes distinguished by length alone
        }
    }
    sa
}

/// Sequential reference suffix array (std sort over suffix slices).
pub fn suffix_array_seq(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

/// LCP array via Kasai's algorithm: `lcp[j]` = longest common prefix of
/// suffixes `sa[j]` and `sa[j+1]`. Linear-time sequential pass (the timed
/// benchmark work is dominated by the parallel suffix array).
pub fn lcp_array(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![0u32; n];
    for (j, &p) in sa.iter().enumerate() {
        rank[p as usize] = j as u32;
    }
    let mut lcp = vec![0u32; n.saturating_sub(1)];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r + 1 < n {
            let j = sa[r + 1] as usize;
            while i + h < n && j + h < n && text[i + h] == text[j + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

/// Longest repeated substring: `(length, start)` of the longest substring
/// occurring at least twice (via max LCP).
pub fn longest_repeated_substring(text: &[u8]) -> (u32, u32) {
    let sa = suffix_array(text);
    let lcp = lcp_array(text, &sa);
    match parlay_rs::max_element(&lcp) {
        Some(j) => (lcp[j], sa[j]),
        None => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::text::{dna_string, trigram_string};

    #[test]
    fn suffix_array_banana() {
        let sa = suffix_array(b"banana");
        assert_eq!(sa, suffix_array_seq(b"banana"));
        assert_eq!(sa, vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn suffix_array_matches_reference_on_generators() {
        for text in [dna_string(3_000, 1), trigram_string(3_000, 2)] {
            assert_eq!(suffix_array(&text), suffix_array_seq(&text));
        }
    }

    #[test]
    fn suffix_array_pathological_inputs() {
        assert!(suffix_array(b"").is_empty());
        assert_eq!(suffix_array(b"a"), vec![0]);
        // All-equal text: suffixes sort by decreasing start position.
        let same = vec![b'x'; 500];
        let sa = suffix_array(&same);
        assert_eq!(sa, (0..500u32).rev().collect::<Vec<_>>());
    }

    #[test]
    fn lcp_banana() {
        let text = b"banana";
        let sa = suffix_array(text);
        let lcp = lcp_array(text, &sa);
        // suffixes: a, ana, anana, banana, na, nana
        assert_eq!(lcp, vec![1, 3, 0, 0, 2]);
    }

    #[test]
    fn lrs_finds_known_repeat() {
        let (len, start) = longest_repeated_substring(b"abcdefabcdxyz");
        assert_eq!(len, 4); // "abcd"
        let s = &b"abcdefabcdxyz"[start as usize..start as usize + len as usize];
        assert_eq!(s, b"abcd");
    }

    #[test]
    fn lrs_on_dna() {
        let text = dna_string(2_000, 7);
        let (len, start) = longest_repeated_substring(&text);
        assert!(len >= 4, "random DNA of 2k certainly repeats 4-mers");
        // The reported substring must indeed appear twice.
        let needle = &text[start as usize..(start + len) as usize];
        let occurrences = text.windows(needle.len()).filter(|w| *w == needle).count();
        assert!(occurrences >= 2, "substring must repeat: {occurrences}");
    }
}
