//! # pbbs-rs — the Problem-Based Benchmark Suite, in Rust
//!
//! Rust ports of the PBBS v2 benchmarks the paper evaluates on, together
//! with the suite's input generators. Each benchmark exposes:
//!
//! * a **parallel** implementation built exclusively on `parlay-rs` /
//!   `lcws-core` primitives (so the ambient scheduler variant does all the
//!   load balancing, exactly as in the paper where PBBS runs *unmodified*
//!   on each scheduler), and
//! * a **sequential reference** plus a checker used by the test suite and
//!   by the harness's verify mode.
//!
//! The [`registry`] module enumerates every (benchmark, input instance)
//! pair — the paper's *benchmark configurations* — for the experiment
//! harness to sweep.
//!
//! Input sizes: PBBS defaults are 10⁸-element inputs sized for multi-socket
//! servers; here each instance declares a base size that [`scaled`] scales
//! by the `LCWS_SCALE` environment variable (default keeps laptop-friendly
//! sizes, as recorded in DESIGN.md).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod gen;
pub mod graph;
pub mod registry;

pub use graph::Graph;
pub use registry::{all_benchmarks, Benchmark, Instance, Prepared, RunOutcome};

/// Scale a base input size by the `LCWS_SCALE` environment variable
/// (a positive float; default 1.0), with a floor of 1 000 elements.
pub fn scaled(base: usize) -> usize {
    let factor = std::env::var("LCWS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|f| *f > 0.0)
        .unwrap_or(1.0);
    ((base as f64 * factor) as usize).max(1_000)
}

/// FNV-1a over little-endian words — cheap deterministic checksum used to
/// compare outputs across scheduler variants.
pub fn checksum_u64s(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive_and_deterministic() {
        let a = checksum_u64s([1, 2, 3]);
        let b = checksum_u64s([1, 2, 3]);
        let c = checksum_u64s([3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_floors_at_1000() {
        // Without the env var the default scale is 1.0.
        assert_eq!(scaled(500), 1_000);
        assert_eq!(scaled(2_000_000), 2_000_000);
    }
}
