//! Compressed-sparse-row graphs, the substrate of the PBBS graph
//! benchmarks (BFS, MIS, maximal matching, spanning forest).

use parlay_rs::primitives::{scan_exclusive, tabulate};
use parlay_rs::sort::integer_sort_by_key;

/// An undirected graph in CSR form. Vertex ids are `u32`; every undirected
/// edge `{u, v}` appears as both `(u, v)` and `(v, u)` in the adjacency
/// structure, plus once (canonical `u < v`) in [`Graph::edge_list`].
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<u32>,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Build from an undirected edge list (self-loops and duplicates are
    /// removed; endpoints canonicalized to `u < v`). Runs in parallel.
    pub fn from_edges(n: usize, raw: &[(u32, u32)]) -> Graph {
        assert!(n < u32::MAX as usize);
        // Canonicalize and drop self-loops.
        let canon: Vec<(u32, u32)> = parlay_rs::filter(
            &parlay_rs::map(raw, |&(u, v)| if u <= v { (u, v) } else { (v, u) }),
            |&(u, v)| u != v && (u as usize) < n && (v as usize) < n,
        );
        // Dedup by sorting on the packed key.
        let mut packed: Vec<u64> = parlay_rs::map(&canon, |&(u, v)| ((u as u64) << 32) | v as u64);
        parlay_rs::integer_sort(&mut packed);
        let keep: Vec<bool> = tabulate(packed.len(), |i| i == 0 || packed[i] != packed[i - 1]);
        let idx = parlay_rs::pack_index(&keep);
        let edges: Vec<(u32, u32)> = parlay_rs::map(&idx, |&i| {
            let p = packed[i];
            ((p >> 32) as u32, p as u32)
        });
        // Directed half-edges in both directions, sorted by (source, dest)
        // so each adjacency list comes out ascending.
        let mut half: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        half.extend(edges.iter().copied());
        half.extend(edges.iter().map(|&(u, v)| (v, u)));
        integer_sort_by_key(&mut half, |&(u, v)| ((u as u64) << 32) | v as u64);
        // Offsets via degree counting.
        let degrees = {
            let counts: Vec<usize> = {
                let mut c = vec![0usize; n];
                // Sequential degree count is fine (one pass over edges);
                // the sort above did the parallel heavy lifting.
                for &(u, _) in &half {
                    c[u as usize] += 1;
                }
                c
            };
            counts
        };
        let (offsets_body, total) = scan_exclusive(&degrees, 0usize, |a, b| a + b);
        debug_assert_eq!(total, half.len());
        let mut offsets = offsets_body;
        offsets.push(total);
        let adj: Vec<u32> = parlay_rs::map(&half, |&(_, v)| v);
        Graph {
            offsets,
            adj,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of `v` (sorted ascending as a byproduct of construction).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Canonical undirected edge list (`u < v`), sorted.
    pub fn edge_list(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Parallel map over vertices.
    pub fn map_vertices<T: Send, F: Fn(u32) -> T + Sync>(&self, f: F) -> Vec<T> {
        tabulate(self.num_vertices(), |v| f(v as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolate() -> Graph {
        // 0-1, 1-2, 0-2 and vertex 3 isolated; includes dup + self-loop noise.
        Graph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (0, 2), (2, 2), (0, 1)])
    }

    #[test]
    fn builds_csr_with_dedup_and_loop_removal() {
        let g = triangle_plus_isolate();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn edge_list_is_canonical_sorted() {
        let g = triangle_plus_isolate();
        assert_eq!(g.edge_list(), &[(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn out_of_range_endpoints_dropped() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 5)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn handedness_is_symmetric() {
        let g = Graph::from_edges(5, &[(4, 0), (3, 1)]);
        assert_eq!(g.neighbors(0), &[4]);
        assert_eq!(g.neighbors(4), &[0]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[1]);
    }
}
