//! Property-based tests: every parallel primitive agrees with its obvious
//! sequential counterpart on arbitrary inputs — both outside a pool
//! (sequential fallback) and inside a real multi-worker LCWS pool.

use lcws_core::{ThreadPool, Variant};
use proptest::prelude::*;

fn pool() -> ThreadPool {
    ThreadPool::new(Variant::Signal, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sort_matches_std(mut v in proptest::collection::vec(any::<u64>(), 0..3000)) {
        let mut expected = v.clone();
        expected.sort();
        pool().run(|| parlay_rs::sort(&mut v));
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn integer_sort_matches_std(mut v in proptest::collection::vec(any::<u64>(), 0..3000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        pool().run(|| parlay_rs::integer_sort(&mut v));
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn stable_sort_preserves_equal_key_order(
        keys in proptest::collection::vec(0u64..16, 0..2000)
    ) {
        let mut v: Vec<(u64, usize)> = keys.iter().copied().zip(0..).collect();
        let mut expected = v.clone();
        expected.sort_by_key(|p| p.0);
        pool().run(|| parlay_rs::integer_sort_by_key(&mut v, |p| p.0));
        prop_assert_eq!(&v, &expected, "radix not stable");
        let mut w: Vec<(u64, usize)> = keys.iter().copied().zip(0..).collect();
        pool().run(|| parlay_rs::sort_by(&mut w, |a, b| a.0.cmp(&b.0)));
        prop_assert_eq!(&w, &expected, "merge sort not stable");
    }

    #[test]
    fn scan_matches_fold(v in proptest::collection::vec(0u64..1000, 0..3000)) {
        let (scanned, total) = pool().run(|| parlay_rs::scan_exclusive(&v, 0, |a, b| a + b));
        let mut acc = 0u64;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn filter_matches_iterator(v in proptest::collection::vec(any::<i32>(), 0..3000)) {
        let got = pool().run(|| parlay_rs::filter(&v, |x| x % 3 == 0));
        let expected: Vec<i32> = v.iter().copied().filter(|x| x % 3 == 0).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn reduce_matches_sum(v in proptest::collection::vec(0u64..(1 << 40), 0..3000)) {
        let got = pool().run(|| parlay_rs::reduce(&v, 0, |a, b| a + b));
        prop_assert_eq!(got, v.iter().sum::<u64>());
    }

    #[test]
    fn pack_index_matches_positions(flags in proptest::collection::vec(any::<bool>(), 0..3000)) {
        let got = pool().run(|| parlay_rs::pack_index(&flags));
        let expected: Vec<usize> =
            flags.iter().enumerate().filter(|(_, &f)| f).map(|(i, _)| i).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn tabulate_then_flatten_round_trip(
        sizes in proptest::collection::vec(0usize..20, 0..100)
    ) {
        let nested: Vec<Vec<usize>> =
            sizes.iter().enumerate().map(|(i, &s)| vec![i; s]).collect();
        let flat = pool().run(|| parlay_rs::flatten(&nested));
        let expected: Vec<usize> = nested.iter().flatten().copied().collect();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn dedup_set_semantics(v in proptest::collection::vec(0u64..500, 0..2000)) {
        let set = parlay_rs::ConcurrentSet::with_capacity(v.len().max(8));
        pool().run(|| {
            lcws_core::par_for_grain(0..v.len(), 32, |i| {
                set.insert(v[i]);
            });
        });
        let mut got = set.elements();
        got.sort_unstable();
        let mut expected = v.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn extremes_match_iterator(v in proptest::collection::vec(any::<i64>(), 1..2000)) {
        let min_i = parlay_rs::min_element(&v).unwrap();
        let max_i = parlay_rs::max_element(&v).unwrap();
        prop_assert_eq!(v[min_i], *v.iter().min().unwrap());
        prop_assert_eq!(v[max_i], *v.iter().max().unwrap());
    }
}
