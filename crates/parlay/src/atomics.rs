//! Priority-update atomics (`write_min` / `write_max`) in the style PBBS
//! uses for deterministic reservations and BFS parent assignment.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Atomically set `cell = min(cell, value)`. Returns true iff `value` won
/// (strictly decreased the cell).
pub fn write_min_usize(cell: &AtomicUsize, value: usize) -> bool {
    let mut current = cell.load(Ordering::Relaxed);
    while value < current {
        match cell.compare_exchange_weak(current, value, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
    false
}

/// Atomically set `cell = max(cell, value)`. Returns true iff `value` won.
pub fn write_max_usize(cell: &AtomicUsize, value: usize) -> bool {
    let mut current = cell.load(Ordering::Relaxed);
    while value > current {
        match cell.compare_exchange_weak(current, value, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
    false
}

/// Atomically set `cell = min(cell, value)` over `u64`.
pub fn write_min_u64(cell: &AtomicU64, value: u64) -> bool {
    let mut current = cell.load(Ordering::Relaxed);
    while value < current {
        match cell.compare_exchange_weak(current, value, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
    false
}

/// One-shot claim: set `cell` from `empty` to `value` exactly once.
/// Returns true for the winning claimant.
pub fn claim_usize(cell: &AtomicUsize, empty: usize, value: usize) -> bool {
    cell.compare_exchange(empty, value, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_min_takes_minimum() {
        let c = AtomicUsize::new(100);
        assert!(write_min_usize(&c, 50));
        assert!(!write_min_usize(&c, 70));
        assert!(write_min_usize(&c, 10));
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn write_max_takes_maximum() {
        let c = AtomicUsize::new(5);
        assert!(write_max_usize(&c, 50));
        assert!(!write_max_usize(&c, 20));
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn concurrent_write_min_converges_to_global_min() {
        let c = AtomicU64::new(u64::MAX);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        write_min_u64(c, (i * 7 + t * 13) % 5000 + 1);
                    }
                });
            }
        });
        assert!(c.load(Ordering::Relaxed) >= 1);
        assert!(c.load(Ordering::Relaxed) <= 5000);
    }

    #[test]
    fn claim_is_exclusive() {
        let c = AtomicUsize::new(usize::MAX);
        assert!(claim_usize(&c, usize::MAX, 3));
        assert!(!claim_usize(&c, usize::MAX, 4));
        assert_eq!(c.load(Ordering::Relaxed), 3);
    }
}
