//! # parlay-rs — Parlay-style parallel algorithms on LCWS schedulers
//!
//! A Rust port of the slice of the Parlay toolkit that the Problem-Based
//! Benchmark Suite depends on, built entirely on `lcws-core`'s ambient
//! fork-join API (`join` / `par_for` / `scope`). Every function here runs
//! in parallel when called inside a [`lcws_core::ThreadPool::run`] and
//! degrades to sequential execution (identical results) outside one —
//! exactly the property the paper exploits to run all of PBBS *unmodified*
//! on each scheduler variant.
//!
//! Provided primitives:
//!
//! * [`primitives`] — `tabulate`, `map`, `reduce`, `scan`, `filter`,
//!   `pack_index`, `flatten`, `min/max`, `count`, blocked chunk helpers.
//! * [`sort`] — parallel comparison sort (merge sort with parallel merge)
//!   and stable LSD parallel radix sort for integer keys.
//! * [`random`] — Parlay's hash-based splittable random source (used by all
//!   PBBS input generators, so inputs are deterministic across runs).
//! * [`hashtable`] — phase-concurrent insert-only hash table (linear
//!   probing + CAS), the substrate of `removeDuplicates` and index
//!   building.
//! * [`speculative`] — PBBS-style deterministic reservations
//!   (`speculative_for`), the substrate of MIS / maximal matching /
//!   spanning forest.
//! * [`atomics`] — `write_min` / `write_max` priority updates.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomics;
pub mod hashtable;
pub mod primitives;
pub mod random;
pub mod selection;
pub mod sort;
pub mod speculative;

pub use hashtable::ConcurrentSet;
pub use primitives::{
    count, filter, flatten, map, max_element, min_element, pack_index, par_chunks_mut, reduce,
    scan_exclusive, scan_inclusive, tabulate,
};
pub use random::Random;
pub use selection::{kth_smallest, kth_smallest_by, median, merge as merge_sorted, partition};
pub use sort::{integer_sort, integer_sort_by_key, sample_sort, sample_sort_by, sort, sort_by};
pub use speculative::{speculative_for, ReserveCommit};
