//! Data-parallel slice primitives: the Parlay operations PBBS is built on.
//!
//! Everything is expressed over `lcws_core::join`, so the task DAG these
//! primitives generate is scheduled by whichever LCWS/WS variant the ambient
//! pool runs — the paper's "benchmarks run unmodified" property.
//!
//! Blocked operations (`scan`, `filter`, `histogram`-style counting) use
//! **exact block boundaries** (`block k = [k·grain, (k+1)·grain)`), which
//! [`par_chunks_mut`] guarantees, so per-block sequential passes compose
//! with the global scan of block sums.

use std::marker::PhantomData;
use std::mem::MaybeUninit;

use lcws_core::join;

/// Sequential threshold for divide-and-conquer primitives, matching
/// Parlay's default granularity ballpark.
pub(crate) const SEQ_GRAIN: usize = 2048;

/// A shared mutable view over a slice for provably disjoint parallel
/// writes (block scatter phases). The safety obligation — no two concurrent
/// writers touch the same index — rests on the *algorithm* (offsets from an
/// exclusive scan are disjoint by construction).
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Wrap a mutable slice of uninitialized slots.
    pub fn new_uninit(slice: &'a mut [MaybeUninit<T>]) -> UnsafeSlice<'a, T> {
        UnsafeSlice {
            ptr: slice.as_mut_ptr() as *mut T,
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// `index < len`, and no concurrent read or write of the same index.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        self.ptr.add(index).write(value);
    }
}

/// Apply `f(offset, chunk)` over exact `grain`-aligned chunks of `data`
/// in parallel: chunk `k` is `data[k·grain .. min((k+1)·grain, len)]` and
/// `offset` is its start index.
pub fn par_chunks_mut<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let grain = grain.max(1);
    rec(data, 0, grain, &f);

    fn rec<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        data: &mut [T],
        offset: usize,
        grain: usize,
        f: &F,
    ) {
        let blocks = data.len().div_ceil(grain);
        if blocks <= 1 {
            if !data.is_empty() {
                f(offset, data);
            }
            return;
        }
        let split = (blocks / 2) * grain;
        let (lo, hi) = data.split_at_mut(split);
        join(
            || rec(lo, offset, grain, f),
            || rec(hi, offset + split, grain, f),
        );
    }
}

/// Read-only exact-blocked parallel iteration: `f(block_index, block)`.
pub fn par_blocks<T, F>(data: &[T], grain: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    let grain = grain.max(1);
    let blocks = data.len().div_ceil(grain);
    lcws_core::par_for_grain(0..blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(data.len());
        f(b, &data[lo..hi]);
    });
}

/// Build a `Vec<T>` of length `n` with `out[i] = f(i)`, in parallel.
///
/// If `f` panics the partially initialized elements are leaked (never
/// dropped uninitialized), and the panic propagates.
pub fn tabulate<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    tabulate_grain(n, lcws_core::default_grain(n), f)
}

/// [`tabulate`] with an explicit grain size.
pub fn tabulate_grain<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // Safety: MaybeUninit needs no initialization.
    unsafe { out.set_len(n) };
    par_chunks_mut(&mut out, grain, |offset, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            slot.write(f(offset + k));
        }
    });
    // Safety: every slot was written exactly once above.
    unsafe { transmute_vec(out) }
}

/// Reinterpret a fully initialized `Vec<MaybeUninit<T>>` as `Vec<T>`.
///
/// # Safety
/// Every element must be initialized.
unsafe fn transmute_vec<T>(v: Vec<MaybeUninit<T>>) -> Vec<T> {
    let mut v = std::mem::ManuallyDrop::new(v);
    Vec::from_raw_parts(v.as_mut_ptr() as *mut T, v.len(), v.capacity())
}

/// Parallel map: `out[i] = f(&input[i])`.
pub fn map<T, U, F>(input: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    tabulate(input.len(), |i| f(&input[i]))
}

/// Parallel reduction with identity `id` and associative operator `op`.
pub fn reduce<T, F>(input: &[T], id: T, op: F) -> T
where
    T: Clone + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    fn rec<T: Clone + Send + Sync, F: Fn(T, T) -> T + Sync>(a: &[T], id: &T, op: &F) -> T {
        if a.len() <= SEQ_GRAIN {
            return a.iter().fold(id.clone(), |acc, x| op(acc, x.clone()));
        }
        let (lo, hi) = a.split_at(a.len() / 2);
        let (l, r) = join(|| rec(lo, id, op), || rec(hi, id, op));
        op(l, r)
    }
    rec(input, &id, &op)
}

/// Count elements satisfying `pred`, in parallel.
pub fn count<T, F>(input: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    fn rec<T: Sync, F: Fn(&T) -> bool + Sync>(a: &[T], pred: &F) -> usize {
        if a.len() <= SEQ_GRAIN {
            return a.iter().filter(|x| pred(x)).count();
        }
        let (lo, hi) = a.split_at(a.len() / 2);
        let (l, r) = join(|| rec(lo, pred), || rec(hi, pred));
        l + r
    }
    rec(input, &pred)
}

/// Index of a minimum element under `Ord` (first occurrence), or `None`.
pub fn min_element<T: Ord + Sync>(input: &[T]) -> Option<usize> {
    extreme_element(input, |a, b| a < b)
}

/// Index of a maximum element under `Ord` (first occurrence), or `None`.
pub fn max_element<T: Ord + Sync>(input: &[T]) -> Option<usize> {
    extreme_element(input, |a, b| a > b)
}

fn extreme_element<T, F>(input: &[T], better: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    fn rec<T: Sync, F: Fn(&T, &T) -> bool + Sync>(
        a: &[T],
        offset: usize,
        better: &F,
    ) -> Option<usize> {
        if a.is_empty() {
            return None;
        }
        if a.len() <= SEQ_GRAIN {
            let mut best = 0;
            for (i, x) in a.iter().enumerate().skip(1) {
                if better(x, &a[best]) {
                    best = i;
                }
            }
            return Some(offset + best);
        }
        let mid = a.len() / 2;
        let (lo, hi) = a.split_at(mid);
        let (l, r) = join(|| rec(lo, offset, better), || rec(hi, offset + mid, better));
        match (l, r) {
            (Some(i), Some(j)) => {
                // `better` is strict, so ties go left: stability.
                if better(&a[j - offset], &a[i - offset]) {
                    Some(j)
                } else {
                    Some(i)
                }
            }
            (l, r) => l.or(r),
        }
    }
    rec(input, 0, &better)
}

/// Exclusive parallel scan (prefix "sums") with identity `id` and
/// associative `op`. Returns `(prefixes, total)` where `prefixes[i] =
/// op(id, input[0..i])`.
pub fn scan_exclusive<T, F>(input: &[T], id: T, op: F) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = input.len();
    if n == 0 {
        return (Vec::new(), id);
    }
    let grain = lcws_core::default_grain(n);
    let blocks = n.div_ceil(grain);
    // Pass 1: per-block totals.
    let sums = tabulate_grain(blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        input[lo..hi]
            .iter()
            .fold(id.clone(), |acc, x| op(acc, x.clone()))
    });
    // Sequential scan over (few) block totals.
    let mut offsets = Vec::with_capacity(blocks);
    let mut acc = id.clone();
    for s in &sums {
        offsets.push(acc.clone());
        acc = op(acc, s.clone());
    }
    let total = acc;
    // Pass 2: per-block sequential scans seeded with the block offset.
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    unsafe { out.set_len(n) };
    par_chunks_mut(&mut out, grain, |offset, chunk| {
        let b = offset / grain;
        let mut carry = offsets[b].clone();
        for (k, slot) in chunk.iter_mut().enumerate() {
            slot.write(carry.clone());
            carry = op(carry, input[offset + k].clone());
        }
    });
    (unsafe { transmute_vec(out) }, total)
}

/// Inclusive parallel scan: `out[i] = op(id, input[0..=i])`.
pub fn scan_inclusive<T, F>(input: &[T], id: T, op: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let grain = lcws_core::default_grain(n);
    let blocks = n.div_ceil(grain);
    let sums = tabulate_grain(blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        input[lo..hi]
            .iter()
            .fold(id.clone(), |acc, x| op(acc, x.clone()))
    });
    let mut offsets = Vec::with_capacity(blocks);
    let mut acc = id;
    for s in &sums {
        offsets.push(acc.clone());
        acc = op(acc, s.clone());
    }
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    unsafe { out.set_len(n) };
    par_chunks_mut(&mut out, grain, |offset, chunk| {
        let b = offset / grain;
        let mut carry = offsets[b].clone();
        for (k, slot) in chunk.iter_mut().enumerate() {
            carry = op(carry, input[offset + k].clone());
            slot.write(carry.clone());
        }
    });
    unsafe { transmute_vec(out) }
}

/// Parallel filter: clones of the elements satisfying `pred`, order
/// preserved.
pub fn filter<T, F>(input: &[T], pred: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let grain = lcws_core::default_grain(n);
    let blocks = n.div_ceil(grain);
    let counts = tabulate_grain(blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        input[lo..hi].iter().filter(|x| pred(x)).count()
    });
    let (offsets, total) = scan_exclusive(&counts, 0usize, |a, b| a + b);
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(total);
    unsafe { out.set_len(total) };
    {
        let slots = UnsafeSlice::new_uninit(&mut out);
        lcws_core::par_for_grain(0..blocks, 1, |b| {
            let lo = b * grain;
            let hi = ((b + 1) * grain).min(n);
            let mut pos = offsets[b];
            for x in &input[lo..hi] {
                if pred(x) {
                    // Safety: scan offsets give disjoint write ranges.
                    unsafe { slots.write(pos, x.clone()) };
                    pos += 1;
                }
            }
        });
    }
    unsafe { transmute_vec(out) }
}

/// Indices `i` with `flags[i] == true`, in order (Parlay's `pack_index`).
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    let n = flags.len();
    if n == 0 {
        return Vec::new();
    }
    let grain = lcws_core::default_grain(n);
    let blocks = n.div_ceil(grain);
    let counts = tabulate_grain(blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        flags[lo..hi].iter().filter(|&&f| f).count()
    });
    let (offsets, total) = scan_exclusive(&counts, 0usize, |a, b| a + b);
    let mut out: Vec<MaybeUninit<usize>> = Vec::with_capacity(total);
    unsafe { out.set_len(total) };
    {
        let slots = UnsafeSlice::new_uninit(&mut out);
        lcws_core::par_for_grain(0..blocks, 1, |b| {
            let lo = b * grain;
            let hi = ((b + 1) * grain).min(n);
            let mut pos = offsets[b];
            for (i, &f) in flags[lo..hi].iter().enumerate() {
                if f {
                    unsafe { slots.write(pos, lo + i) };
                    pos += 1;
                }
            }
        });
    }
    unsafe { transmute_vec(out) }
}

/// Concatenate nested vectors in parallel.
pub fn flatten<T: Clone + Send + Sync>(nested: &[Vec<T>]) -> Vec<T> {
    let sizes: Vec<usize> = nested.iter().map(Vec::len).collect();
    let (offsets, total) = scan_exclusive(&sizes, 0usize, |a, b| a + b);
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(total);
    unsafe { out.set_len(total) };
    {
        let slots = UnsafeSlice::new_uninit(&mut out);
        lcws_core::par_for_grain(0..nested.len(), 1, |j| {
            let base = offsets[j];
            for (k, x) in nested[j].iter().enumerate() {
                // Safety: offset ranges are disjoint per source vector.
                unsafe { slots.write(base + k, x.clone()) };
            }
        });
    }
    unsafe { transmute_vec(out) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulate_identity() {
        let v = tabulate(1000, |i| i * 3);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
        assert!(tabulate(0, |i| i).is_empty());
    }

    #[test]
    fn map_matches_sequential() {
        let a: Vec<i64> = (0..5000).collect();
        let m = map(&a, |x| x * x - 1);
        let expected: Vec<i64> = a.iter().map(|x| x * x - 1).collect();
        assert_eq!(m, expected);
    }

    #[test]
    fn reduce_sum_and_noncommutative_shape() {
        let a: Vec<u64> = (1..=10_000).collect();
        assert_eq!(reduce(&a, 0, |x, y| x + y), 10_000 * 10_001 / 2);
        // Associative but non-commutative: string concat over small input.
        let s: Vec<String> = (0..200).map(|i| i.to_string()).collect();
        let joined = reduce(&s, String::new(), |a, b| a + &b);
        let expected: String = s.concat();
        assert_eq!(joined, expected);
    }

    #[test]
    fn scan_exclusive_matches_sequential() {
        let a: Vec<u64> = (0..10_000).map(|i| i % 7).collect();
        let (scanned, total) = scan_exclusive(&a, 0, |x, y| x + y);
        let mut acc = 0;
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(scanned[i], acc, "at {i}");
            acc += x;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn scan_inclusive_matches_sequential() {
        let a: Vec<u64> = (0..5000).map(|i| (i * i) % 11).collect();
        let inc = scan_inclusive(&a, 0, |x, y| x + y);
        let mut acc = 0;
        for (i, &x) in a.iter().enumerate() {
            acc += x;
            assert_eq!(inc[i], acc, "at {i}");
        }
    }

    #[test]
    fn scan_empty() {
        let (v, t) = scan_exclusive(&[] as &[u32], 9, |a, b| a + b);
        assert!(v.is_empty());
        assert_eq!(t, 9);
    }

    #[test]
    fn filter_preserves_order() {
        let a: Vec<u32> = (0..20_000).collect();
        let f = filter(&a, |x| x % 3 == 0);
        let expected: Vec<u32> = a.iter().copied().filter(|x| x % 3 == 0).collect();
        assert_eq!(f, expected);
    }

    #[test]
    fn pack_index_matches_manual() {
        let flags: Vec<bool> = (0..9999).map(|i| i % 5 == 1).collect();
        let idx = pack_index(&flags);
        let expected: Vec<usize> = (0..9999).filter(|i| i % 5 == 1).collect();
        assert_eq!(idx, expected);
    }

    #[test]
    fn count_and_extremes() {
        let a: Vec<i32> = (0..10_000).map(|i| (i * 37) % 1001 - 500).collect();
        assert_eq!(count(&a, |x| *x > 0), a.iter().filter(|x| **x > 0).count());
        let min_i = min_element(&a).unwrap();
        let max_i = max_element(&a).unwrap();
        assert_eq!(a[min_i], *a.iter().min().unwrap());
        assert_eq!(a[max_i], *a.iter().max().unwrap());
        // First occurrence.
        assert_eq!(min_i, a.iter().position(|x| *x == a[min_i]).unwrap());
        assert!(min_element::<i32>(&[]).is_none());
    }

    #[test]
    fn flatten_concatenates() {
        let nested: Vec<Vec<u32>> = (0..100).map(|i| (0..i % 7).collect()).collect();
        let flat = flatten(&nested);
        let expected: Vec<u32> = nested.iter().flatten().copied().collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn par_chunks_mut_exact_blocking() {
        let mut v = vec![0usize; 1000];
        par_chunks_mut(&mut v, 64, |offset, chunk| {
            assert_eq!(offset % 64, 0, "chunks must start on grain boundaries");
            assert!(chunk.len() <= 64);
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = offset + k;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn par_blocks_sees_every_block() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data = vec![1u8; 1000];
        let seen = AtomicUsize::new(0);
        par_blocks(&data, 300, |b, block| {
            assert!(b < 4);
            seen.fetch_add(block.len(), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1000);
    }
}
