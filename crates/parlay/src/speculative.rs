//! Deterministic parallel greedy via reservations: PBBS's
//! `speculative_for` loop, the engine behind maximal independent set,
//! maximal matching and spanning forest.
//!
//! Iterations of a sequential greedy loop are executed speculatively in
//! prefix-sized rounds. Each iteration first **reserves** the shared state
//! it wants (priority writes keyed by iteration index — lower index wins),
//! then **commits** if it still holds all its reservations. Failed
//! iterations retry in the next round. Because conflicts always resolve in
//! favour of the earliest iteration, the result equals the sequential
//! greedy output (determinism), regardless of scheduler or thread count.

use crate::primitives::{filter, tabulate};

/// One speculative step of a greedy loop.
pub trait ReserveCommit: Sync {
    /// Attempt to reserve shared state for iteration `i`.
    /// Return `false` if the iteration is already moot (needs no commit).
    fn reserve(&self, i: usize) -> bool;

    /// Try to finish iteration `i`; return `true` on success, `false` to
    /// retry in a later round.
    fn commit(&self, i: usize) -> bool;
}

/// Run iterations `start..end` of `step` speculatively.
///
/// `granularity` is the number of fresh iterations admitted per round
/// (PBBS default ballpark: a small multiple of the processor count times
/// cache-line-ish factors; callers pass what the original benchmarks use).
/// Returns the number of rounds executed.
pub fn speculative_for<S: ReserveCommit>(
    step: &S,
    start: usize,
    end: usize,
    granularity: usize,
) -> usize {
    let granularity = granularity.max(1);
    let mut rounds = 0;
    // Iterations awaiting execution: a retry pool (kept in index order)
    // plus the not-yet-admitted tail `next..end`.
    let mut retry: Vec<usize> = Vec::new();
    let mut next = start;
    while !retry.is_empty() || next < end {
        rounds += 1;
        // Admit fresh iterations up to the granularity window.
        let fresh = granularity.saturating_sub(retry.len()).min(end - next);
        let window: Vec<usize> = retry.iter().copied().chain(next..next + fresh).collect();
        next += fresh;
        // Phase 1: reserve (parallel).
        let wants: Vec<bool> = tabulate(window.len(), |k| step.reserve(window[k]));
        // Phase 2: commit (parallel).
        let failed: Vec<bool> = tabulate(window.len(), |k| wants[k] && !step.commit(window[k]));
        // Keep failures for the next round, preserving index order.
        let keep: Vec<usize> = filter(
            &window
                .iter()
                .zip(&failed)
                .map(|(&i, &f)| if f { i } else { usize::MAX })
                .collect::<Vec<_>>(),
            |&i| i != usize::MAX,
        );
        retry = keep;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Toy problem: greedily claim cells of an array; iteration `i` claims
    /// cell `i % m`. Sequentially, cell `c` is claimed by the smallest
    /// iteration index ≡ c (mod m). The speculative loop must reproduce
    /// that exactly.
    struct Claimer {
        cells: Vec<AtomicUsize>,
    }

    impl ReserveCommit for Claimer {
        fn reserve(&self, i: usize) -> bool {
            let c = i % self.cells.len();
            // Priority write: lower iteration index wins.
            crate::atomics::write_min_usize(&self.cells[c], i);
            true
        }

        fn commit(&self, i: usize) -> bool {
            let c = i % self.cells.len();
            // After our write_min the cell holds some index ≤ i. Either we
            // hold it (we won the claim, exactly like the sequential greedy
            // loop would) or a smaller iteration does (we lose permanently,
            // also like the sequential loop). Both cases are final.
            debug_assert!(self.cells[c].load(Ordering::Acquire) <= i);
            true
        }
    }

    #[test]
    fn reproduces_sequential_greedy() {
        let m = 13;
        let n = 1000;
        let step = Claimer {
            cells: (0..m).map(|_| AtomicUsize::new(usize::MAX)).collect(),
        };
        let rounds = speculative_for(&step, 0, n, 64);
        assert!(rounds >= (n / 64), "must take multiple rounds");
        for (c, cell) in step.cells.iter().enumerate() {
            // Smallest i with i % m == c.
            assert_eq!(cell.load(Ordering::Relaxed), c, "cell {c}");
        }
    }

    #[test]
    fn empty_range_zero_rounds() {
        let step = Claimer {
            cells: (0..3).map(|_| AtomicUsize::new(usize::MAX)).collect(),
        };
        assert_eq!(speculative_for(&step, 5, 5, 10), 0);
    }

    #[test]
    fn all_iterations_eventually_processed() {
        struct CountAll {
            hits: Vec<AtomicUsize>,
            flaky: AtomicUsize,
        }
        impl ReserveCommit for CountAll {
            fn reserve(&self, _i: usize) -> bool {
                true
            }
            fn commit(&self, i: usize) -> bool {
                // Fail each iteration exactly once to exercise retries.
                if self.hits[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    self.flaky.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            }
        }
        let n = 500;
        let step = CountAll {
            hits: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            flaky: AtomicUsize::new(0),
        };
        speculative_for(&step, 0, n, 32);
        assert_eq!(step.flaky.load(Ordering::Relaxed), n);
        for (i, h) in step.hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 2, "iteration {i} retried once");
        }
    }
}
