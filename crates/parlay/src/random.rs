//! Parlay's hash-based splittable random source.
//!
//! PBBS input generators draw value `i` as `hash(seed ⊕ i)` so that inputs
//! are (a) deterministic across runs and machines and (b) generatable in
//! parallel with no shared state — both properties the evaluation
//! methodology depends on.

/// A 64-bit finalizer-style hash (xxhash/murmur-mix family, the same shape
/// as Parlay's `hash64`). Bijective on `u64`.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Splittable random source: a seed plus pure functions of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Random {
    seed: u64,
}

impl Random {
    /// Random source with the given seed.
    pub fn new(seed: u64) -> Random {
        Random { seed }
    }

    /// An independent child source (Parlay's `fork`).
    pub fn fork(&self, i: u64) -> Random {
        Random {
            seed: hash64(self.seed ^ hash64(i)),
        }
    }

    /// The `i`-th random 64-bit value of this source.
    #[inline]
    pub fn ith_rand(&self, i: u64) -> u64 {
        hash64(self.seed.wrapping_add(i))
    }

    /// The `i`-th random double in `[0, 1)`.
    #[inline]
    pub fn ith_f64(&self, i: u64) -> f64 {
        // 53 high-quality bits → unit interval.
        (self.ith_rand(i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The `i`-th random value in `[lo, hi)` (uses modulo; bias is
    /// negligible for the ranges PBBS uses, as in the original suite).
    #[inline]
    pub fn ith_in_range(&self, i: u64, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.ith_rand(i) % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = Random::new(1);
        let b = Random::new(1);
        let c = Random::new(2);
        assert_eq!(a.ith_rand(42), b.ith_rand(42));
        assert_ne!(a.ith_rand(42), c.ith_rand(42));
    }

    #[test]
    fn fork_decorrelates() {
        let r = Random::new(5);
        let f1 = r.fork(0);
        let f2 = r.fork(1);
        assert_ne!(f1, f2);
        assert_ne!(f1.ith_rand(0), f2.ith_rand(0));
    }

    #[test]
    fn unit_interval_bounds() {
        let r = Random::new(9);
        for i in 0..10_000 {
            let x = r.ith_f64(i);
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_bounds() {
        let r = Random::new(13);
        for i in 0..10_000 {
            let v = r.ith_in_range(i, 10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn hash64_is_not_identity_and_spreads_low_bits() {
        // Consecutive inputs should flip roughly half the output bits.
        let mut total_flips = 0;
        for i in 0..1000u64 {
            total_flips += (hash64(i) ^ hash64(i + 1)).count_ones();
        }
        let avg = total_flips as f64 / 1000.0;
        assert!((20.0..44.0).contains(&avg), "avalanche too weak: {avg}");
    }

    #[test]
    fn rough_uniformity() {
        let r = Random::new(77);
        let mut buckets = [0u32; 16];
        for i in 0..32_000 {
            buckets[(r.ith_rand(i) % 16) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (1700..2300).contains(&b),
                "bucket {i} badly skewed: {b}/32000"
            );
        }
    }
}
