//! Order statistics and merging: `kth_smallest` (parallel quickselect),
//! `partition`, and `merge_into` — the remaining Parlay sequence
//! primitives PBBS-style algorithms lean on.

use std::cmp::Ordering as CmpOrdering;

use crate::primitives::filter;

/// The `k`-th smallest element (0-indexed) of `data` under `cmp`, by
/// parallel quickselect with deterministic median-of-first/mid/last
/// pivoting. `O(n)` expected work, `O(log² n)` span. Panics if
/// `k >= data.len()`.
pub fn kth_smallest_by<T, C>(data: &[T], k: usize, cmp: C) -> T
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    assert!(k < data.len(), "k = {k} out of bounds ({})", data.len());
    let mut current: Vec<T> = data.to_vec();
    let mut k = k;
    loop {
        if current.len() <= 2048 {
            current.sort_by(&cmp);
            return current[k].clone();
        }
        let pivot = median3(&current, &cmp);
        let less = filter(&current, |x| cmp(x, &pivot) == CmpOrdering::Less);
        if k < less.len() {
            current = less;
            continue;
        }
        let equal_count =
            crate::primitives::count(&current, |x| cmp(x, &pivot) == CmpOrdering::Equal);
        if k < less.len() + equal_count {
            return pivot;
        }
        k -= less.len() + equal_count;
        current = filter(&current, |x| cmp(x, &pivot) == CmpOrdering::Greater);
    }
}

/// [`kth_smallest_by`] with the natural order.
pub fn kth_smallest<T: Ord + Clone + Send + Sync>(data: &[T], k: usize) -> T {
    kth_smallest_by(data, k, |a, b| a.cmp(b))
}

/// The median element (lower median for even lengths).
pub fn median<T: Ord + Clone + Send + Sync>(data: &[T]) -> T {
    kth_smallest(data, (data.len().saturating_sub(1)) / 2)
}

fn median3<T: Clone, C: Fn(&T, &T) -> CmpOrdering>(data: &[T], cmp: &C) -> T {
    let a = &data[0];
    let b = &data[data.len() / 2];
    let c = &data[data.len() - 1];
    let (lo, hi) = if cmp(a, b) == CmpOrdering::Greater {
        (b, a)
    } else {
        (a, b)
    };
    let m = if cmp(c, lo) == CmpOrdering::Less {
        lo
    } else if cmp(c, hi) == CmpOrdering::Greater {
        hi
    } else {
        c
    };
    m.clone()
}

/// Stable parallel partition: `(matching, rest)` clones in original order.
pub fn partition<T, F>(data: &[T], pred: F) -> (Vec<T>, Vec<T>)
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    lcws_core::join(|| filter(data, |x| pred(x)), || filter(data, |x| !pred(x)))
}

/// Merge two sorted slices into a new sorted vector (parallel dual binary
/// search; stable — ties take from `left` first).
pub fn merge<T, C>(left: &[T], right: &[T], cmp: C) -> Vec<T>
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let n = left.len() + right.len();
    // Reuse the sort module's parallel merge through a tabulate of
    // positions would be O(n log n); instead allocate and run the real
    // par_merge (private to sort.rs), re-exposed here via a small shim.
    let mut out: Vec<T> = Vec::with_capacity(n);
    if let Some(first) = left.first().or_else(|| right.first()) {
        out.resize(n, first.clone());
        crate::sort::merge_into(left, right, &mut out, &cmp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Random;

    #[test]
    fn kth_matches_sorted_order() {
        let r = Random::new(31);
        let data: Vec<u64> = (0..30_000).map(|i| r.ith_rand(i) % 10_000).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for k in [0, 1, 123, 15_000, 29_999] {
            assert_eq!(kth_smallest(&data, k), sorted[k], "k = {k}");
        }
    }

    #[test]
    fn kth_with_heavy_duplicates() {
        let data = vec![5u32; 10_000];
        assert_eq!(kth_smallest(&data, 0), 5);
        assert_eq!(kth_smallest(&data, 9_999), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn kth_out_of_bounds_panics() {
        kth_smallest(&[1, 2, 3], 3);
    }

    #[test]
    fn median_small_cases() {
        assert_eq!(median(&[3u8]), 3);
        assert_eq!(median(&[2u8, 1]), 1); // lower median
        assert_eq!(median(&[9u8, 1, 5]), 5);
    }

    #[test]
    fn partition_is_stable() {
        let data: Vec<i32> = (0..10_000).collect();
        let (evens, odds) = partition(&data, |x| x % 2 == 0);
        assert_eq!(evens.len(), 5_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]), "order preserved");
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_matches_std() {
        let r = Random::new(33);
        let mut a: Vec<u64> = (0..20_000).map(|i| r.ith_rand(i)).collect();
        let mut b: Vec<u64> = (0..15_000).map(|i| r.ith_rand(i + (1 << 40))).collect();
        a.sort_unstable();
        b.sort_unstable();
        let merged = merge(&a, &b, |x, y| x.cmp(y));
        let mut expected = [a.clone(), b.clone()].concat();
        expected.sort_unstable();
        assert_eq!(merged, expected);
    }

    #[test]
    fn merge_empty_sides() {
        assert!(merge::<u32, _>(&[], &[], |a, b| a.cmp(b)).is_empty());
        assert_eq!(merge(&[1, 3], &[], |a, b| a.cmp(b)), vec![1, 3]);
        assert_eq!(merge(&[], &[2, 4], |a, b| a.cmp(b)), vec![2, 4]);
    }
}
