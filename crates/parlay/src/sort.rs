//! Parallel sorting: stable merge sort with parallel merge (the
//! `comparisonSort` substrate) and stable LSD parallel radix sort (the
//! `integerSort` substrate).

use std::cmp::Ordering as CmpOrdering;

use lcws_core::join;

use crate::primitives::{scan_exclusive, tabulate_grain, UnsafeSlice};

/// Below this size, fall back to `slice::sort_by` at the leaves.
const SORT_SEQ: usize = 4096;
/// Below this combined size, merge sequentially.
const MERGE_SEQ: usize = 8192;

/// Stable parallel sort by `Ord`.
pub fn sort<T: Ord + Clone + Send + Sync>(data: &mut [T]) {
    sort_by(data, |a, b| a.cmp(b));
}

/// Stable parallel sort with a comparator.
pub fn sort_by<T, C>(data: &mut [T], cmp: C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let n = data.len();
    if n <= SORT_SEQ {
        data.sort_by(&cmp);
        return;
    }
    let mut buf = data.to_vec();
    sort_rec(data, &mut buf, &cmp, false);
}

/// Postcondition: sorted data lives in `buf` when `into_buf`, else in `a`.
fn sort_rec<T, C>(a: &mut [T], buf: &mut [T], cmp: &C, into_buf: bool)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    debug_assert_eq!(a.len(), buf.len());
    if a.len() <= SORT_SEQ {
        a.sort_by(cmp);
        if into_buf {
            buf.clone_from_slice(a);
        }
        return;
    }
    let mid = a.len() / 2;
    let (a1, a2) = a.split_at_mut(mid);
    let (b1, b2) = buf.split_at_mut(mid);
    // Sort the halves into the *other* array, then merge back into this one.
    join(
        || sort_rec(a1, b1, cmp, !into_buf),
        || sort_rec(a2, b2, cmp, !into_buf),
    );
    if into_buf {
        par_merge(a1, a2, buf, cmp);
    } else {
        let (b1, b2) = buf.split_at(mid);
        par_merge(b1, b2, a, cmp);
    }
}

/// Merge two sorted runs into `out`, splitting the larger run at its
/// midpoint and binary-searching the split point in the other (stable:
/// ties favour the left run).
fn par_merge<T, C>(left: &[T], right: &[T], out: &mut [T], cmp: &C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    debug_assert_eq!(left.len() + right.len(), out.len());
    if out.len() <= MERGE_SEQ {
        seq_merge(left, right, out, cmp);
        return;
    }
    if left.len() >= right.len() {
        let lm = left.len() / 2;
        let pivot = &left[lm];
        // First right element NOT strictly less than pivot → ties stay left.
        let rm = right.partition_point(|x| cmp(x, pivot) == CmpOrdering::Less);
        let (l1, l2) = left.split_at(lm);
        let (r1, r2) = right.split_at(rm);
        let (o1, o2) = out.split_at_mut(lm + rm);
        join(|| par_merge(l1, r1, o1, cmp), || par_merge(l2, r2, o2, cmp));
    } else {
        let rm = right.len() / 2;
        let pivot = &right[rm];
        // Left elements ≤ pivot go first (stability: left wins ties).
        let lm = left.partition_point(|x| cmp(x, pivot) != CmpOrdering::Greater);
        let (l1, l2) = left.split_at(lm);
        let (r1, r2) = right.split_at(rm);
        let (o1, o2) = out.split_at_mut(lm + rm);
        join(|| par_merge(l1, r1, o1, cmp), || par_merge(l2, r2, o2, cmp));
    }
}

fn seq_merge<T, C>(left: &[T], right: &[T], out: &mut [T], cmp: &C)
where
    T: Clone,
    C: Fn(&T, &T) -> CmpOrdering,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_left = if i == left.len() {
            false
        } else if j == right.len() {
            true
        } else {
            cmp(&right[j], &left[i]) != CmpOrdering::Less // stable
        };
        if take_left {
            *slot = left[i].clone();
            i += 1;
        } else {
            *slot = right[j].clone();
            j += 1;
        }
    }
}

/// Stable parallel LSD radix sort of `u64` keys.
pub fn integer_sort(data: &mut [u64]) {
    integer_sort_by_key(data, |&x| x);
}

/// Stable parallel LSD radix sort of `Copy` items by a `u64` key.
///
/// Digit width is 8 bits; the number of passes adapts to the maximum key.
/// Each pass counts per exact block, scans the `(digit, block)` matrix
/// column-major (digit-major) for stable global offsets, and scatters.
pub fn integer_sort_by_key<T, K>(data: &mut [T], key: K)
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    const RADIX_BITS: u32 = 8;
    const BUCKETS: usize = 1 << RADIX_BITS;

    let n = data.len();
    if n <= 1 {
        return;
    }
    // How many bits do we actually need?
    let max_key = crate::primitives::map(data, |x| key(x))
        .into_iter()
        .fold(0u64, u64::max);
    let key_bits = 64 - max_key.leading_zeros();
    let passes = (key_bits.div_ceil(RADIX_BITS)).max(1);

    let grain = (n.div_ceil(8 * lcws_core::num_workers())).clamp(1024, 1 << 16);
    let blocks = n.div_ceil(grain);

    let mut buf: Vec<T> = data.to_vec();
    let mut src_is_data = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_data {
                (&*data, &mut buf)
            } else {
                (&*buf, &mut *data)
            };
            radix_pass(src, dst, blocks, grain, shift, BUCKETS, &key);
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        // Result landed in `buf`: copy back in parallel.
        crate::primitives::par_chunks_mut(data, grain, |offset, chunk| {
            chunk.copy_from_slice(&buf[offset..offset + chunk.len()]);
        });
    }
}

fn radix_pass<T, K>(
    src: &[T],
    dst: &mut [T],
    blocks: usize,
    grain: usize,
    shift: u32,
    buckets: usize,
    key: &K,
) where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let n = src.len();
    let mask = (buckets - 1) as u64;
    // counts[b * buckets + d] = how many keys with digit d in block b.
    let counts: Vec<usize> = tabulate_grain(blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        let mut c = vec![0usize; buckets];
        for x in &src[lo..hi] {
            c[((key(x) >> shift) & mask) as usize] += 1;
        }
        c
    })
    .into_iter()
    .flatten()
    .collect();
    // Digit-major (column-major) order gives stable global offsets:
    // all of digit 0 (blocks in order), then digit 1, ...
    let col_major: Vec<usize> = tabulate_grain(buckets * blocks, 1024, |i| {
        let d = i / blocks;
        let b = i % blocks;
        counts[b * buckets + d]
    });
    let (col_offsets, total) = scan_exclusive(&col_major, 0usize, |a, b| a + b);
    debug_assert_eq!(total, n);
    let slots = UnsafeSlice::new(dst);
    lcws_core::par_for_grain(0..blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        let mut local: Vec<usize> = (0..buckets).map(|d| col_offsets[d * blocks + b]).collect();
        for x in &src[lo..hi] {
            let d = ((key(x) >> shift) & mask) as usize;
            // Safety: offsets from the exclusive scan partition `dst`.
            unsafe { slots.write(local[d], *x) };
            local[d] += 1;
        }
    });
}

/// Sorted copy without mutating the input (convenience used by benchmarks).
pub fn sorted<T: Ord + Clone + Send + Sync>(data: &[T]) -> Vec<T> {
    let mut v = data.to_vec();
    sort(&mut v);
    v
}

/// Below this size, sample sort falls back to `slice::sort_by`.
const SAMPLE_SEQ: usize = 8192;
/// Pivot oversampling factor.
const OVERSAMPLE: usize = 8;

/// Stable parallel **sample sort** — the algorithm PBBS's `comparisonSort`
/// actually uses (merge sort above is the textbook alternative; the
/// `sort_algorithms` Criterion bench compares them).
///
/// One level of splitter-based bucketing (counts per exact block →
/// digit-major scan → stable scatter), then buckets sorted independently
/// in parallel. Stability: equal elements share a bucket (bucket id =
/// number of pivots ≤ x), the blocked scatter preserves input order within
/// a bucket, and the per-bucket sort is stable.
pub fn sample_sort_by<T, C>(data: &mut [T], cmp: C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let n = data.len();
    if n <= SAMPLE_SEQ {
        data.sort_by(&cmp);
        return;
    }
    // Bucket count ~ n / SAMPLE_SEQ, clamped.
    let num_buckets = (n / SAMPLE_SEQ).next_power_of_two().clamp(2, 512);
    // Deterministic oversampled pivots.
    let rng = crate::random::Random::new(0x5A17_E50F ^ n as u64);
    let mut sample: Vec<T> = (0..num_buckets * OVERSAMPLE)
        .map(|i| data[(rng.ith_rand(i as u64) % n as u64) as usize].clone())
        .collect();
    sample.sort_by(&cmp);
    let pivots: Vec<T> = (1..num_buckets)
        .map(|b| sample[b * OVERSAMPLE].clone())
        .collect();
    let bucket_of = |x: &T| -> usize {
        // Number of pivots ≤ x; equal elements agree on this.
        pivots.partition_point(|p| cmp(p, x) != CmpOrdering::Greater)
    };

    let grain = (n.div_ceil(8 * lcws_core::num_workers())).clamp(1024, 1 << 16);
    let blocks = n.div_ceil(grain);
    // counts[b * num_buckets + d]
    let counts: Vec<usize> = tabulate_grain(blocks, 1, |b| {
        let lo = b * grain;
        let hi = ((b + 1) * grain).min(n);
        let mut c = vec![0usize; num_buckets];
        for x in &data[lo..hi] {
            c[bucket_of(x)] += 1;
        }
        c
    })
    .into_iter()
    .flatten()
    .collect();
    let col_major: Vec<usize> = tabulate_grain(num_buckets * blocks, 1024, |i| {
        let d = i / blocks;
        let b = i % blocks;
        counts[b * num_buckets + d]
    });
    let (col_offsets, total) = scan_exclusive(&col_major, 0usize, |a, b| a + b);
    debug_assert_eq!(total, n);
    // Stable scatter into a fresh buffer.
    let mut buf: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // Safety: MaybeUninit needs no init; every slot is written exactly once
    // below (scan offsets partition the buffer).
    unsafe { buf.set_len(n) };
    {
        let slots = UnsafeSlice::new_uninit(&mut buf);
        lcws_core::par_for_grain(0..blocks, 1, |b| {
            let lo = b * grain;
            let hi = ((b + 1) * grain).min(n);
            let mut local: Vec<usize> = (0..num_buckets)
                .map(|d| col_offsets[d * blocks + b])
                .collect();
            for x in &data[lo..hi] {
                let d = bucket_of(x);
                unsafe { slots.write(local[d], x.clone()) };
                local[d] += 1;
            }
        });
    }
    // Safety: fully initialized above.
    let mut buf: Vec<T> = unsafe {
        let mut b = std::mem::ManuallyDrop::new(buf);
        Vec::from_raw_parts(b.as_mut_ptr() as *mut T, b.len(), b.capacity())
    };
    // Bucket boundaries, then sort buckets independently.
    let bounds: Vec<usize> = (0..=num_buckets)
        .map(|d| {
            if d == num_buckets {
                n
            } else {
                col_offsets[d * blocks]
            }
        })
        .collect();
    {
        // Carve `buf` into per-bucket exclusive &mut slices (safe — the
        // bounds partition the buffer) and sort them as independent tasks.
        let mut rest: &mut [T] = &mut buf;
        let mut pending: Vec<&mut [T]> = Vec::with_capacity(num_buckets);
        for d in 0..num_buckets {
            let len = bounds[d + 1] - bounds[d];
            let (head, tail) = rest.split_at_mut(len);
            pending.push(head);
            rest = tail;
        }
        let cmp = &cmp;
        lcws_core::scope(|s| {
            for slice in pending {
                s.spawn(move || slice.sort_by(cmp));
            }
        });
    }
    // Copy back.
    crate::primitives::par_chunks_mut(data, grain, |off, chunk| {
        chunk.clone_from_slice(&buf[off..off + chunk.len()]);
    });
}

/// [`sample_sort_by`] with the natural `Ord`.
pub fn sample_sort<T: Ord + Clone + Send + Sync>(data: &mut [T]) {
    sample_sort_by(data, |a, b| a.cmp(b));
}

/// Merge two sorted runs into `out` in parallel (stable, ties favour
/// `left`). `out.len()` must equal `left.len() + right.len()`; its
/// existing contents are overwritten. Exposed for
/// [`crate::selection::merge`].
pub fn merge_into<T, C>(left: &[T], right: &[T], out: &mut [T], cmp: &C)
where
    T: Clone + Send + Sync,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    assert_eq!(left.len() + right.len(), out.len());
    par_merge(left, right, out, cmp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Random;

    #[test]
    fn sort_random_u64() {
        let r = Random::new(42);
        let mut v: Vec<u64> = (0..50_000).map(|i| r.ith_rand(i) % 1_000_000).collect();
        let mut expected = v.clone();
        expected.sort();
        sort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sort_already_sorted_and_reverse() {
        let mut v: Vec<u32> = (0..20_000).collect();
        sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut r: Vec<u32> = (0..20_000).rev().collect();
        sort(&mut r);
        assert_eq!(r, v);
    }

    #[test]
    fn sort_by_is_stable() {
        // Sort pairs by first key only; second component must preserve
        // insertion order within equal keys.
        let r = Random::new(7);
        let mut v: Vec<(u64, usize)> = (0..30_000)
            .map(|i| (r.ith_rand(i as u64) % 100, i))
            .collect();
        let mut expected = v.clone();
        expected.sort_by_key(|a| a.0);
        sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        assert_eq!(v, expected, "parallel sort must be stable");
    }

    #[test]
    fn sort_tiny_inputs() {
        let mut empty: Vec<u8> = vec![];
        sort(&mut empty);
        let mut one = vec![5u8];
        sort(&mut one);
        assert_eq!(one, [5]);
        let mut two = vec![9u8, 3];
        sort(&mut two);
        assert_eq!(two, [3, 9]);
    }

    #[test]
    fn integer_sort_matches_std() {
        let r = Random::new(11);
        let mut v: Vec<u64> = (0..80_000).map(|i| r.ith_rand(i)).collect();
        let mut expected = v.clone();
        expected.sort();
        integer_sort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn integer_sort_small_keys_few_passes() {
        let r = Random::new(3);
        let mut v: Vec<u64> = (0..30_000).map(|i| r.ith_rand(i) % 256).collect();
        let mut expected = v.clone();
        expected.sort();
        integer_sort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn integer_sort_by_key_is_stable() {
        let r = Random::new(123);
        let mut v: Vec<(u64, u32)> = (0..40_000)
            .map(|i| (r.ith_rand(i as u64) % 64, i as u32))
            .collect();
        let mut expected = v.clone();
        expected.sort_by_key(|p| p.0);
        integer_sort_by_key(&mut v, |p| p.0);
        assert_eq!(v, expected, "radix sort must be stable");
    }

    #[test]
    fn integer_sort_all_equal_and_zero() {
        let mut v = vec![7u64; 10_000];
        integer_sort(&mut v);
        assert!(v.iter().all(|&x| x == 7));
        let mut z = vec![0u64; 5_000];
        integer_sort(&mut z);
        assert!(z.iter().all(|&x| x == 0));
    }

    #[test]
    fn sample_sort_matches_std() {
        let r = Random::new(21);
        let mut v: Vec<u64> = (0..60_000).map(|i| r.ith_rand(i)).collect();
        let mut expected = v.clone();
        expected.sort();
        sample_sort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sample_sort_is_stable() {
        let r = Random::new(22);
        let mut v: Vec<(u64, usize)> = (0..50_000)
            .map(|i| (r.ith_rand(i as u64) % 50, i))
            .collect();
        let mut expected = v.clone();
        expected.sort_by_key(|a| a.0);
        sample_sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        assert_eq!(v, expected, "sample sort must be stable");
    }

    #[test]
    fn sample_sort_heavy_duplicates() {
        // One dominant value: the classic sample-sort stress case.
        let r = Random::new(23);
        let mut v: Vec<u64> = (0..40_000)
            .map(|i| {
                if r.ith_rand(i) % 10 < 8 {
                    7
                } else {
                    r.ith_rand(i) % 100
                }
            })
            .collect();
        let mut expected = v.clone();
        expected.sort();
        sample_sort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sample_sort_small_falls_back() {
        let mut v = vec![3u8, 1, 2];
        sample_sort(&mut v);
        assert_eq!(v, [1, 2, 3]);
    }

    #[test]
    fn sorted_does_not_mutate() {
        let v = vec![3u32, 1, 2];
        let s = sorted(&v);
        assert_eq!(v, [3, 1, 2]);
        assert_eq!(s, [1, 2, 3]);
    }
}
