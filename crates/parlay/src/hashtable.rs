//! Phase-concurrent, insert-only hash set (linear probing + CAS) — the
//! substrate PBBS's `removeDuplicates` and index-building benchmarks use.
//!
//! "Phase-concurrent" means concurrent inserts are safe, and reads
//! (`contains`, `elements`) are safe concurrently with each other and with
//! inserts (an in-flight insert is simply observed or not). There is no
//! deletion, matching PBBS's deterministic hashing structure.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::primitives;
use crate::random::hash64;

/// Slot value meaning "empty".
const EMPTY: u64 = u64::MAX;

/// A fixed-capacity concurrent set of `u64` keys (keys must be
/// `< u64::MAX`).
pub struct ConcurrentSet {
    slots: Box<[AtomicU64]>,
    mask: usize,
}

impl ConcurrentSet {
    /// A set able to hold at least `capacity` keys with load factor ≤ 0.5.
    pub fn with_capacity(capacity: usize) -> ConcurrentSet {
        let size = (capacity.max(2) * 2).next_power_of_two();
        let slots = (0..size).map(|_| AtomicU64::new(EMPTY)).collect();
        ConcurrentSet {
            slots,
            mask: size - 1,
        }
    }

    /// Number of slots (≥ 2 × requested capacity).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Insert `key`; returns true iff it was not already present.
    ///
    /// Panics if the table is full (the caller sized it too small).
    pub fn insert(&self, key: u64) -> bool {
        assert_ne!(key, EMPTY, "u64::MAX is reserved as the empty marker");
        let mut i = (hash64(key) as usize) & self.mask;
        for _probe in 0..=self.mask {
            let slot = &self.slots[i];
            let cur = slot.load(Ordering::Acquire);
            if cur == key {
                return false;
            }
            if cur == EMPTY {
                match slot.compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => return true,
                    Err(observed) if observed == key => return false,
                    Err(_) => continue, // someone claimed the slot; re-read it
                }
            }
            i = (i + 1) & self.mask;
        }
        panic!(
            "ConcurrentSet overflow: all {} slots full",
            self.slots.len()
        );
    }

    /// Is `key` present?
    pub fn contains(&self, key: u64) -> bool {
        let mut i = (hash64(key) as usize) & self.mask;
        for _probe in 0..=self.mask {
            match self.slots[i].load(Ordering::Acquire) {
                cur if cur == key => return true,
                EMPTY => return false,
                _ => i = (i + 1) & self.mask,
            }
        }
        false
    }

    /// Snapshot of the stored keys, in unspecified order (parallel pack).
    pub fn elements(&self) -> Vec<u64> {
        let raw = primitives::tabulate(self.slots.len(), |i| self.slots[i].load(Ordering::Acquire));
        primitives::filter(&raw, |&k| k != EMPTY)
    }

    /// Number of stored keys (parallel count).
    pub fn len(&self) -> usize {
        primitives::count(
            &primitives::tabulate(self.slots.len(), |i| self.slots[i].load(Ordering::Acquire)),
            |&k| k != EMPTY,
        )
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let s = ConcurrentSet::with_capacity(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn colliding_keys_probe_correctly() {
        // Force collisions with a tiny table.
        let s = ConcurrentSet::with_capacity(4);
        for k in 0..4u64 {
            assert!(s.insert(k));
        }
        for k in 0..4u64 {
            assert!(s.contains(k), "lost key {k}");
            assert!(!s.insert(k), "duplicate accepted for {k}");
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let s = ConcurrentSet::with_capacity(2);
        for k in 0..100u64 {
            s.insert(k);
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_key_rejected() {
        let s = ConcurrentSet::with_capacity(4);
        s.insert(u64::MAX);
    }

    #[test]
    fn concurrent_inserts_count_unique_keys_once() {
        let s = ConcurrentSet::with_capacity(10_000);
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                let winners = &winners;
                scope.spawn(move || {
                    // All threads insert the same 2000 keys.
                    for k in 0..2000u64 {
                        if s.insert(k * 3 + 1) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let _ = t;
                });
            }
        });
        assert_eq!(
            winners.load(Ordering::Relaxed),
            2000,
            "each key must have exactly one winning insert"
        );
        assert_eq!(s.len(), 2000);
        let mut el = s.elements();
        el.sort_unstable();
        let expected: Vec<u64> = (0..2000).map(|k| k * 3 + 1).collect();
        assert_eq!(el, expected);
    }
}
