//! Synchronization-operation instrumentation for the LCWS schedulers.
//!
//! The SPAA '23 paper's primary quantitative evidence (Figures 3 and 8) is
//! the *count of synchronization operations* — seq-cst memory fences and
//! compare-and-swap instructions — executed by each scheduler, together with
//! scheduling-event counts (steal attempts, successful steals, work
//! exposures, exposed-but-unstolen tasks, signals sent, idle iterations).
//!
//! This crate provides that accounting with near-zero perturbation:
//!
//! * Every counter increment is a **plain, non-atomic add on a thread-local
//!   `Cell<u64>`** (one load, one add, one store — no lock prefix, no fence).
//!   Counting a fence with an atomic RMW would itself be a synchronization
//!   operation and would distort exactly the quantity being measured.
//! * Thread-local counters are **flushed** into a shared [`Collector`] at
//!   natural quiescence points (the scheduler flushes when a parallel run
//!   finishes), where a handful of `fetch_add`s per thread per run are noise.
//!
//! The instrumented entry points ([`fence_seq_cst`], [`record_cas`], …) are
//! called by `lcws-core`'s deques and schedulers at exactly the points where
//! the paper's C++ listings execute the corresponding instruction, so the
//! per-run [`Snapshot`] reproduces the paper's profile plots.
//!
//! Signal-handler safety: the signal-based schedulers bump these counters
//! from inside a `SIGUSR1` handler. That is sound because the increments
//! touch only a `Cell` in the *interrupted thread's own* TLS block (already
//! initialized by the worker prologue) and perform no allocation, locking,
//! or syscalls.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The individual event kinds tracked by the instrumentation.
///
/// The discriminants index into [`Collector`]'s totals array and
/// [`Snapshot`]'s fields; keep `COUNTER_KINDS` in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Sequentially-consistent memory fences (`atomic_thread_fence(seq_cst)`
    /// in the paper's Listing 2, and the fence the WS baseline deque pays on
    /// every local `pop_bottom`).
    Fence = 0,
    /// Compare-and-swap instructions (successful or failed).
    Cas = 1,
    /// Steal attempts: every `pop_top` invocation by a thief.
    StealAttempt = 2,
    /// Successful steals: `pop_top` returned a task to a thief.
    StealOk = 3,
    /// Steal attempts answered with `PRIVATE_WORK` (the victim had only
    /// private tasks, so the thief requested exposure).
    StealPrivate = 4,
    /// Tasks transferred from the private to the public part of a split
    /// deque (`update_public_bottom` moved the boundary by one per task).
    Exposure = 5,
    /// Exposed tasks that were re-taken by their owner via
    /// `pop_public_bottom` — the paper's "exposed work that is not stolen".
    OwnerPublicPop = 6,
    /// `pthread_kill(SIGUSR1)` notifications sent by thieves.
    SignalSent = 7,
    /// Work-exposure requests handled (signal-handler activations or
    /// user-space `targeted`-flag observations that led to an exposure
    /// check).
    ExposureRequest = 8,
    /// Iterations of the thief loop that yielded no task.
    IdleIter = 9,
    /// Tasks executed (both locally popped and stolen).
    TaskRun = 10,
    /// Local bottom pushes (`push_bottom`).
    Push = 11,
    /// Successful local bottom pops (`pop_bottom` returned a task).
    LocalPop = 12,
    /// Times a worker fully escalated its idle backoff and blocked on its
    /// sleeper slot (condvar park).
    Park = 13,
    /// Wakeups delivered to parked workers by producers (push, exposure,
    /// run close).
    Unpark = 14,
    /// Parks that ended without a matching wakeup: timed-park backstop
    /// expiry or a spurious condvar return.
    SpuriousWake = 15,
    /// Fork/spawn requests that found the worker's deque full and degraded
    /// to inline execution on the owner instead of aborting.
    OverflowInline = 16,
    /// `pthread_kill` notifications that returned a nonzero status (e.g.
    /// ESRCH from a racing thread exit) after exhausting the capped retry.
    SignalSendFailed = 17,
    /// Failed signal notifications that were rerouted through the
    /// user-space `targeted`-flag path so the steal request is not lost.
    SignalFallbackFlag = 18,
    /// Fault-injection sites that fired (delay, yield storm, or forced
    /// failure). Always zero unless the `faultpoints` feature of
    /// `lcws-core` is enabled and a plan is installed.
    FaultInjected = 19,
    /// Individual `pthread_kill` invocations, successful or not, including
    /// EAGAIN re-sends. The paper's Figure 8 counts *deliveries*
    /// ([`Counter::SignalSent`]); this counts the attempts behind them, so
    /// `signal_send_attempts ≥ signals_sent + signal_send_failed`, with
    /// equality when no EAGAIN retry was needed.
    SignalSendAttempt = 20,
    /// Steal attempts that lost the `age` CAS race to another taker
    /// (`Steal::Abort`). Distinct from an empty victim: an abort proves the
    /// victim held work an instant ago, so thieves must not treat it as
    /// emptiness when escalating their idle backoff.
    StealAbort = 21,
    /// Deque ring-buffer growths: `push_bottom` found the current ring full
    /// and doubled it. One bump per successful doubling, so the final
    /// capacity of a worker's deque is `initial << grows` (per deque; this
    /// counter aggregates across workers like every other counter).
    DequeGrow = 22,
    /// Worker threads that died: a panic escaped a helper's work loop (the
    /// job-level `catch_unwind` contains task panics, so this counts
    /// scheduler-internal failures and injected `WorkerLoop` faults), or a
    /// join at teardown surfaced a panic payload.
    WorkerDeath = 23,
    /// Replacement helper threads spawned by the pool's between-run
    /// self-healing pass (one per dead worker successfully respawned).
    WorkerRespawn = 24,
    /// Tasks submitted to the pool's global injector
    /// (`ThreadPool::spawn`/`spawn_batch`). External producer threads
    /// account these directly into the pool collector (they have no
    /// flushed thread-local cells).
    InjectorPush = 25,
    /// Tasks taken out of the global injector by workers falling back to
    /// it between steal attempts. `injector_pushes == injector_pops +
    /// inline-degraded submissions` once a serve generation drains.
    InjectorPop = 26,
    /// Race reports emitted by the happens-before checker (`hb` feature of
    /// `lcws-core`). Always zero in default builds; any nonzero value under
    /// `--features hb` is a detected data race (two accesses to a tracked
    /// location unordered by happens-before).
    HbReport = 27,
    /// **Extra** tasks transferred by a batch steal (`pop_top_batch` under
    /// the steal-half policy), beyond the one task every successful steal
    /// returns. A batch that took `k` tasks bumps [`Counter::StealOk`] once
    /// and this counter by `k - 1`, so total tasks migrated by thieves is
    /// `steals_ok + steal_batch_tasks` and `steal_batch_tasks > steals_ok`
    /// proves the average batch moved more than two tasks per CAS.
    StealBatchTask = 28,
    /// Producer-side wake attempts: every `wake_one` / `wake_worker` /
    /// `wake_all` call, counted *before* the has-sleepers fast-path exit, so
    /// redundant notifications are visible even when nobody was parked.
    WakeAttempt = 29,
}

/// All counter kinds, in discriminant order.
pub const COUNTER_KINDS: [Counter; NUM_COUNTERS] = [
    Counter::Fence,
    Counter::Cas,
    Counter::StealAttempt,
    Counter::StealOk,
    Counter::StealPrivate,
    Counter::Exposure,
    Counter::OwnerPublicPop,
    Counter::SignalSent,
    Counter::ExposureRequest,
    Counter::IdleIter,
    Counter::TaskRun,
    Counter::Push,
    Counter::LocalPop,
    Counter::Park,
    Counter::Unpark,
    Counter::SpuriousWake,
    Counter::OverflowInline,
    Counter::SignalSendFailed,
    Counter::SignalFallbackFlag,
    Counter::FaultInjected,
    Counter::SignalSendAttempt,
    Counter::StealAbort,
    Counter::DequeGrow,
    Counter::WorkerDeath,
    Counter::WorkerRespawn,
    Counter::InjectorPush,
    Counter::InjectorPop,
    Counter::HbReport,
    Counter::StealBatchTask,
    Counter::WakeAttempt,
];

/// Number of distinct counters.
pub const NUM_COUNTERS: usize = 30;

impl Counter {
    /// Short, stable name used in CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Fence => "fences",
            Counter::Cas => "cas",
            Counter::StealAttempt => "steal_attempts",
            Counter::StealOk => "steals_ok",
            Counter::StealPrivate => "steals_private",
            Counter::Exposure => "exposures",
            Counter::OwnerPublicPop => "owner_public_pops",
            Counter::SignalSent => "signals_sent",
            Counter::ExposureRequest => "exposure_requests",
            Counter::IdleIter => "idle_iters",
            Counter::TaskRun => "tasks_run",
            Counter::Push => "pushes",
            Counter::LocalPop => "local_pops",
            Counter::Park => "parks",
            Counter::Unpark => "unparks",
            Counter::SpuriousWake => "spurious_wakes",
            Counter::OverflowInline => "overflow_inline",
            Counter::SignalSendFailed => "signal_send_failed",
            Counter::SignalFallbackFlag => "signal_fallback_flag",
            Counter::FaultInjected => "faults_injected",
            Counter::SignalSendAttempt => "signal_send_attempts",
            Counter::StealAbort => "steal_aborts",
            Counter::DequeGrow => "deque_grows",
            Counter::WorkerDeath => "worker_deaths",
            Counter::WorkerRespawn => "worker_respawns",
            Counter::InjectorPush => "injector_pushes",
            Counter::InjectorPop => "injector_pops",
            Counter::HbReport => "hb_reports",
            Counter::StealBatchTask => "steal_batch_tasks",
            Counter::WakeAttempt => "wake_attempts",
        }
    }
}

thread_local! {
    static LOCAL: [Cell<u64>; NUM_COUNTERS] = const {
        [const { Cell::new(0) }; NUM_COUNTERS]
    };
}

/// Increment a counter by one on the current thread.
///
/// Cost: one non-atomic TLS add. Safe to call from a signal handler once the
/// thread has touched its counters at least once (worker prologues call
/// [`touch`] to guarantee this).
#[inline]
pub fn bump(counter: Counter) {
    LOCAL.with(|c| {
        let cell = &c[counter as usize];
        cell.set(cell.get().wrapping_add(1));
    });
}

/// Increment a counter by `n` on the current thread.
#[inline]
pub fn bump_by(counter: Counter, n: u64) {
    LOCAL.with(|c| {
        let cell = &c[counter as usize];
        cell.set(cell.get().wrapping_add(n));
    });
}

/// Force initialization of this thread's counter TLS block.
///
/// Worker threads call this before installing signal handlers so that
/// handler-context increments never trigger lazy TLS initialization.
pub fn touch() {
    LOCAL.with(|c| {
        let _ = c[0].get();
    });
}

/// Issue a sequentially-consistent fence **and** account for it.
///
/// All fences in the instrumented deques go through this function so the
/// fence counts of Figures 3a/8a/8e can be regenerated exactly.
#[inline]
pub fn fence_seq_cst() {
    std::sync::atomic::fence(Ordering::SeqCst);
    bump(Counter::Fence);
}

/// Account for one compare-and-swap instruction (call adjacent to the CAS).
#[inline]
pub fn record_cas() {
    bump(Counter::Cas);
}

/// Flush this thread's counters into `collector`, resetting them to zero.
///
/// Called by the scheduler whenever a worker quiesces at the end of a
/// parallel run, and by the main thread before reading a [`Snapshot`].
pub fn flush_into(collector: &Collector) {
    LOCAL.with(|c| {
        for (i, cell) in c.iter().enumerate() {
            let v = cell.replace(0);
            if v != 0 {
                collector.totals[i].fetch_add(v, Ordering::Relaxed);
            }
        }
    });
}

/// Discard this thread's pending counts (used between measurement phases).
pub fn reset_local() {
    LOCAL.with(|c| {
        for cell in c.iter() {
            cell.set(0);
        }
    });
}

/// Shared accumulation target for a group of threads.
///
/// A scheduler owns one `Collector`; its workers flush into it at quiescence.
/// `Collector` is cheap to share (`Arc` internally-atomic totals).
#[derive(Debug, Default)]
pub struct Collector {
    totals: [AtomicU64; NUM_COUNTERS],
}

impl Collector {
    /// New collector with all totals zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Reset all totals to zero (start of a measured run).
    pub fn reset(&self) {
        for t in &self.totals {
            t.store(0, Ordering::Relaxed);
        }
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        for (i, t) in self.totals.iter().enumerate() {
            s.counts[i] = t.load(Ordering::Relaxed);
        }
        s
    }

    /// Add `v` to one total directly (used by tests and by flushes from
    /// threads that are about to exit).
    pub fn add(&self, counter: Counter, v: u64) {
        self.totals[counter as usize].fetch_add(v, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Collector`]'s totals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; NUM_COUNTERS],
}

impl Snapshot {
    /// Value of one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counts[counter as usize]
    }

    /// Seq-cst fences executed.
    pub fn fences(&self) -> u64 {
        self.get(Counter::Fence)
    }

    /// CAS instructions executed.
    pub fn cas(&self) -> u64 {
        self.get(Counter::Cas)
    }

    /// Steal attempts (thief `pop_top` calls).
    pub fn steal_attempts(&self) -> u64 {
        self.get(Counter::StealAttempt)
    }

    /// Successful steals.
    pub fn steals_ok(&self) -> u64 {
        self.get(Counter::StealOk)
    }

    /// Tasks moved from private to public deque parts.
    pub fn exposures(&self) -> u64 {
        self.get(Counter::Exposure)
    }

    /// Exposed tasks re-taken by their owner rather than stolen.
    pub fn owner_public_pops(&self) -> u64 {
        self.get(Counter::OwnerPublicPop)
    }

    /// `pthread_kill` notifications sent.
    pub fn signals_sent(&self) -> u64 {
        self.get(Counter::SignalSent)
    }

    /// Tasks executed.
    pub fn tasks_run(&self) -> u64 {
        self.get(Counter::TaskRun)
    }

    /// Idle thief-loop iterations that yielded no task.
    pub fn idle_iters(&self) -> u64 {
        self.get(Counter::IdleIter)
    }

    /// Condvar parks entered by idle workers.
    pub fn parks(&self) -> u64 {
        self.get(Counter::Park)
    }

    /// Wakeups delivered to parked workers.
    pub fn unparks(&self) -> u64 {
        self.get(Counter::Unpark)
    }

    /// Forks/spawns that degraded to inline execution on deque overflow.
    pub fn overflow_inline(&self) -> u64 {
        self.get(Counter::OverflowInline)
    }

    /// `pthread_kill` notifications that failed after the capped retry.
    pub fn signal_send_failed(&self) -> u64 {
        self.get(Counter::SignalSendFailed)
    }

    /// Raw `pthread_kill` invocations, including EAGAIN re-sends.
    pub fn signal_send_attempts(&self) -> u64 {
        self.get(Counter::SignalSendAttempt)
    }

    /// Steal attempts that lost the CAS race to another taker.
    pub fn steal_aborts(&self) -> u64 {
        self.get(Counter::StealAbort)
    }

    /// Deque ring-buffer doublings performed by `push_bottom`.
    pub fn deque_grows(&self) -> u64 {
        self.get(Counter::DequeGrow)
    }

    /// Worker threads lost to a panic escaping their work loop.
    pub fn worker_deaths(&self) -> u64 {
        self.get(Counter::WorkerDeath)
    }

    /// Replacement helper threads spawned by the self-healing pass.
    pub fn worker_respawns(&self) -> u64 {
        self.get(Counter::WorkerRespawn)
    }

    /// Tasks submitted to the global injector.
    pub fn injector_pushes(&self) -> u64 {
        self.get(Counter::InjectorPush)
    }

    /// Tasks workers took out of the global injector.
    pub fn injector_pops(&self) -> u64 {
        self.get(Counter::InjectorPop)
    }

    /// Race reports from the happens-before checker (`hb` feature).
    pub fn hb_reports(&self) -> u64 {
        self.get(Counter::HbReport)
    }

    /// Extra tasks moved by batch steals beyond the per-steal first task.
    pub fn steal_batch_tasks(&self) -> u64 {
        self.get(Counter::StealBatchTask)
    }

    /// Producer-side wake attempts (before the has-sleepers fast path).
    pub fn wake_attempts(&self) -> u64 {
        self.get(Counter::WakeAttempt)
    }

    /// Failed notifications rerouted through the `targeted`-flag fallback.
    pub fn signal_fallback_flag(&self) -> u64 {
        self.get(Counter::SignalFallbackFlag)
    }

    /// Fault-injection sites that fired (requires `faultpoints`).
    pub fn faults_injected(&self) -> u64 {
        self.get(Counter::FaultInjected)
    }

    /// Fraction of exposed tasks that were **not** stolen (taken back by the
    /// owner) — the paper's Figure 3d / 8d metric. `None` when nothing was
    /// exposed.
    pub fn unstolen_exposure_ratio(&self) -> Option<f64> {
        let exposed = self.exposures();
        if exposed == 0 {
            return None;
        }
        Some(self.owner_public_pops() as f64 / exposed as f64)
    }

    /// Ratio of one snapshot's counter to another's (paper plots e.g.
    /// "USLCWS fences / WS fences"). `None` when the denominator is zero.
    pub fn ratio(&self, other: &Snapshot, counter: Counter) -> Option<f64> {
        let d = other.get(counter);
        if d == 0 {
            return None;
        }
        Some(self.get(counter) as f64 / d as f64)
    }

    /// Element-wise sum of two snapshots.
    pub fn merged(&self, other: &Snapshot) -> Snapshot {
        let mut out = *self;
        for i in 0..NUM_COUNTERS {
            out.counts[i] = out.counts[i].wrapping_add(other.counts[i]);
        }
        out
    }

    /// Element-wise difference (`self - other`), saturating at zero.
    pub fn since(&self, other: &Snapshot) -> Snapshot {
        let mut out = *self;
        for i in 0..NUM_COUNTERS {
            out.counts[i] = out.counts[i].saturating_sub(other.counts[i]);
        }
        out
    }

    /// CSV header matching [`Snapshot::to_csv_row`].
    pub fn csv_header() -> String {
        COUNTER_KINDS
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Comma-separated counter values in `COUNTER_KINDS` order.
    pub fn to_csv_row(&self) -> String {
        self.counts
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for kind in COUNTER_KINDS {
            let v = self.get(kind);
            if v != 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={}", kind.name(), v)?;
                first = false;
            }
        }
        if first {
            write!(f, "(all zero)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_flush_accumulate() {
        reset_local();
        let c = Collector::new();
        bump(Counter::Fence);
        bump(Counter::Fence);
        bump_by(Counter::Cas, 5);
        flush_into(&c);
        let s = c.snapshot();
        assert_eq!(s.fences(), 2);
        assert_eq!(s.cas(), 5);
        // Locals were reset by the flush.
        flush_into(&c);
        assert_eq!(c.snapshot().fences(), 2);
    }

    #[test]
    fn fence_counts_and_orders() {
        reset_local();
        let c = Collector::new();
        fence_seq_cst();
        flush_into(&c);
        assert_eq!(c.snapshot().fences(), 1);
    }

    #[test]
    fn snapshot_ratio_and_unstolen() {
        let c = Collector::new();
        c.add(Counter::Exposure, 10);
        c.add(Counter::OwnerPublicPop, 4);
        let s = c.snapshot();
        assert_eq!(s.unstolen_exposure_ratio(), Some(0.4));

        let d = Collector::new();
        d.add(Counter::Fence, 100);
        c.add(Counter::Fence, 25);
        let r = c.snapshot().ratio(&d.snapshot(), Counter::Fence);
        assert_eq!(r, Some(0.25));
    }

    #[test]
    fn ratio_none_on_zero_denominator() {
        let a = Collector::new().snapshot();
        let b = Collector::new().snapshot();
        assert_eq!(a.ratio(&b, Counter::Fence), None);
        assert_eq!(a.unstolen_exposure_ratio(), None);
    }

    #[test]
    fn flush_from_multiple_threads() {
        let c = Collector::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    reset_local();
                    for _ in 0..100 {
                        bump(Counter::TaskRun);
                    }
                    flush_into(c);
                });
            }
        });
        assert_eq!(c.snapshot().tasks_run(), 400);
    }

    #[test]
    fn merged_and_since() {
        let c = Collector::new();
        c.add(Counter::Push, 7);
        c.add(Counter::LocalPop, 3);
        let s1 = c.snapshot();
        c.add(Counter::Push, 5);
        let s2 = c.snapshot();
        assert_eq!(s2.since(&s1).get(Counter::Push), 5);
        assert_eq!(s2.since(&s1).get(Counter::LocalPop), 0);
        assert_eq!(s1.merged(&s2).get(Counter::Push), 19);
    }

    #[test]
    fn csv_round_trip_shape() {
        let header = Snapshot::csv_header();
        let row = Collector::new().snapshot().to_csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header and row column counts must match"
        );
        assert_eq!(header.split(',').count(), NUM_COUNTERS);
    }

    #[test]
    fn display_skips_zeros() {
        let c = Collector::new();
        c.add(Counter::SignalSent, 2);
        let txt = format!("{}", c.snapshot());
        assert!(txt.contains("signals_sent=2"));
        assert!(!txt.contains("fences"));
        assert_eq!(format!("{}", Snapshot::default()), "(all zero)");
    }

    #[test]
    fn counter_names_unique() {
        let mut names: Vec<_> = COUNTER_KINDS.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS);
    }

    #[test]
    fn reset_clears_collector() {
        let c = Collector::new();
        c.add(Counter::Fence, 9);
        c.reset();
        assert_eq!(c.snapshot().fences(), 0);
    }
}
