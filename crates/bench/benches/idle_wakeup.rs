//! Cost model of the adaptive idle subsystem (spin → yield → park).
//!
//! Two questions, one per group:
//!
//! 1. **Wakeup latency**: once a helper has fully escalated and parked,
//!    how long does producing one job take to get it running again?
//!    Measured with a `join` whose left side blocks until the right side
//!    has run — and the right side can only run on the (parked) helper,
//!    since the owner is blocked. The preceding idle window sits in
//!    `iter_batched` setup, outside the measurement. Includes the condvar
//!    signal, OS wakeup, steal (plus the exposure round trip for signal
//!    variants), and execution — the user-visible price of parking, to
//!    weigh against a busy-waiting helper's core.
//!
//! 2. **Fork-join overhead guard**: a fine-grained `fib` on an
//!    [`IdlePolicy::Adaptive`] pool versus an [`IdlePolicy::SpinOnly`]
//!    pool. Saturated workers must never reach the park stage (progress
//!    resets the ladder), so these two must track each other; adaptive
//!    drifting above spin-only means parking is leaking into the hot
//!    path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lcws_core::{join, IdlePolicy, PoolBuilder, ThreadPool, Variant};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

fn pool(variant: Variant, policy: IdlePolicy) -> ThreadPool {
    PoolBuilder::new(variant)
        .threads(2)
        .idle_policy(policy)
        .build()
}

fn bench_wakeup_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("idle_wakeup");
    g.sample_size(20);
    for variant in [Variant::Ws, Variant::Signal] {
        let pool = pool(variant, IdlePolicy::Adaptive);
        g.bench_function(format!("park_to_run/{}", variant.name()), |b| {
            pool.run(|| {
                b.iter_batched(
                    // Idle long enough for the helper to escalate through
                    // spin and yield and park (the ladder is microseconds;
                    // the park backstop is 1ms).
                    || std::thread::sleep(Duration::from_micros(600)),
                    |()| {
                        let ran_on_helper = AtomicBool::new(false);
                        join(
                            // The owner blocks (yielding, so a one-core box
                            // can schedule the woken helper) until the other
                            // branch ran — which only the helper can do.
                            || {
                                while !ran_on_helper.load(Ordering::Acquire) {
                                    std::thread::yield_now();
                                }
                            },
                            || ran_on_helper.store(true, Ordering::Release),
                        );
                    },
                    BatchSize::PerIteration,
                );
            });
        });
    }
    g.finish();
}

fn bench_fork_join_guard(c: &mut Criterion) {
    let mut g = c.benchmark_group("idle_fork_join_guard");
    g.sample_size(10);
    for (label, policy) in [
        ("adaptive", IdlePolicy::Adaptive),
        ("spin_only", IdlePolicy::SpinOnly),
    ] {
        let pool = pool(Variant::Signal, policy);
        g.bench_function(format!("fib16/{label}"), |b| {
            b.iter(|| pool.run(|| fib(std::hint::black_box(16))));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_wakeup_latency, bench_fork_join_guard
}
criterion_main!(benches);
