//! Work-exposure request cost (the paper's footnote 2: LCWS's
//! constant-time guarantee holds "up to the time that the underlying
//! Operating System takes to deliver signals").
//!
//! Two measurements:
//! 1. the full data-path round trip of an exposure request against a busy
//!    victim — request set → victim transfers one task across the split
//!    boundary → thief's steal succeeds;
//! 2. the thief-side cost of issuing a `pthread_kill` notification, which
//!    is what the signal variants add on top of (1) per request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lcws_core::{ExposurePolicy, SplitDeque};

/// Exposure request line between the measuring thread and the victim.
static EXPOSE_REQUESTED: AtomicBool = AtomicBool::new(false);

struct Victim {
    deque: Arc<SplitDeque>,
    pthread: u64,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Victim {
    /// A busy thread owning a split deque that serves exposure requests
    /// as fast as it can observe them (the handler-latency lower bound).
    fn spawn() -> Victim {
        let deque = Arc::new(SplitDeque::new(1 << 16));
        let stop = Arc::new(AtomicBool::new(false));
        let pthread_cell = Arc::new(AtomicU64::new(0));
        let (d, s, pc) = (
            Arc::clone(&deque),
            Arc::clone(&stop),
            Arc::clone(&pthread_cell),
        );
        let handle = std::thread::spawn(move || {
            pc.store(unsafe { libc::pthread_self() } as u64, Ordering::Release);
            while !s.load(Ordering::Acquire) {
                if EXPOSE_REQUESTED.swap(false, Ordering::AcqRel) {
                    d.update_public_bottom(ExposurePolicy::One);
                }
                std::hint::spin_loop();
            }
        });
        let pthread = loop {
            let p = pthread_cell.load(Ordering::Acquire);
            if p != 0 {
                break p;
            }
            std::thread::yield_now();
        };
        Victim {
            deque,
            pthread,
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Victim {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn bench_exposure_roundtrip(c: &mut Criterion) {
    let victim = Victim::spawn();
    let mut g = c.benchmark_group("exposure_request");
    g.sample_size(20);

    g.bench_function("roundtrip: request → expose → steal", |b| {
        b.iter(|| {
            victim.deque.push_bottom(0x10 as *mut _);
            EXPOSE_REQUESTED.store(true, Ordering::Release);
            loop {
                match victim.deque.pop_top() {
                    lcws_core::deque::Steal::Ok(_) => break,
                    _ => std::hint::spin_loop(),
                }
            }
        });
    });

    g.bench_function("thief-side pthread_kill issue cost", |b| {
        // sig 0 performs delivery-path validation without running a
        // handler: the marginal syscall cost a signaling thief pays.
        b.iter(|| unsafe {
            libc::pthread_kill(victim.pthread as libc::pthread_t, 0);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_exposure_roundtrip);
criterion_main!(benches);
