//! §4.1.2 "Implementation Details" ablation: rounding `r/2` inside the
//! Expose Half handler. The paper found `std::round` an order of magnitude
//! too slow and adopted a Lua-style bit trick; this bench reproduces that
//! comparison (`double2int` vs `f64::round` vs integer arithmetic).

use criterion::{criterion_group, criterion_main, Criterion};
use lcws_core::double2int;

fn bench_rounding(c: &mut Criterion) {
    let inputs: Vec<f64> = (0..4096).map(|i| i as f64 / 2.0).collect();
    let mut g = c.benchmark_group("round_half");
    g.throughput(criterion::Throughput::Elements(inputs.len() as u64));

    g.bench_function("double2int (Lua bit trick)", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &x in &inputs {
                acc += double2int(std::hint::black_box(x)) as i64;
            }
            acc
        });
    });

    g.bench_function("f64::round", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &x in &inputs {
                acc += std::hint::black_box(x).round() as i64;
            }
            acc
        });
    });

    g.bench_function("integer (r.div_ceil(2))", |b| {
        let ints: Vec<u32> = (0..4096u32).collect();
        b.iter(|| {
            let mut acc = 0u64;
            for &r in &ints {
                acc += std::hint::black_box(r).div_ceil(2) as u64;
            }
            acc
        });
    });

    g.finish();
}

criterion_group!(benches, bench_rounding);
criterion_main!(benches);
