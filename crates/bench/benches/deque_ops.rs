//! Microbenchmark for §3.2's motivation: the cost of local deque
//! operations. The split deque's `push_bottom`/`pop_bottom` are
//! synchronization-free; the ABP (WS) deque pays a seq-cst fence per
//! operation; `crossbeam-deque` (a Chase-Lev implementation) is the
//! independent industry baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lcws_core::deque::{AbpDeque, SplitDeque};
use lcws_core::PopBottomMode;

const OPS: usize = 1024;

fn bench_local_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_push_pop");
    g.throughput(criterion::Throughput::Elements(OPS as u64));

    g.bench_function("split_deque (LCWS, fence-free)", |b| {
        let d = SplitDeque::new(OPS + 1);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom(PopBottomMode::Standard));
            }
        });
    });

    g.bench_function("split_deque signal-safe pop", |b| {
        let d = SplitDeque::new(OPS + 1);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom(PopBottomMode::SignalSafe));
            }
        });
    });

    g.bench_function("abp_deque (WS, fence per op)", |b| {
        let d = AbpDeque::new(OPS + 1);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom());
            }
        });
    });

    g.bench_function("crossbeam_deque (Chase-Lev baseline)", |b| {
        let w: crossbeam_deque::Worker<usize> = crossbeam_deque::Worker::new_lifo();
        b.iter(|| {
            for i in 1..=OPS {
                w.push(i);
            }
            for _ in 0..OPS {
                std::hint::black_box(w.pop());
            }
        });
    });

    g.finish();
}

fn bench_steal_path(c: &mut Criterion) {
    // Each iteration gets a fresh deque: steals advance `top` without
    // recycling slots, so reusing one deque would overflow its array.
    let mut g = c.benchmark_group("steal_path");
    g.bench_function("split_deque expose+steal", |b| {
        b.iter_batched(
            || {
                let d = SplitDeque::new(OPS + 1);
                for i in 1..=OPS {
                    d.push_bottom(i as *mut _);
                }
                d
            },
            |d| {
                for _ in 0..OPS {
                    d.update_public_bottom(lcws_core::ExposurePolicy::One);
                    std::hint::black_box(d.pop_top());
                }
            },
            BatchSize::PerIteration,
        );
    });
    g.bench_function("abp_deque steal", |b| {
        b.iter_batched(
            || {
                let d = AbpDeque::new(OPS + 1);
                for i in 1..=OPS {
                    d.push_bottom(i as *mut _);
                }
                d
            },
            |d| {
                for _ in 0..OPS {
                    std::hint::black_box(d.pop_top());
                }
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_local_ops, bench_steal_path
}
criterion_main!(benches);
