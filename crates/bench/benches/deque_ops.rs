//! Microbenchmark for §3.2's motivation: the cost of local deque
//! operations. The split deque's `push_bottom`/`pop_bottom` are
//! synchronization-free; the ABP (WS) deque pays a seq-cst fence per
//! operation; `crossbeam-deque` (a Chase-Lev implementation) is the
//! independent industry baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lcws_core::deque::{AbpDeque, SplitDeque};
use lcws_core::PopBottomMode;

const OPS: usize = 1024;

fn bench_local_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_push_pop");
    g.throughput(criterion::Throughput::Elements(OPS as u64));

    g.bench_function("split_deque (LCWS, fence-free)", |b| {
        let d = SplitDeque::new(OPS + 1);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom(PopBottomMode::Standard));
            }
        });
    });

    g.bench_function("split_deque signal-safe pop", |b| {
        let d = SplitDeque::new(OPS + 1);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom(PopBottomMode::SignalSafe));
            }
        });
    });

    g.bench_function("abp_deque (WS, fence per op)", |b| {
        let d = AbpDeque::new(OPS + 1);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom());
            }
        });
    });

    g.bench_function("crossbeam_deque (Chase-Lev baseline)", |b| {
        let w: crossbeam_deque::Worker<usize> = crossbeam_deque::Worker::new_lifo();
        b.iter(|| {
            for i in 1..=OPS {
                w.push(i);
            }
            for _ in 0..OPS {
                std::hint::black_box(w.pop());
            }
        });
    });

    g.finish();
}

fn bench_steal_path(c: &mut Criterion) {
    // Each iteration gets a fresh deque: steals advance `top`, and a
    // reused deque never empties here (no reset), so its ring would keep
    // doubling across iterations and skew the numbers.
    let mut g = c.benchmark_group("steal_path");
    g.bench_function("split_deque expose+steal", |b| {
        b.iter_batched(
            || {
                let d = SplitDeque::new(OPS + 1);
                for i in 1..=OPS {
                    d.push_bottom(i as *mut _);
                }
                d
            },
            |d| {
                for _ in 0..OPS {
                    d.update_public_bottom(lcws_core::ExposurePolicy::One);
                    std::hint::black_box(d.pop_top());
                }
            },
            BatchSize::PerIteration,
        );
    });
    g.bench_function("abp_deque steal", |b| {
        b.iter_batched(
            || {
                let d = AbpDeque::new(OPS + 1);
                for i in 1..=OPS {
                    d.push_bottom(i as *mut _);
                }
                d
            },
            |d| {
                for _ in 0..OPS {
                    std::hint::black_box(d.pop_top());
                }
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

fn bench_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_growth");
    g.throughput(criterion::Throughput::Elements(OPS as u64));

    // Resize-heavy: a fresh capacity-4 deque per iteration pays every
    // doubling 4 → OPS inside the measured region (8 grows for OPS=1024,
    // i.e. the worst case the growable ring ever shows). This is the cost
    // the old fixed array traded for `DequeFull`.
    g.bench_function("split_deque resize-heavy (cap 4, all doublings)", |b| {
        b.iter_batched(
            || SplitDeque::new(4),
            |d| {
                for i in 1..=OPS {
                    d.push_bottom(i as *mut _);
                }
                for _ in 0..OPS {
                    std::hint::black_box(d.pop_bottom(PopBottomMode::Standard));
                }
            },
            BatchSize::PerIteration,
        );
    });
    g.bench_function("abp_deque resize-heavy (cap 4, all doublings)", |b| {
        b.iter_batched(
            || AbpDeque::new(4),
            |d| {
                for i in 1..=OPS {
                    d.push_bottom(i as *mut _);
                }
                for _ in 0..OPS {
                    std::hint::black_box(d.pop_bottom());
                }
            },
            BatchSize::PerIteration,
        );
    });

    // Steady state at the post-growth capacity: one warm-up round performs
    // all the doublings, then the measured rounds run pinned at the final
    // capacity — this must match the fixed-array numbers of
    // `local_push_pop` (the growth check is one owner-local compare).
    g.bench_function("split_deque steady-state (post-growth capacity)", |b| {
        let d = SplitDeque::new(4);
        for i in 1..=OPS {
            d.push_bottom(i as *mut _);
        }
        for _ in 0..OPS {
            d.pop_bottom(PopBottomMode::Standard);
        }
        assert!(d.capacity() >= OPS && d.generation() > 0);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom(PopBottomMode::Standard));
            }
        });
    });
    g.bench_function("abp_deque steady-state (post-growth capacity)", |b| {
        let d = AbpDeque::new(4);
        for i in 1..=OPS {
            d.push_bottom(i as *mut _);
        }
        for _ in 0..OPS {
            d.pop_bottom();
        }
        assert!(d.capacity() >= OPS && d.generation() > 0);
        b.iter(|| {
            for i in 1..=OPS {
                d.push_bottom(i as *mut _);
            }
            for _ in 0..OPS {
                std::hint::black_box(d.pop_bottom());
            }
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_local_ops, bench_steal_path, bench_growth
}
criterion_main!(benches);
