//! Scheduler-level microbenchmarks: fork-join overhead (fib) and a flat
//! parallel loop, across all five scheduler variants. The interesting
//! comparison is WS vs the LCWS variants at low worker counts — the
//! paper's multiprogrammed-environment scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcws_core::{join, par_for_grain, ThreadPool, Variant};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

fn bench_fib(c: &mut Criterion) {
    let mut g = c.benchmark_group("fib18");
    for variant in Variant::ALL {
        for threads in [1usize, 2] {
            let pool = ThreadPool::new(variant, threads);
            g.bench_with_input(
                BenchmarkId::new(variant.name(), threads),
                &threads,
                |b, _| {
                    b.iter(|| pool.run(|| std::hint::black_box(fib(18))));
                },
            );
        }
    }
    g.finish();
}

fn bench_par_for(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_for_100k");
    let n = 100_000;
    for variant in Variant::ALL {
        let pool = ThreadPool::new(variant, 2);
        g.bench_function(variant.name(), |b| {
            b.iter(|| {
                pool.run(|| {
                    par_for_grain(0..n, 256, |i| {
                        std::hint::black_box(i * i);
                    });
                })
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fib, bench_par_for
}
criterion_main!(benches);
