//! Ablation: comparison-sort algorithm choice inside the `comparisonSort`
//! benchmark — PBBS's sample sort vs the textbook parallel merge sort vs
//! `slice::sort` — all under the signal-LCWS scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use lcws_core::{ThreadPool, Variant};
use parlay_rs::random::Random;

fn input(n: usize) -> Vec<u64> {
    let r = Random::new(99);
    (0..n).map(|i| r.ith_rand(i as u64)).collect()
}

fn bench_sorts(c: &mut Criterion) {
    let n = 200_000;
    let base = input(n);
    let pool = ThreadPool::new(Variant::Signal, 2);
    let mut g = c.benchmark_group("comparison_sort_200k");
    g.sample_size(10);

    g.bench_function("sample_sort (PBBS algorithm)", |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| pool.run(|| parlay_rs::sample_sort(&mut v)),
            criterion::BatchSize::LargeInput,
        );
    });

    g.bench_function("merge_sort (parallel merge)", |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| pool.run(|| parlay_rs::sort(&mut v)),
            criterion::BatchSize::LargeInput,
        );
    });

    g.bench_function("radix_sort (integer keys)", |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| pool.run(|| parlay_rs::integer_sort(&mut v)),
            criterion::BatchSize::LargeInput,
        );
    });

    g.bench_function("std_sort_unstable (sequential)", |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| v.sort_unstable(),
            criterion::BatchSize::LargeInput,
        );
    });

    g.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
