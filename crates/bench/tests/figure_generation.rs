//! Unit tests for the report generators: feed hand-built measurements and
//! assert the derived statistics (speedups, ratios, win percentages) are
//! computed correctly — without running a real sweep.

use lcws_bench::figures;
use lcws_bench::sweep::{by_config, metric_ratios, speedups_vs_ws, Measurement};
use lcws_core::Variant;
use lcws_metrics::{Collector, Counter, Snapshot};

fn snap(fences: u64, cas: u64, steals: u64, exposures: u64, owner_pops: u64) -> Snapshot {
    let c = Collector::new();
    c.add(Counter::Fence, fences);
    c.add(Counter::Cas, cas);
    c.add(Counter::StealOk, steals);
    c.add(Counter::Exposure, exposures);
    c.add(Counter::OwnerPublicPop, owner_pops);
    c.snapshot()
}

fn m(
    bench: &str,
    input: &str,
    variant: Variant,
    threads: usize,
    secs: f64,
    metrics: Snapshot,
) -> Measurement {
    Measurement {
        benchmark: bench.into(),
        input: input.into(),
        variant,
        policies: variant.name().to_string(),
        threads,
        secs,
        secs_min: secs,
        metrics,
        checksum: 7,
    }
}

fn sample_measurements() -> Vec<Measurement> {
    vec![
        // Config A at P=2: USLCWS 25% faster than WS, 1% of the fences.
        m(
            "bfs",
            "rmat",
            Variant::Ws,
            2,
            1.00,
            snap(10_000, 500, 40, 0, 0),
        ),
        m(
            "bfs",
            "rmat",
            Variant::UsLcws,
            2,
            0.80,
            snap(100, 200, 30, 50, 20),
        ),
        m(
            "bfs",
            "rmat",
            Variant::Signal,
            2,
            0.90,
            snap(80, 180, 35, 40, 5),
        ),
        // Config B at P=2: USLCWS 20% slower.
        m(
            "sort",
            "rand",
            Variant::Ws,
            2,
            2.00,
            snap(50_000, 900, 10, 0, 0),
        ),
        m(
            "sort",
            "rand",
            Variant::UsLcws,
            2,
            2.50,
            snap(600, 300, 5, 80, 60),
        ),
        m(
            "sort",
            "rand",
            Variant::Signal,
            2,
            1.90,
            snap(500, 250, 8, 30, 3),
        ),
        // Config A at P=4.
        m(
            "bfs",
            "rmat",
            Variant::Ws,
            4,
            0.70,
            snap(12_000, 800, 90, 0, 0),
        ),
        m(
            "bfs",
            "rmat",
            Variant::UsLcws,
            4,
            0.77,
            snap(900, 500, 60, 200, 150),
        ),
        m(
            "bfs",
            "rmat",
            Variant::Signal,
            4,
            0.70,
            snap(700, 450, 80, 90, 10),
        ),
    ]
}

#[test]
fn speedups_join_on_config_and_threads() {
    let ms = sample_measurements();
    let s = speedups_vs_ws(&ms, Variant::UsLcws);
    let p2 = &s[&2];
    assert_eq!(p2.len(), 2);
    let mut sorted = p2.clone();
    sorted.sort_by(f64::total_cmp);
    assert!((sorted[0] - 0.8).abs() < 1e-12, "2.0/2.5 = 0.8");
    assert!((sorted[1] - 1.25).abs() < 1e-12, "1.0/0.8 = 1.25");
    let p4 = &s[&4];
    assert_eq!(p4.len(), 1);
    assert!((p4[0] - 0.70 / 0.77).abs() < 1e-12);
}

#[test]
fn metric_ratios_match_hand_computation() {
    let ms = sample_measurements();
    let r = metric_ratios(&ms, Variant::UsLcws, Variant::Ws, Counter::Fence);
    let mut p2 = r[&2].clone();
    p2.sort_by(f64::total_cmp);
    assert!((p2[0] - 100.0 / 10_000.0).abs() < 1e-12);
    assert!((p2[1] - 600.0 / 50_000.0).abs() < 1e-12);
}

#[test]
fn by_config_groups_variants() {
    let ms = sample_measurements();
    let idx = by_config(&ms);
    let entry = &idx[&("bfs/rmat".to_string(), 2)];
    assert_eq!(entry.len(), 3);
    assert!(entry.contains_key(&Variant::Ws));
    assert!(entry.contains_key(&Variant::Signal));
}

#[test]
fn reports_render_without_panicking_and_mention_key_numbers() {
    let ms = sample_measurements();
    std::env::set_current_dir(std::env::temp_dir()).unwrap();
    let f3 = figures::fig3(&ms).render();
    assert!(f3.contains("(a)"), "{f3}");
    let f4 = figures::fig4(&ms).render();
    assert!(f4.contains("P=2"), "{f4}");
    let f5 = figures::fig5(&ms).render();
    assert!(f5.contains("geomean"));
    let f6 = figures::fig6(&ms).render();
    // USLCWS wins 1 of 2 configs at P=2 → 50%.
    assert!(f6.contains("50.0%"), "{f6}");
    let f7 = figures::fig7(&ms).render();
    assert!(f7.contains("speedup"));
    let f8 = figures::fig8(&ms).render();
    assert!(f8.contains("(e)"));
    let s51 = figures::stats51(&ms).render();
    assert!(s51.contains("best"));
    let s52 = figures::stats52(&ms).render();
    assert!(s52.contains("≥ 1.05"));
    let s54 = figures::stats54(&ms).render();
    assert!(s54.contains("fastest"));
}

#[test]
fn stats54_counts_wins_correctly() {
    let ms = sample_measurements();
    let rendered = figures::stats54(&ms).render();
    // Signal is fastest for sort/rand@2 (1.90) and ties-at-min for
    // bfs/rmat@4 (0.70, min_by keeps the first strictly-smaller, so WS or
    // Signal depending on iteration order) — at minimum Signal wins once.
    assert!(rendered.contains("Signal"), "{rendered}");
}

#[test]
fn raw_csv_has_row_per_measurement() {
    let ms = sample_measurements();
    let (header, rows) = figures::raw_csv(&ms);
    assert_eq!(rows.len(), ms.len());
    assert_eq!(
        header.split(',').count(),
        rows[0].split(',').count(),
        "header/row arity"
    );
}
