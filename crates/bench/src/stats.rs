//! Statistics used by the figure reports: box-plot five-number summaries
//! (the paper's box plots, rendered as text) and simple aggregates.

/// Five-number summary + mean, matching what the paper's box plots show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Compute the summary of `values` (empty input yields all-NaN stats
    /// with `n == 0`).
    pub fn of(values: &[f64]) -> BoxStats {
        let n = values.len();
        if n == 0 {
            return BoxStats {
                min: f64::NAN,
                q1: f64::NAN,
                median: f64::NAN,
                q3: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
                n: 0,
            };
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        BoxStats {
            min: v[0],
            q1: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q3: quantile(&v, 0.75),
            max: v[n - 1],
            mean: v.iter().sum::<f64>() / n as f64,
            n,
        }
    }

    /// One-line rendering used in the figure tables.
    pub fn row(&self) -> String {
        format!(
            "min {:6.3}  q1 {:6.3}  med {:6.3}  q3 {:6.3}  max {:6.3}  mean {:6.3}  (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.n
        )
    }

    /// CSV fields matching [`BoxStats::csv_header`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.n
        )
    }

    /// CSV header for [`BoxStats::csv_row`].
    pub fn csv_header() -> &'static str {
        "min,q1,median,q3,max,mean,n"
    }
}

/// Linear-interpolated quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Geometric mean (used for "average speedup" summaries, robust to
/// reciprocal asymmetry).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Fraction of values strictly above `threshold`.
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_known_values() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn box_stats_single_and_empty() {
        let one = BoxStats::of(&[7.0]);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.q1, 7.0);
        let none = BoxStats::of(&[]);
        assert_eq!(none.n, 0);
        assert!(none.median.is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.25), 2.5);
        assert_eq!(quantile(&v, 0.5), 5.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_above_counts_strictly() {
        assert_eq!(fraction_above(&[0.9, 1.0, 1.1, 1.2], 1.0), 0.5);
    }
}
