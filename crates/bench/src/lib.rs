//! # lcws-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§3.3, §5):
//! one binary per artifact (`table1`, `fig3` … `fig8`, `stats51`,
//! `stats52`, `stats54`, `all`), all built on the shared [`sweep`] runner
//! that executes every PBBS benchmark configuration ⟨benchmark, input, P⟩
//! under each scheduler variant, collecting wall times and synchronization
//! profiles.
//!
//! Text reports go to stdout; machine-readable CSVs go to `results/`.

#![deny(missing_docs)]

pub mod figures;
pub mod machine;
pub mod report;
pub mod stats;
pub mod sweep;

pub use report::Report;
pub use stats::BoxStats;
pub use sweep::{sweep, Composition, Measurement, SweepConfig};
