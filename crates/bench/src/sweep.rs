//! The shared experiment runner: executes benchmark configurations
//! ⟨benchmark, input, P⟩ under selected scheduler variants.

use std::collections::HashMap;
use std::time::Duration;

use lcws_core::{
    IdlePolicy, Policies, PoolBuilder, Snapshot, StealAmount, ThreadPool, Variant, VictimSelection,
};
use pbbs_rs::registry::{all_instances, Instance};

/// One named scheduler composition: a base variant plus policy-axis
/// overrides from the composable layer (DESIGN.md §5h). A plain variant is
/// the composition `Composition::of(v)` whose label is `v.name()`, so the
/// default sweep CSVs are unchanged except for the extra `policies`
/// column.
#[derive(Debug, Clone)]
pub struct Composition {
    /// CSV/report label (`signal+near-first+steal-half` style).
    pub label: String,
    /// Base variant (keys the speedup/ratio joins).
    pub variant: Variant,
    /// The full policy bundle the pool is built with.
    pub policies: Policies,
}

impl Composition {
    /// The plain composition of a named variant.
    pub fn of(variant: Variant) -> Composition {
        Composition {
            label: variant.name().to_string(),
            variant,
            policies: variant.policies(),
        }
    }

    /// Parse a `variant[+modifier...]` spec. Modifiers: `near-first` /
    /// `uniform` (victim axis), `steal-half` / `steal-one` (amount axis),
    /// `spin-only` / `adaptive` (idle axis). The resulting bundle is
    /// validated — impossible pairings (e.g. `ws+steal-half`: ABP has no
    /// batch CAS) are rejected here rather than panicking at build time.
    pub fn parse(spec: &str) -> Result<Composition, String> {
        let mut parts = spec.split('+');
        let base = parts.next().unwrap_or_default();
        let variant: Variant = base
            .parse()
            .map_err(|_| format!("unknown variant `{base}` in composition `{spec}`"))?;
        let mut policies = variant.policies();
        for m in parts {
            match m {
                "near-first" => policies.victim = VictimSelection::NearFirst,
                "uniform" => policies.victim = VictimSelection::Uniform,
                "steal-half" => policies.steal = StealAmount::Half,
                "steal-one" => policies.steal = StealAmount::One,
                "spin-only" => policies.idle = IdlePolicy::SpinOnly,
                "adaptive" => policies.idle = IdlePolicy::Adaptive,
                other => {
                    return Err(format!("unknown policy modifier `{other}` in `{spec}`"));
                }
            }
        }
        policies
            .validate()
            .map_err(|e| format!("composition `{spec}` is unsound: {e}"))?;
        Ok(Composition {
            label: spec.to_string(),
            variant,
            policies,
        })
    }
}

/// What to run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Scheduler variants to execute (WS is required by speedup reports).
    pub variants: Vec<Variant>,
    /// Extra policy compositions to run *in addition to* `variants`
    /// (empty by default; `--compositions` on the CLI). Each appears in
    /// the sweep output as its own row, keyed by its label.
    pub compositions: Vec<Composition>,
    /// Worker counts (the paper's processor axis).
    pub threads: Vec<usize>,
    /// Repetitions per configuration (paper: 10; default here: 3).
    pub reps: usize,
    /// Case-insensitive substring filter on `benchmark/input` labels.
    pub filter: Option<String>,
    /// Run each instance's checker once before measuring.
    pub verify: bool,
    /// Print progress lines to stderr.
    pub progress: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            variants: Variant::ALL.to_vec(),
            compositions: Vec::new(),
            threads: vec![1, 2, 4, 8],
            reps: 3,
            filter: None,
            verify: false,
            progress: true,
        }
    }
}

impl SweepConfig {
    /// Parse CLI arguments:
    /// `--variants ws,signal --threads 1,2,4 --reps 3 --scale 0.25
    ///  --filter bfs --verify --quiet`.
    ///
    /// `--scale` sets `LCWS_SCALE` for the input generators.
    pub fn from_args() -> SweepConfig {
        Self::from_args_with_default_variants("ws,uslcws,signal,cons,half")
    }

    /// [`SweepConfig::from_args`] with a figure-specific default variant
    /// set (used when `--variants` is not passed).
    pub fn from_args_with_default_variants(default_variants: &str) -> SweepConfig {
        let mut cfg = SweepConfig {
            variants: default_variants
                .split(',')
                .map(|s| s.parse().expect("bad default variant"))
                .collect(),
            ..SweepConfig::default()
        };
        let mut args = std::env::args().skip(1);
        // Default scale for figure regeneration: keep laptop-friendly
        // unless the caller overrides.
        if std::env::var("LCWS_SCALE").is_err() {
            std::env::set_var("LCWS_SCALE", "0.25");
        }
        while let Some(a) = args.next() {
            let mut take = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
            match a.as_str() {
                "--variants" => {
                    cfg.variants = take()
                        .split(',')
                        .map(|s| s.parse().expect("bad variant"))
                        .collect();
                }
                "--compositions" => {
                    cfg.compositions = take()
                        .split(',')
                        .map(|s| Composition::parse(s).unwrap_or_else(|e| panic!("{e}")))
                        .collect();
                }
                "--threads" => {
                    cfg.threads = take()
                        .split(',')
                        .map(|s| s.parse().expect("bad thread count"))
                        .collect();
                }
                "--reps" => cfg.reps = take().parse().expect("bad reps"),
                "--scale" => std::env::set_var("LCWS_SCALE", take()),
                "--filter" => cfg.filter = Some(take().to_ascii_lowercase()),
                "--verify" => cfg.verify = true,
                "--quiet" => cfg.progress = false,
                "--help" | "-h" => {
                    eprintln!(
                        "options: --variants a,b \
                         --compositions signal+near-first+steal-half,... \
                         --threads 1,2,4 --reps N --scale F --filter SUBSTR \
                         --verify --quiet"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}"),
            }
        }
        cfg
    }
}

/// One configuration's aggregate measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Input instance name.
    pub input: String,
    /// Scheduler variant.
    pub variant: Variant,
    /// Policy-composition label (`variant.name()` for plain variants;
    /// `signal+near-first` style for explicit compositions).
    pub policies: String,
    /// Worker count.
    pub threads: usize,
    /// Mean wall-clock seconds over the repetitions.
    pub secs: f64,
    /// Minimum seconds over the repetitions.
    pub secs_min: f64,
    /// Synchronization profile, summed over the repetitions.
    pub metrics: Snapshot,
    /// Output digest (deterministic benchmarks digest identically across
    /// variants and thread counts).
    pub checksum: u64,
}

impl Measurement {
    /// `benchmark/input` label.
    pub fn label(&self) -> String {
        format!("{}/{}", self.benchmark, self.input)
    }
}

/// Key for joining measurements across variants.
pub type ConfigKey = (String, usize);

/// Execute the sweep. Returns one [`Measurement`] per
/// (instance × variant × thread-count).
pub fn sweep(cfg: &SweepConfig) -> Vec<Measurement> {
    let instances: Vec<Instance> = all_instances()
        .into_iter()
        .filter(|i| match &cfg.filter {
            Some(f) => i.label().to_ascii_lowercase().contains(f),
            None => true,
        })
        .collect();
    assert!(!instances.is_empty(), "filter matched no instances");
    let mut out = Vec::new();
    let mut checksum_by_config: HashMap<String, u64> = HashMap::new();
    for inst in &instances {
        if cfg.progress {
            eprintln!("[prepare] {}", inst.label());
        }
        let prepared = inst.prepare();
        if cfg.verify {
            let pool = ThreadPool::new(Variant::Ws, cfg.threads.iter().copied().max().unwrap());
            let result = pool.run(|| prepared.verify());
            if let Err(e) = result {
                panic!("{} failed verification: {e}", inst.label());
            }
        }
        let compositions: Vec<Composition> = cfg
            .variants
            .iter()
            .map(|&v| Composition::of(v))
            .chain(cfg.compositions.iter().cloned())
            .collect();
        for comp in &compositions {
            let variant = comp.variant;
            for &threads in &cfg.threads {
                let pool = PoolBuilder::new(variant)
                    .policies(comp.policies)
                    .threads(threads)
                    .build();
                // One untimed warmup, then the measured repetitions.
                let _ = pool.run(|| prepared.run_parallel());
                let mut total = Duration::ZERO;
                let mut best = Duration::MAX;
                let mut metrics = Snapshot::default();
                let mut checksum = 0u64;
                for _ in 0..cfg.reps {
                    let (outcome, m) = pool.run_measured(|| prepared.run_parallel());
                    total += outcome.elapsed;
                    best = best.min(outcome.elapsed);
                    metrics = metrics.merged(&m);
                    checksum = outcome.checksum;
                }
                // Deterministic-output sanity: all variants and thread
                // counts must agree per instance.
                let entry = checksum_by_config.entry(inst.label()).or_insert(checksum);
                if *entry != checksum {
                    eprintln!(
                        "WARNING: {} produced differing checksums across runs \
                         ({:#x} vs {:#x}) — investigate determinism",
                        inst.label(),
                        entry,
                        checksum
                    );
                }
                if cfg.progress {
                    eprintln!(
                        "[run] {:<42} {:<7} P={:<3} {:>9.2} ms",
                        inst.label(),
                        comp.label,
                        threads,
                        total.as_secs_f64() * 1e3 / cfg.reps as f64
                    );
                }
                out.push(Measurement {
                    benchmark: inst.benchmark.to_string(),
                    input: inst.input.to_string(),
                    variant,
                    policies: comp.label.clone(),
                    threads,
                    secs: total.as_secs_f64() / cfg.reps as f64,
                    secs_min: best.as_secs_f64(),
                    metrics,
                    checksum,
                });
            }
        }
    }
    out
}

/// Index measurements as `(label, threads) → variant → measurement`.
///
/// Only plain-variant rows participate: explicit policy compositions share
/// a base variant with the plain row and would silently overwrite it in
/// the per-variant join the figures consume. Composition rows still reach
/// the raw CSV dump via their `policies` label.
pub fn by_config(ms: &[Measurement]) -> HashMap<ConfigKey, HashMap<Variant, &Measurement>> {
    let mut map: HashMap<ConfigKey, HashMap<Variant, &Measurement>> = HashMap::new();
    for m in ms.iter().filter(|m| m.policies == m.variant.name()) {
        map.entry((m.label(), m.threads))
            .or_default()
            .insert(m.variant, m);
    }
    map
}

/// Speedups of `variant` vs the WS baseline, grouped by thread count:
/// `threads → [t_ws / t_variant]` over all configurations.
pub fn speedups_vs_ws(
    ms: &[Measurement],
    variant: Variant,
) -> std::collections::BTreeMap<usize, Vec<f64>> {
    let idx = by_config(ms);
    let mut out: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    for ((_label, threads), variants) in &idx {
        if let (Some(ws), Some(v)) = (variants.get(&Variant::Ws), variants.get(&variant)) {
            if v.secs > 0.0 {
                out.entry(*threads).or_default().push(ws.secs / v.secs);
            }
        }
    }
    out
}

/// Ratio of a metric counter between two variants per thread count:
/// `threads → [variant_count / base_count]` over all configurations
/// (configurations where the base count is zero are skipped).
pub fn metric_ratios(
    ms: &[Measurement],
    variant: Variant,
    base: Variant,
    counter: lcws_core::Counter,
) -> std::collections::BTreeMap<usize, Vec<f64>> {
    let idx = by_config(ms);
    let mut out: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    for ((_label, threads), variants) in &idx {
        if let (Some(b), Some(v)) = (variants.get(&base), variants.get(&variant)) {
            if let Some(r) = v.metrics.ratio(&b.metrics, counter) {
                out.entry(*threads).or_default().push(r);
            }
        }
    }
    out
}

/// Per-configuration fraction of exposed tasks not stolen, per thread
/// count, for one variant (Figures 3d / 8d).
pub fn unstolen_fractions(
    ms: &[Measurement],
    variant: Variant,
) -> std::collections::BTreeMap<usize, Vec<f64>> {
    let mut out: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    for m in ms
        .iter()
        .filter(|m| m.variant == variant && m.policies == m.variant.name())
    {
        if let Some(f) = m.metrics.unstolen_exposure_ratio() {
            out.entry(m.threads).or_default().push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositions_parse_modifiers_and_reject_unsound_points() {
        let c = Composition::parse("signal+near-first+steal-half").unwrap();
        assert_eq!(c.variant, Variant::Signal);
        assert_eq!(c.policies.victim, VictimSelection::NearFirst);
        assert_eq!(c.policies.steal, StealAmount::Half);
        assert_eq!(c.label, "signal+near-first+steal-half");

        // Plain compositions match the variant bundle exactly.
        let plain = Composition::of(Variant::SignalHalf);
        assert_eq!(plain.label, "half");
        assert_eq!(plain.policies, Variant::SignalHalf.policies());

        // ABP has no batch-CAS protocol; the parse rejects it with the
        // PolicyError text instead of panicking at pool build.
        let err = Composition::parse("ws+steal-half").unwrap_err();
        assert!(err.contains("unsound"), "{err}");
        assert!(Composition::parse("signal+bogus").is_err());
        assert!(Composition::parse("notavariant").is_err());
    }
}
