//! Report generators: one function per paper artifact, each turning a set
//! of [`crate::Measurement`]s into the corresponding table/figure report.
//!
//! Splitting generation from sweeping lets the `all` binary run a single
//! sweep and derive every artifact from the same data (cheaper and more
//! internally consistent than per-figure sweeps).

use lcws_core::{Counter, Variant};

use crate::report::Report;
use crate::stats::{fraction_above, geomean, BoxStats};
use crate::sweep::{by_config, metric_ratios, speedups_vs_ws, unstolen_fractions, Measurement};

fn box_section(
    report: &mut Report,
    csv_name: &str,
    heading: &str,
    data: &std::collections::BTreeMap<usize, Vec<f64>>,
) {
    report.section(heading);
    let mut rows = Vec::new();
    for (p, values) in data {
        let s = BoxStats::of(values);
        report.line(format!("P={p:<3} {}", s.row()));
        rows.push(format!("{p},{}", s.csv_row()));
    }
    report.csv(
        csv_name,
        &format!("threads,{}", BoxStats::csv_header()),
        &rows,
    );
}

/// Figure 3: profile of USLCWS against WS (fence ratio, CAS ratio,
/// successful-steal ratio, % exposed-but-unstolen), box plots over all
/// benchmark configurations per processor count.
pub fn fig3(ms: &[Measurement]) -> Report {
    let mut r = Report::new("Figure 3 — Profile of USLCWS vs WS across all PBBS configurations");
    box_section(
        &mut r,
        "fig3a_fence_ratio",
        "(a) USLCWS memory fences / WS memory fences",
        &metric_ratios(ms, Variant::UsLcws, Variant::Ws, Counter::Fence),
    );
    box_section(
        &mut r,
        "fig3b_cas_ratio",
        "(b) USLCWS CAS / WS CAS",
        &metric_ratios(ms, Variant::UsLcws, Variant::Ws, Counter::Cas),
    );
    box_section(
        &mut r,
        "fig3c_steal_ratio",
        "(c) successful steals USLCWS / successful steals WS",
        &metric_ratios(ms, Variant::UsLcws, Variant::Ws, Counter::StealOk),
    );
    box_section(
        &mut r,
        "fig3d_unstolen",
        "(d) fraction of exposed work not stolen in USLCWS",
        &unstolen_fractions(ms, Variant::UsLcws),
    );
    r
}

/// Figure 4: box plots of the speedup of USLCWS w.r.t. WS per processor
/// count.
pub fn fig4(ms: &[Measurement]) -> Report {
    let mut r = Report::new("Figure 4 — Speedup of USLCWS wrt WS (box plots per P)");
    box_section(
        &mut r,
        "fig4_uslcws_speedup",
        "speedup t_WS / t_USLCWS over all benchmark configurations",
        &speedups_vs_ws(ms, Variant::UsLcws),
    );
    r
}

/// Figure 5: average speedups of every LCWS variant w.r.t. WS per
/// processor count.
pub fn fig5(ms: &[Measurement]) -> Report {
    let mut r = Report::new("Figure 5 — Average speedups wrt WS per P");
    let mut rows = Vec::new();
    for variant in Variant::LCWS_ALL {
        r.section(&format!("{} (geometric mean of speedups)", variant.label()));
        for (p, values) in speedups_vs_ws(ms, variant) {
            let g = geomean(&values);
            let a = values.iter().sum::<f64>() / values.len() as f64;
            r.line(format!(
                "P={p:<3} geomean {g:6.4}  arith-mean {a:6.4}  (n={})",
                values.len()
            ));
            rows.push(format!("{},{p},{g},{a},{}", variant.name(), values.len()));
        }
    }
    r.csv(
        "fig5_avg_speedups",
        "variant,threads,geomean,arith_mean,n",
        &rows,
    );
    r
}

/// Figure 6: percentage of benchmark configurations with speedup > 1 per
/// variant per processor count.
pub fn fig6(ms: &[Measurement]) -> Report {
    let mut r = Report::new("Figure 6 — % of configurations with speedup > 1");
    let mut rows = Vec::new();
    for variant in Variant::LCWS_ALL {
        r.section(variant.label());
        for (p, values) in speedups_vs_ws(ms, variant) {
            let f = fraction_above(&values, 1.0) * 100.0;
            r.line(format!(
                "P={p:<3} {f:5.1}% of {} configurations",
                values.len()
            ));
            rows.push(format!("{},{p},{f:.2},{}", variant.name(), values.len()));
        }
    }
    r.csv("fig6_pct_wins", "variant,threads,pct_speedup_gt1,n", &rows);
    r
}

/// Figure 7: box plots of the speedup of signal-based LCWS w.r.t. WS.
pub fn fig7(ms: &[Measurement]) -> Report {
    let mut r = Report::new("Figure 7 — Speedup of signal-based LCWS wrt WS (box plots per P)");
    box_section(
        &mut r,
        "fig7_signal_speedup",
        "speedup t_WS / t_Signal over all benchmark configurations",
        &speedups_vs_ws(ms, Variant::Signal),
    );
    r
}

/// Figure 8: profile of signal-based LCWS — (a–d) against WS, (e–h)
/// against USLCWS.
pub fn fig8(ms: &[Measurement]) -> Report {
    let mut r = Report::new("Figure 8 — Profile of signal-based LCWS");
    box_section(
        &mut r,
        "fig8a_fence_ratio_ws",
        "(a) Signal memory fences / WS memory fences",
        &metric_ratios(ms, Variant::Signal, Variant::Ws, Counter::Fence),
    );
    box_section(
        &mut r,
        "fig8b_cas_ratio_ws",
        "(b) Signal CAS / WS CAS",
        &metric_ratios(ms, Variant::Signal, Variant::Ws, Counter::Cas),
    );
    box_section(
        &mut r,
        "fig8c_steals_ratio_ws",
        "(c) Signal successful steals / WS successful steals",
        &metric_ratios(ms, Variant::Signal, Variant::Ws, Counter::StealOk),
    );
    box_section(
        &mut r,
        "fig8d_unstolen",
        "(d) fraction of exposed work not stolen (Signal)",
        &unstolen_fractions(ms, Variant::Signal),
    );
    box_section(
        &mut r,
        "fig8e_fence_ratio_uslcws",
        "(e) Signal memory fences / USLCWS memory fences",
        &metric_ratios(ms, Variant::Signal, Variant::UsLcws, Counter::Fence),
    );
    box_section(
        &mut r,
        "fig8f_cas_ratio_uslcws",
        "(f) Signal CAS / USLCWS CAS",
        &metric_ratios(ms, Variant::Signal, Variant::UsLcws, Counter::Cas),
    );
    box_section(
        &mut r,
        "fig8g_steals_ratio_uslcws",
        "(g) Signal successful steals / USLCWS successful steals",
        &metric_ratios(ms, Variant::Signal, Variant::UsLcws, Counter::StealOk),
    );
    // (h): unstolen-exposure ratio Signal / USLCWS per configuration.
    {
        let idx = by_config(ms);
        let mut data: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
        for ((_l, p), variants) in &idx {
            if let (Some(s), Some(u)) = (
                variants.get(&Variant::Signal),
                variants.get(&Variant::UsLcws),
            ) {
                if let (Some(fs), Some(fu)) = (
                    s.metrics.unstolen_exposure_ratio(),
                    u.metrics.unstolen_exposure_ratio(),
                ) {
                    if fu > 0.0 {
                        data.entry(*p).or_default().push(fs / fu);
                    }
                }
            }
        }
        box_section(
            &mut r,
            "fig8h_unstolen_ratio_uslcws",
            "(h) Signal unstolen fraction / USLCWS unstolen fraction",
            &data,
        );
    }
    r
}

/// §5.1 statistics: USLCWS vs WS — overall average gain, plus the best and
/// worst configuration per benchmark.
pub fn stats51(ms: &[Measurement]) -> Report {
    let mut r = Report::new("§5.1 — User-Space LCWS versus Work Stealing");
    per_variant_extremes(&mut r, ms, Variant::UsLcws, "stats51_uslcws");
    r
}

/// §5.2 statistics: signal-based LCWS vs WS — fraction of executions with
/// speedup > 1 and with gains ≥ 5/10/15/20%.
pub fn stats52(ms: &[Measurement]) -> Report {
    let mut r = Report::new("§5.2 — Signal-Based LCWS versus Work Stealing");
    let all: Vec<f64> = speedups_vs_ws(ms, Variant::Signal)
        .into_values()
        .flatten()
        .collect();
    r.section("share of benchmark executions with speedup above threshold");
    let mut rows = Vec::new();
    for (label, thr) in [
        ("> 1.00", 1.0),
        ("≥ 1.05", 1.05),
        ("≥ 1.10", 1.10),
        ("≥ 1.15", 1.15),
        ("≥ 1.20", 1.20),
    ] {
        let f = fraction_above(&all, thr - 1e-12) * 100.0;
        r.line(format!(
            "speedup {label}: {f:5.1}% of {} executions",
            all.len()
        ));
        rows.push(format!("{thr},{f:.2},{}", all.len()));
    }
    r.csv("stats52_signal_thresholds", "threshold,pct,n", &rows);
    per_variant_extremes(&mut r, ms, Variant::Signal, "stats52_signal");
    r
}

/// §5.4 statistics: which variant is the best option per configuration;
/// Expose Half extremes.
pub fn stats54(ms: &[Measurement]) -> Report {
    let mut r = Report::new("§5.4 — Conservative Exposure and Expose Half");
    let idx = by_config(ms);
    let mut wins: std::collections::HashMap<Variant, usize> = Default::default();
    let mut total = 0usize;
    for variants in idx.values() {
        let best = variants
            .values()
            .min_by(|a, b| a.secs.total_cmp(&b.secs))
            .map(|m| m.variant);
        if let Some(v) = best {
            *wins.entry(v).or_default() += 1;
            total += 1;
        }
    }
    r.section("share of configurations where each scheduler is fastest");
    let mut rows = Vec::new();
    for v in Variant::ALL {
        let w = wins.get(&v).copied().unwrap_or(0);
        let pct = 100.0 * w as f64 / total.max(1) as f64;
        r.line(format!("{:<7} {pct:5.1}%  ({w}/{total})", v.label()));
        rows.push(format!("{},{w},{total},{pct:.2}", v.name()));
    }
    r.csv("stats54_best_option", "variant,wins,total,pct", &rows);
    per_variant_extremes(&mut r, ms, Variant::SignalHalf, "stats54_half");
    per_variant_extremes(&mut r, ms, Variant::SignalConservative, "stats54_cons");
    r
}

/// Shared: overall average gain + per-benchmark best/worst configurations
/// for one variant vs WS.
fn per_variant_extremes(r: &mut Report, ms: &[Measurement], variant: Variant, csv: &str) {
    let idx = by_config(ms);
    // (benchmark → Vec<(speedup, input, threads)>)
    let mut per_bench: std::collections::BTreeMap<String, Vec<(f64, String, usize)>> =
        Default::default();
    for ((label, threads), variants) in &idx {
        if let (Some(ws), Some(v)) = (variants.get(&Variant::Ws), variants.get(&variant)) {
            if v.secs > 0.0 {
                let bench = label.split('/').next().unwrap_or(label).to_string();
                per_bench.entry(bench).or_default().push((
                    ws.secs / v.secs,
                    label.clone(),
                    *threads,
                ));
            }
        }
    }
    let all: Vec<f64> = per_bench.values().flatten().map(|(s, _, _)| *s).collect();
    r.section(&format!(
        "{} vs WS: overall speedup geomean {:.4} over {} executions",
        variant.label(),
        geomean(&all),
        all.len()
    ));
    r.section(&format!(
        "{}: best / worst configuration per benchmark",
        variant.label()
    ));
    let mut rows = Vec::new();
    for (bench, entries) in &per_bench {
        let best = entries.iter().max_by(|a, b| a.0.total_cmp(&b.0)).unwrap();
        let worst = entries.iter().min_by(|a, b| a.0.total_cmp(&b.0)).unwrap();
        r.line(format!(
            "{bench:<26} best {:+6.1}% ({}, P={})   worst {:+6.1}% ({}, P={})",
            (best.0 - 1.0) * 100.0,
            best.1,
            best.2,
            (worst.0 - 1.0) * 100.0,
            worst.1,
            worst.2,
        ));
        rows.push(format!(
            "{bench},{:.4},{},{},{:.4},{},{}",
            best.0, best.1, best.2, worst.0, worst.1, worst.2
        ));
    }
    r.csv(
        csv,
        "benchmark,best_speedup,best_config,best_p,worst_speedup,worst_config,worst_p",
        &rows,
    );
}

/// Raw dump of every measurement (written by the `all` binary for
/// post-hoc analysis).
pub fn raw_csv(ms: &[Measurement]) -> (String, Vec<String>) {
    let header = format!(
        "benchmark,input,variant,policies,threads,secs_mean,secs_min,checksum,{}",
        lcws_core::Snapshot::csv_header()
    );
    let rows = ms
        .iter()
        .map(|m| {
            format!(
                "{},{},{},{},{},{},{},{:#x},{}",
                m.benchmark,
                m.input,
                m.variant.name(),
                m.policies,
                m.threads,
                m.secs,
                m.secs_min,
                m.checksum,
                m.metrics.to_csv_row()
            )
        })
        .collect();
    (header, rows)
}
