//! Regenerates the paper's stats52 from a live sweep.
//! Default variants: ws,signal; override with --variants/--threads/--reps/--scale.

fn main() {
    let cfg = lcws_bench::SweepConfig::from_args_with_default_variants("ws,signal");
    let ms = lcws_bench::sweep(&cfg);
    lcws_bench::figures::stats52(&ms).print();
}
