//! Signal-delivery latency histogram from the `lcws-trace` layer.
//!
//! Runs fine-grained fork-join workloads on the `signal` variant with
//! per-worker event rings enabled, pairs every thief-side `signal_send`
//! with the victim's `handler_entry` (see `lcws_core::Trace`), and reduces
//! the paired latencies to a log₂-bucket histogram — the paper's §4
//! "constant time, up to OS signal-delivery latency" claim, measured.
//!
//! Artifacts:
//! * `results/siglat_hist.csv` — `bucket_lo_ns,bucket_hi_ns,count`
//! * `results/trace_siglat.json` — Chrome trace-event JSON of the densest
//!   run (load in chrome://tracing or Perfetto)
//!
//! Requires `--features trace` (the binary is feature-gated in Cargo.toml):
//! `cargo run --release -p lcws-bench --features trace --bin siglat`
//!
//! Options: `--threads N --samples N --rounds N --n N --grain N`

use std::sync::atomic::{AtomicU64, Ordering};

use lcws_core::{par_for_grain, EventKind, PoolBuilder, Trace, Variant};

struct Config {
    threads: usize,
    /// Stop once this many latency samples are collected …
    samples: usize,
    /// … or after this many pool runs, whichever comes first.
    rounds: usize,
    n: usize,
    grain: usize,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8),
        samples: 1_000,
        rounds: 200,
        n: 1 << 16,
        grain: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = || {
            args.next()
                .unwrap_or_else(|| panic!("{a} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{a} needs a number"))
        };
        match a.as_str() {
            "--threads" => cfg.threads = take().max(2),
            "--samples" => cfg.samples = take(),
            "--rounds" => cfg.rounds = take().max(1),
            "--n" => cfg.n = take(),
            "--grain" => cfg.grain = take().max(1),
            "--help" | "-h" => {
                eprintln!("options: --threads N --samples N --rounds N --n N --grain N");
                std::process::exit(0);
            }
            other => panic!("unknown option {other}"),
        }
    }
    cfg
}

/// Log₂ histogram: bucket k counts latencies in `[2^k, 2^{k+1})` ns
/// (bucket 0 also holds exact zeros).
fn histogram(latencies: &[u64]) -> Vec<(u64, u64, usize)> {
    let bucket_of = |ns: u64| 64 - ns.max(1).leading_zeros() as usize - 1;
    let lo_bucket = latencies.iter().map(|&ns| bucket_of(ns)).min().unwrap_or(0);
    let hi_bucket = latencies.iter().map(|&ns| bucket_of(ns)).max().unwrap_or(0);
    let mut counts = vec![0usize; hi_bucket - lo_bucket + 1];
    for &ns in latencies {
        counts[bucket_of(ns) - lo_bucket] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let k = lo_bucket + i;
            (1u64 << k, 1u64 << (k + 1), c)
        })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let cfg = parse_args();
    let pool = PoolBuilder::new(Variant::Signal)
        .threads(cfg.threads)
        .build();

    let mut latencies: Vec<u64> = Vec::new();
    let mut best_trace: Option<Trace> = None;
    let mut best_signal_events = 0usize;
    let mut rounds_used = 0usize;
    for _ in 0..cfg.rounds {
        rounds_used += 1;
        let sum = AtomicU64::new(0);
        pool.run(|| {
            par_for_grain(0..cfg.n, cfg.grain, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(
            sum.load(Ordering::Relaxed),
            (cfg.n as u64 - 1) * cfg.n as u64 / 2,
            "workload result corrupted"
        );
        let trace = pool.take_trace().expect("traced run must leave a trace");
        latencies.extend(trace.signal_latencies_ns());
        let signal_events = trace.of_kind(EventKind::SignalSend).count()
            + trace.of_kind(EventKind::HandlerEntry).count();
        if signal_events >= best_signal_events {
            best_signal_events = signal_events;
            best_trace = Some(trace);
        }
        if latencies.len() >= cfg.samples {
            break;
        }
    }

    let mut report = lcws_bench::Report::new("Signal-delivery latency (lcws-trace)");
    report.section("setup");
    report.line(format!(
        "variant=signal threads={} n={} grain={} rounds={rounds_used} samples={}",
        cfg.threads,
        cfg.n,
        cfg.grain,
        latencies.len(),
    ));

    if latencies.is_empty() {
        report.section("result");
        report.line("no signal_send/handler_entry pair observed — nothing to histogram");
        report.print();
        std::process::exit(1);
    }

    latencies.sort_unstable();
    report.section("latency (ns)");
    report.line(format!(
        "min={} p50={} p90={} p99={} max={}",
        latencies[0],
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        latencies[latencies.len() - 1],
    ));

    let hist = histogram(&latencies);
    report.section("histogram (log2 buckets)");
    let peak = hist.iter().map(|&(_, _, c)| c).max().unwrap_or(1).max(1);
    for &(lo, hi, count) in &hist {
        report.line(format!(
            "[{lo:>9}, {hi:>9}) {count:>6} {}",
            "#".repeat(count * 40 / peak)
        ));
    }
    report.csv(
        "siglat_hist",
        "bucket_lo_ns,bucket_hi_ns,count",
        &hist
            .iter()
            .map(|&(lo, hi, count)| format!("{lo},{hi},{count}"))
            .collect::<Vec<_>>(),
    );

    let trace = best_trace.expect("at least one round ran");
    report.section("trace export");
    report.line(format!(
        "densest run: {} events from {} workers ({} dropped)",
        trace.events.len(),
        trace.workers,
        trace.dropped,
    ));
    let json_path = std::path::Path::new("results").join("trace_siglat.json");
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&json_path, trace.to_chrome_json()))
    {
        Ok(()) => report.line(format!("wrote {}", json_path.display())),
        Err(e) => report.line(format!(
            "warning: cannot write {}: {e}",
            json_path.display()
        )),
    }
    report.print();
}
