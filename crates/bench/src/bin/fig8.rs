//! Regenerates the paper's fig8 from a live sweep.
//! Default variants: ws,uslcws,signal; override with --variants/--threads/--reps/--scale.

fn main() {
    let cfg = lcws_bench::SweepConfig::from_args_with_default_variants("ws,uslcws,signal");
    let ms = lcws_bench::sweep(&cfg);
    lcws_bench::figures::fig8(&ms).print();
}
