//! `lcws-bench`: the one-shot performance snapshot behind the repo's
//! `BENCH_<n>.json` trajectory (see EXPERIMENTS.md, "The BENCH_*.json
//! trajectory").
//!
//! Every growth PR that can move performance runs this binary and commits
//! the refreshed snapshot at the repo root; `scripts/compare_bench.py`
//! diffs the two highest-numbered snapshots and flags >10% regressions.
//! The snapshot is deliberately small — a handful of scalar keys, stable
//! names, directions encoded in the suffix (`*_ns` lower-is-better,
//! `*_per_sec` higher-is-better, anything else informational).
//!
//! Sections:
//! * `fork_join` — end-to-end `pool.run(fib(18))` latency per variant.
//! * `deque_ops` — single-threaded push/pop/steal throughput on both
//!   deques, plus the resize-heavy case (fresh capacity-4 ring paying
//!   every doubling) that tracks the growable-ring overhead.
//! * `signal_latency` — `signal_send → handler_entry` p50/p99 from the
//!   trace layer; `null` unless built with `--features trace`.
//! * `scheduler` — informational counters from one fine-grained run
//!   (idle wakeups, overflow inlines, steal aborts, ring grows).
//! * `granularity` — tiny-task flood (2^14 near-empty tasks through a
//!   skewed scope): per-variant latency plus the near-first + steal-half
//!   policy composition, the regime where scheduling overhead dominates.
//! * `ingress` — external-submission throughput through the global
//!   injector: a spawn→join round-trip rate, and the many-producer stress
//!   (64 producers × 10⁵ tasks by default) in a single timed round with
//!   its push/pop accounting.
//!
//! Usage: `cargo run --release -p lcws-bench --bin lcws-bench [-- --out
//! BENCH_10.json --threads N]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lcws_core::deque::{AbpDeque, SplitDeque};
use lcws_core::{
    join, par_for_grain, scope, ExposurePolicy, Policies, PoolBuilder, PopBottomMode, Variant,
    VictimSelection,
};

struct Config {
    out: String,
    threads: usize,
    rounds: usize,
    stress_producers: usize,
    stress_tasks: usize,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        out: "BENCH_10.json".to_string(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8),
        rounds: 15,
        stress_producers: 64,
        stress_tasks: 100_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--out" => cfg.out = take(),
            "--threads" => cfg.threads = take().parse().expect("--threads needs a number"),
            "--rounds" => cfg.rounds = take().parse().expect("--rounds needs a number"),
            "--stress-producers" => {
                cfg.stress_producers = take().parse().expect("--stress-producers needs a number");
            }
            "--stress-tasks" => {
                cfg.stress_tasks = take().parse().expect("--stress-tasks needs a number");
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --out PATH --threads N --rounds N \
                     --stress-producers N --stress-tasks N(per producer)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown option {other}"),
        }
    }
    cfg.rounds = cfg.rounds.max(3);
    cfg
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// Median wall time of `f` in nanoseconds over `rounds` timed rounds
/// (plus two untimed warm-ups).
fn median_ns(rounds: usize, mut f: impl FnMut()) -> u64 {
    f();
    f();
    let mut samples: Vec<u64> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Throughput in ops/sec given ops per round and the median round time.
fn per_sec(ops_per_round: usize, round_ns: u64) -> f64 {
    ops_per_round as f64 * 1e9 / round_ns.max(1) as f64
}

#[cfg(feature = "trace")]
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Minimal JSON emitter: nested objects of number-or-null leaves, keys in
/// insertion order. Enough structure for `compare_bench.py`'s flattener.
#[derive(Default)]
struct Obj(Vec<(String, String)>);

impl Obj {
    fn num(&mut self, key: &str, v: f64) -> &mut Self {
        // Two decimals is plenty for ns/ops scales and keeps diffs short.
        self.0.push((key.to_string(), format!("{v:.2}")));
        self
    }
    fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.0.push((key.to_string(), v.to_string()));
        self
    }
    fn raw(&mut self, key: &str, v: String) -> &mut Self {
        self.0.push((key.to_string(), v));
        self
    }
    fn render(&self, indent: usize) -> String {
        let pad = " ".repeat(indent + 2);
        let body = self
            .0
            .iter()
            .map(|(k, v)| format!("{pad}\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n{}}}", " ".repeat(indent))
    }
}

fn bench_fork_join(cfg: &Config, out: &mut Obj) {
    for variant in [Variant::Ws, Variant::UsLcws, Variant::Signal] {
        let pool = PoolBuilder::new(variant).threads(cfg.threads).build();
        let ns = median_ns(cfg.rounds, || {
            assert_eq!(pool.run(|| fib(18)), 2584);
        });
        out.int(&format!("fib18_{variant}_ns"), ns);
        eprintln!("fork_join/fib18 {variant}: {ns} ns");
    }
}

fn bench_deque_ops(cfg: &Config, out: &mut Obj) {
    const OPS: usize = 1024;

    // Owner-local push/pop, capacity pre-sized (the non-resize fast path).
    let split = SplitDeque::new(OPS + 1);
    let ns = median_ns(cfg.rounds, || {
        for i in 1..=OPS {
            split.push_bottom(i as *mut _);
        }
        for _ in 0..OPS {
            std::hint::black_box(split.pop_bottom(PopBottomMode::Standard));
        }
    });
    out.num("split_push_pop_per_sec", per_sec(2 * OPS, ns));

    let abp = AbpDeque::new(OPS + 1);
    let ns = median_ns(cfg.rounds, || {
        for i in 1..=OPS {
            abp.push_bottom(i as *mut _);
        }
        for _ in 0..OPS {
            std::hint::black_box(abp.pop_bottom());
        }
    });
    out.num("abp_push_pop_per_sec", per_sec(2 * OPS, ns));

    // Resize-heavy: a fresh capacity-4 ring pays every doubling up to OPS.
    let ns = median_ns(cfg.rounds, || {
        let d = SplitDeque::new(4);
        for i in 1..=OPS {
            d.push_bottom(i as *mut _);
        }
        for _ in 0..OPS {
            std::hint::black_box(d.pop_bottom(PopBottomMode::Standard));
        }
    });
    out.num("split_resize_heavy_push_pop_per_sec", per_sec(2 * OPS, ns));

    // Steal paths (uncontended): fresh deque per round — steals advance
    // `top` without a reset, so a reused ring would keep growing.
    let ns = median_ns(cfg.rounds, || {
        let d = SplitDeque::new(OPS + 1);
        for i in 1..=OPS {
            d.push_bottom(i as *mut _);
        }
        for _ in 0..OPS {
            d.update_public_bottom(ExposurePolicy::One);
            std::hint::black_box(d.pop_top());
        }
    });
    out.num("split_expose_steal_per_sec", per_sec(OPS, ns));

    let ns = median_ns(cfg.rounds, || {
        let d = AbpDeque::new(OPS + 1);
        for i in 1..=OPS {
            d.push_bottom(i as *mut _);
        }
        for _ in 0..OPS {
            std::hint::black_box(d.pop_top());
        }
    });
    out.num("abp_steal_per_sec", per_sec(OPS, ns));
    eprintln!("deque_ops: done");
}

/// p50/p99 of `signal_send → handler_entry` pairs, when the trace layer is
/// compiled in. Returns `None` (→ JSON null) otherwise.
#[cfg(feature = "trace")]
fn signal_latency(cfg: &Config) -> Option<Obj> {
    let pool = PoolBuilder::new(Variant::Signal)
        .threads(cfg.threads.max(2))
        .build();
    let mut latencies: Vec<u64> = Vec::new();
    for _ in 0..50 {
        let sum = AtomicU64::new(0);
        pool.run(|| {
            par_for_grain(0..1 << 14, 1, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        let trace = pool.take_trace().expect("traced run must leave a trace");
        latencies.extend(trace.signal_latencies_ns());
        if latencies.len() >= 200 {
            break;
        }
    }
    if latencies.is_empty() {
        return None;
    }
    latencies.sort_unstable();
    let mut o = Obj::default();
    o.int("p50_ns", percentile(&latencies, 0.50));
    o.int("p99_ns", percentile(&latencies, 0.99));
    o.int("samples", latencies.len() as u64);
    eprintln!(
        "signal_latency: p50={} p99={} ({} samples)",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.len()
    );
    Some(o)
}

#[cfg(not(feature = "trace"))]
fn signal_latency(_cfg: &Config) -> Option<Obj> {
    eprintln!("signal_latency: skipped (build with --features trace to measure)");
    None
}

/// Informational scheduler counters from one fine-grained signal-variant
/// run: how often workers were woken from a park, how often pushes fell
/// back to inline execution (must stay 0 with growable rings), how many
/// steal CAS races were lost, and how many ring doublings happened.
fn scheduler_counters(cfg: &Config, out: &mut Obj) {
    let pool = PoolBuilder::new(Variant::Signal)
        .threads(cfg.threads)
        .deque_capacity(4)
        .build();
    let sum = AtomicU64::new(0);
    let (_, m) = pool.run_measured(|| {
        par_for_grain(0..1 << 16, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
    });
    assert_eq!(
        sum.into_inner(),
        ((1u64 << 16) - 1) * (1 << 16) / 2,
        "workload result corrupted"
    );
    out.int("idle_wakeups", m.unparks());
    out.int("overflow_inline", m.overflow_inline());
    out.int("steal_aborts", m.steal_aborts());
    out.int("deque_grows", m.deque_grows());
    eprintln!(
        "scheduler: idle_wakeups={} overflow_inline={} steal_aborts={} deque_grows={}",
        m.unparks(),
        m.overflow_inline(),
        m.steal_aborts(),
        m.deque_grows()
    );
}

/// Tiny-task flood — the granularity stress ROADMAP item 5 called for.
///
/// A skewed scope: the root spawns 2^14 near-empty tasks, so all the work
/// sits in one deque and every other worker lives off exposure + stealing.
/// This is the regime where scheduling policy dominates (the per-task work
/// is ~a fetch_add), so it separates the exposure/steal compositions:
/// per-variant flood latency for WS / Signal / Expose Half, plus the
/// near-first + steal-half composition from the policy layer (§5h). The
/// informational `flood_half_batched_tasks` counter records how many
/// tasks moved in multi-slot takes during the Expose Half rounds.
fn bench_granularity(cfg: &Config, out: &mut Obj) {
    const TASKS: usize = 1 << 14;
    let threads = cfg.threads.max(2);
    let flood = |pool: &lcws_core::ThreadPool| {
        let hits = AtomicU64::new(0);
        let (_, m) = pool.run_measured(|| {
            scope(|s| {
                for _ in 0..TASKS {
                    let hits = &hits;
                    s.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(
            hits.into_inner(),
            TASKS as u64,
            "flood lost tasks — refusing to report a latency"
        );
        m.steal_batch_tasks()
    };
    for variant in [Variant::Ws, Variant::Signal, Variant::SignalHalf] {
        let pool = PoolBuilder::new(variant).threads(threads).build();
        let mut batched = 0u64;
        let ns = median_ns(cfg.rounds, || {
            batched += flood(&pool);
        });
        out.int(&format!("flood16k_{variant}_ns"), ns);
        if variant == Variant::SignalHalf {
            out.int("flood_half_batched_tasks", batched);
        }
        eprintln!("granularity/flood16k {variant}: {ns} ns (batched={batched})");
    }
    let mut p = Policies::signal_half();
    p.victim = VictimSelection::NearFirst;
    let pool = PoolBuilder::new(Variant::SignalHalf)
        .policies(p)
        .threads(threads)
        .build();
    let ns = median_ns(cfg.rounds, || {
        flood(&pool);
    });
    out.int("flood16k_half_near_first_ns", ns);
    eprintln!("granularity/flood16k half+near-first: {ns} ns");
}

/// External-ingress throughput through the global injector.
///
/// Two numbers: the spawn→join round-trip rate for a single external
/// producer feeding batches while the pool serves, and the many-producer
/// stress — the PR 8 acceptance scenario — run as one timed round (the
/// workload is large enough that medianing adds minutes for no stability
/// gain). The stress asserts zero task loss before reporting, so a broken
/// number can never be committed.
fn bench_ingress(cfg: &Config, out: &mut Obj) {
    use std::sync::Arc;

    // A serve window executes on helper workers only (worker 0 is the
    // `run` caller's seat), so a threads=1 pool defers everything to the
    // shutdown drain — joining before shutdown would deadlock. Floor the
    // serving pools at 2, same as signal_latency.
    let threads = cfg.threads.max(2);

    // Spawn→join round-trip: one producer, batch submission, join all.
    const BATCH: usize = 4096;
    let pool = PoolBuilder::new(Variant::Signal).threads(threads).build();
    pool.serve();
    let ns = median_ns(cfg.rounds, || {
        let handles = pool.spawn_batch((0..BATCH as u64).map(|i| move || std::hint::black_box(i)));
        for h in handles {
            h.join();
        }
    });
    pool.shutdown();
    out.num("injector_spawn_join_per_sec", per_sec(BATCH, ns));
    eprintln!("ingress/spawn_join: {:.0} tasks/s", per_sec(BATCH, ns));

    // Many-producer stress: stress_producers external threads each submit
    // stress_tasks fire-and-forget tasks; the clock covers first submit
    // through full drain (shutdown).
    let total = (cfg.stress_producers * cfg.stress_tasks) as u64;
    let pool = PoolBuilder::new(Variant::Signal)
        .threads(cfg.threads)
        .build();
    pool.serve();
    let executed = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.stress_producers {
            let pool = &pool;
            let executed = Arc::clone(&executed);
            s.spawn(move || {
                for _ in 0..cfg.stress_tasks {
                    let executed = Arc::clone(&executed);
                    drop(pool.spawn(move || {
                        executed.fetch_add(1, Ordering::Relaxed);
                    }));
                }
            });
        }
    });
    let snap = pool.shutdown();
    let ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(
        executed.load(Ordering::Relaxed),
        total,
        "producer stress lost tasks — refusing to report a throughput"
    );
    out.num("producer_stress_per_sec", per_sec(total as usize, ns));
    out.int("producer_stress_total_tasks", total);
    out.int("producer_stress_injector_pushes", snap.injector_pushes());
    out.int("producer_stress_injector_pops", snap.injector_pops());
    eprintln!(
        "ingress/producer_stress: {} producers x {} tasks -> {:.0} tasks/s \
         (pushes={} pops={})",
        cfg.stress_producers,
        cfg.stress_tasks,
        per_sec(total as usize, ns),
        snap.injector_pushes(),
        snap.injector_pops()
    );
}

fn main() {
    let cfg = parse_args();

    let mut fork_join = Obj::default();
    bench_fork_join(&cfg, &mut fork_join);

    let mut deque_ops = Obj::default();
    bench_deque_ops(&cfg, &mut deque_ops);

    let siglat = signal_latency(&cfg);

    let mut sched = Obj::default();
    scheduler_counters(&cfg, &mut sched);

    let mut granularity = Obj::default();
    bench_granularity(&cfg, &mut granularity);

    let mut ingress = Obj::default();
    bench_ingress(&cfg, &mut ingress);

    let mut meta = Obj::default();
    meta.int("threads", cfg.threads as u64);
    meta.int("rounds", cfg.rounds as u64);
    meta.int(
        "timestamp_unix_s",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    );

    let mut root = Obj::default();
    root.raw("meta", meta.render(2));
    root.raw("fork_join", fork_join.render(2));
    root.raw("deque_ops", deque_ops.render(2));
    root.raw(
        "signal_latency",
        siglat.map_or("null".to_string(), |o| o.render(2)),
    );
    root.raw("scheduler", sched.render(2));
    root.raw("granularity", granularity.render(2));
    root.raw("ingress", ingress.render(2));

    let json = format!("{}\n", root.render(0));
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", cfg.out));
    eprintln!("wrote {}", cfg.out);
}
