//! Regenerates the paper's fig6 from a live sweep.
//! Default variants: ws,uslcws,signal,cons,half; override with --variants/--threads/--reps/--scale.

fn main() {
    let cfg =
        lcws_bench::SweepConfig::from_args_with_default_variants("ws,uslcws,signal,cons,half");
    let ms = lcws_bench::sweep(&cfg);
    lcws_bench::figures::fig6(&ms).print();
}
