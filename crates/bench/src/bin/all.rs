//! Runs one full sweep over all five schedulers and regenerates **every**
//! table, figure, and statistics section of the paper from the same data,
//! writing CSVs under `results/` (the data quoted in EXPERIMENTS.md).

use lcws_bench::figures;

fn main() {
    println!("{}", lcws_bench::machine::MachineInfo::probe().table());
    let cfg =
        lcws_bench::SweepConfig::from_args_with_default_variants("ws,uslcws,signal,cons,half");
    let ms = lcws_bench::sweep(&cfg);
    let report = lcws_bench::Report::new("raw measurements");
    let (header, rows) = figures::raw_csv(&ms);
    report.csv("raw_measurements", &header, &rows);
    figures::fig3(&ms).print();
    figures::fig4(&ms).print();
    figures::fig5(&ms).print();
    figures::fig6(&ms).print();
    figures::fig7(&ms).print();
    figures::fig8(&ms).print();
    figures::stats51(&ms).print();
    figures::stats52(&ms).print();
    figures::stats54(&ms).print();
}
