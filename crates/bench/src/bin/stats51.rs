//! Regenerates the paper's stats51 from a live sweep.
//! Default variants: ws,uslcws; override with --variants/--threads/--reps/--scale.

fn main() {
    let cfg = lcws_bench::SweepConfig::from_args_with_default_variants("ws,uslcws");
    let ms = lcws_bench::sweep(&cfg);
    lcws_bench::figures::stats51(&ms).print();
}
