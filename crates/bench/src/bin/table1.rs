//! Table 1: the machine(s) used in the evaluation — here, the host the
//! reproduction runs on.

fn main() {
    print!("{}", lcws_bench::machine::MachineInfo::probe().table());
}
