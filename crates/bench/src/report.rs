//! Report builder: aligned text tables on stdout plus CSVs in `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Accumulates a text report and optional CSV artifacts.
pub struct Report {
    title: String,
    body: String,
    csv_dir: PathBuf,
}

impl Report {
    /// New report with a figure/table title. CSVs are written under
    /// `results/` in the current directory (created on demand).
    pub fn new(title: impl Into<String>) -> Report {
        Report {
            title: title.into(),
            body: String::new(),
            csv_dir: PathBuf::from("results"),
        }
    }

    /// Append a section heading.
    pub fn section(&mut self, heading: &str) {
        let _ = writeln!(self.body, "\n## {heading}");
    }

    /// Append one text line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        let _ = writeln!(self.body, "{}", text.as_ref());
    }

    /// Write a CSV artifact (`results/<name>.csv`); errors are reported on
    /// stderr but never abort report generation.
    pub fn csv(&self, name: &str, header: &str, rows: &[String]) {
        if let Err(e) = std::fs::create_dir_all(&self.csv_dir) {
            eprintln!("warning: cannot create {}: {e}", self.csv_dir.display());
            return;
        }
        let path = self.csv_dir.join(format!("{name}.csv"));
        let mut content = String::with_capacity(rows.len() * 32 + header.len() + 1);
        let _ = writeln!(content, "{header}");
        for r in rows {
            let _ = writeln!(content, "{r}");
        }
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[csv] wrote {}", path.display());
        }
    }

    /// Render the full report to a string.
    pub fn render(&self) -> String {
        format!("==== {} ====\n{}", self.title, self.body)
    }

    /// Print the report to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_sections_lines() {
        let mut r = Report::new("Figure X");
        r.section("part a");
        r.line("hello");
        let s = r.render();
        assert!(s.contains("==== Figure X ===="));
        assert!(s.contains("## part a"));
        assert!(s.contains("hello"));
    }

    #[test]
    fn csv_written_to_disk() {
        let dir = std::env::temp_dir().join(format!("lcws-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let r = Report::new("t");
        r.csv("unit_test", "a,b", &["1,2".into(), "3,4".into()]);
        let content = std::fs::read_to_string("results/unit_test.csv").unwrap();
        std::env::set_current_dir(old).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
