//! Host introspection for Table 1 (the paper lists the machines used; we
//! print the equivalent row for the machine the reproduction runs on).

use std::fmt::Write as _;

/// Hardware description of the current host.
#[derive(Debug, Clone)]
pub struct MachineInfo {
    /// CPU model string.
    pub cpu: String,
    /// Physical core count (best effort; logical if physical unknown).
    pub cores: usize,
    /// Logical CPU (hardware thread) count.
    pub threads: usize,
    /// Total memory, GiB.
    pub memory_gib: f64,
    /// OS/kernel description.
    pub os: String,
}

impl MachineInfo {
    /// Probe `/proc` (Linux); degrades gracefully elsewhere.
    pub fn probe() -> MachineInfo {
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let cpu = cpuinfo
            .lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.split(':').nth(1))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown CPU".into());
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cores = {
            let mut ids: Vec<&str> = cpuinfo
                .lines()
                .filter(|l| l.starts_with("core id"))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.is_empty() {
                threads
            } else {
                ids.len()
            }
        };
        let memory_gib = std::fs::read_to_string("/proc/meminfo")
            .ok()
            .and_then(|m| {
                m.lines()
                    .find(|l| l.starts_with("MemTotal"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|kb| kb.parse::<f64>().ok())
            })
            .map(|kb| kb / (1024.0 * 1024.0))
            .unwrap_or(0.0);
        let os = std::fs::read_to_string("/proc/version")
            .map(|v| v.split(" (").next().unwrap_or("").to_string())
            .unwrap_or_else(|_| "unknown OS".into());
        MachineInfo {
            cpu,
            cores,
            threads,
            memory_gib,
            os,
        }
    }

    /// The Table-1-style row for this host.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 1 (reproduction): computer used in the experimental evaluation"
        );
        let _ = writeln!(
            out,
            "{:<10} {:<45} {:>14} {:>10}",
            "Name", "CPU", "Cores/Threads", "Memory"
        );
        let _ = writeln!(
            out,
            "{:<10} {:<45} {:>7}/{:<6} {:>7.1} GiB",
            "host", self.cpu, self.cores, self.threads, self.memory_gib
        );
        let _ = writeln!(out, "OS: {}", self.os.trim());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_yields_sane_values() {
        let m = MachineInfo::probe();
        assert!(m.threads >= 1);
        assert!(m.cores >= 1);
        assert!(!m.cpu.is_empty());
    }

    #[test]
    fn table_mentions_core_count() {
        let m = MachineInfo::probe();
        let t = m.table();
        assert!(t.contains("Cores/Threads"));
        assert!(t.contains(&m.cores.to_string()));
    }
}
