//! The five schedulers the paper implements and evaluates.

use std::fmt;
use std::str::FromStr;

use crate::deque::{ExposurePolicy, PopBottomMode};

/// Scheduler selection: the WS baseline plus the paper's four LCWS-based
/// schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Classic work stealing over a fully-concurrent ABP deque — the
    /// behaviour of Parlay's stock scheduler, the paper's baseline.
    Ws,
    /// User-Space LCWS (§3): thieves set a `targeted` flag; victims notice
    /// it at task boundaries and expose one task.
    UsLcws,
    /// Signal-based LCWS (§4): thieves send `SIGUSR1`; the victim's handler
    /// exposes one task in constant time.
    Signal,
    /// Conservative Exposure (§4.1.1): signals, but exposure happens only
    /// while the victim holds at least two private tasks, and thieves only
    /// notify victims observed to hold two or more tasks.
    SignalConservative,
    /// Expose Half (§4.1.2): signals; victims with `r ≥ 3` private tasks
    /// expose `round(r/2)` of them.
    SignalHalf,
}

impl Variant {
    /// All variants, in the order the paper introduces them.
    pub const ALL: [Variant; 5] = [
        Variant::Ws,
        Variant::UsLcws,
        Variant::Signal,
        Variant::SignalConservative,
        Variant::SignalHalf,
    ];

    /// The paper's four LCWS-based schedulers (everything but the baseline).
    pub const LCWS_ALL: [Variant; 4] = [
        Variant::UsLcws,
        Variant::Signal,
        Variant::SignalConservative,
        Variant::SignalHalf,
    ];

    /// Short stable name (used in CLI flags and CSV output).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Ws => "ws",
            Variant::UsLcws => "uslcws",
            Variant::Signal => "signal",
            Variant::SignalConservative => "cons",
            Variant::SignalHalf => "half",
        }
    }

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Ws => "WS",
            Variant::UsLcws => "User",
            Variant::Signal => "Signal",
            Variant::SignalConservative => "Cons",
            Variant::SignalHalf => "Half",
        }
    }

    /// Does this scheduler use split deques (any LCWS variant)?
    pub fn uses_split_deque(self) -> bool {
        self.policies().uses_split_deque()
    }

    /// Does this scheduler notify victims with POSIX signals?
    pub fn uses_signals(self) -> bool {
        self.policies().uses_signals()
    }

    /// Does this scheduler poll the user-space `fallback_expose` flag at
    /// task boundaries? True exactly for the signal-based variants: their
    /// primary notification channel (`pthread_kill`) can fail against a
    /// thread racing with teardown, and the failed request is rerouted
    /// through the flag (USLCWS-style) instead of being dropped. USLCWS
    /// itself already polls `targeted` and never sends signals; WS has no
    /// exposure at all.
    pub fn polls_fallback_flag(self) -> bool {
        self.policies().polls_fallback_flag()
    }

    /// Which `pop_bottom` flavour the owner must use (§4's subtlety):
    /// USLCWS never exposes asynchronously and Conservative exposure
    /// provably never publishes the bottom-most task, so both keep the
    /// original comparison; the base signal scheduler and Expose Half may
    /// expose the task the owner is popping, so they need
    /// decrement-then-compare. The choice lives in the variant's policy
    /// bundle (`crate::Policies`).
    pub fn pop_bottom_mode(self) -> PopBottomMode {
        self.policies().pop_bottom
    }

    /// How much work an exposure request transfers to the public part.
    pub fn exposure_policy(self) -> ExposurePolicy {
        self.policies().exposure
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Variant`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVariantError(pub String);

impl fmt::Display for ParseVariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheduler variant `{}` (expected one of: ws, uslcws, signal, cons, half)",
            self.0
        )
    }
}

impl std::error::Error for ParseVariantError {}

impl FromStr for Variant {
    type Err = ParseVariantError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ws" | "baseline" => Ok(Variant::Ws),
            "uslcws" | "user" | "user-space" => Ok(Variant::UsLcws),
            "signal" | "lcws" => Ok(Variant::Signal),
            "cons" | "conservative" => Ok(Variant::SignalConservative),
            "half" | "expose-half" => Ok(Variant::SignalHalf),
            other => Err(ParseVariantError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for v in Variant::ALL {
            assert_eq!(v.name().parse::<Variant>().unwrap(), v);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("LCWS".parse::<Variant>().unwrap(), Variant::Signal);
        assert_eq!("user".parse::<Variant>().unwrap(), Variant::UsLcws);
        assert!("bogus".parse::<Variant>().is_err());
    }

    #[test]
    fn signal_variants_need_signal_safe_pop_iff_unconstrained_exposure() {
        use crate::deque::PopBottomMode as M;
        assert_eq!(Variant::Ws.pop_bottom_mode(), M::Standard);
        assert_eq!(Variant::UsLcws.pop_bottom_mode(), M::Standard);
        assert_eq!(Variant::SignalConservative.pop_bottom_mode(), M::Standard);
        assert_eq!(Variant::Signal.pop_bottom_mode(), M::SignalSafe);
        assert_eq!(Variant::SignalHalf.pop_bottom_mode(), M::SignalSafe);
    }
}
