//! # lcws-core — synchronization-light work stealing
//!
//! A faithful Rust implementation of the schedulers from **"Efficient
//! Synchronization-Light Work Stealing"** (Custódio, Paulino, Rito —
//! SPAA '23), which in turn implement the *Low-Cost Work Stealing* (LCWS)
//! algorithm of Rito & Paulino over **split deques**.
//!
//! ## The idea
//!
//! Classic work stealing (WS) keeps every task in a fully concurrent deque,
//! so even the owner pays a sequentially-consistent fence on *every* local
//! pop (a cost Attiya et al. proved unavoidable for such deques). LCWS
//! splits each deque into a **private part** — a plain, synchronization-free
//! call stack for its owner — and a **public part** that thieves steal
//! from. Work migrates from private to public only when a thief asks for it
//! (a *work-exposure request*), so the owner pays synchronization
//! proportional to the amount of *actual* load balancing (`O(S·P)` expected)
//! rather than to the total work (`O(W)`).
//!
//! ## The five schedulers ([`Variant`])
//!
//! | Variant | Deque | Exposure request | Exposure amount |
//! |---|---|---|---|
//! | [`Variant::Ws`] | ABP (fully concurrent) | — | — |
//! | [`Variant::UsLcws`] | split | `targeted` flag, polled at task boundaries | 1 task |
//! | [`Variant::Signal`] | split | `SIGUSR1`, handled in constant time | 1 task |
//! | [`Variant::SignalConservative`] | split | `SIGUSR1`, only if victim holds ≥ 2 tasks | 1 task (never the last) |
//! | [`Variant::SignalHalf`] | split | `SIGUSR1` | `round(r/2)` of `r ≥ 3` tasks |
//!
//! ## Quick start
//!
//! ```
//! use lcws_core::{join, par_for, PoolBuilder, Variant};
//!
//! let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
//! let sum = pool.run(|| {
//!     // Fork-join parallelism with a synchronization-light scheduler.
//!     fn sum_range(lo: u64, hi: u64) -> u64 {
//!         if hi - lo < 1_000 {
//!             (lo..hi).sum()
//!         } else {
//!             let mid = lo + (hi - lo) / 2;
//!             let (a, b) = join(|| sum_range(lo, mid), || sum_range(mid, hi));
//!             a + b
//!         }
//!     }
//!     sum_range(0, 100_000)
//! });
//! assert_eq!(sum, 100_000 * 99_999 / 2);
//! ```
//!
//! Synchronization profiles (the paper's Figures 3 and 8) are one call away:
//!
//! ```
//! # use lcws_core::{PoolBuilder, Variant};
//! let pool = PoolBuilder::new(Variant::UsLcws).threads(2).build();
//! let (_, profile) = pool.run_measured(|| {
//!     lcws_core::par_for(0..10_000, |_i| { std::hint::black_box(0); });
//! });
//! println!("fences: {}, CAS: {}", profile.fences(), profile.cas());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod age;
mod api;
pub mod deque;
pub mod fault;
pub mod hb;
mod injector;
mod job;
pub mod model;
mod policy;
mod pool;
mod signal;
mod sleep;
pub mod trace;
mod variant;
mod worker;

pub use age::{Age, AtomicAge};
pub use api::{
    default_grain, in_pool, join, num_workers, par_for, par_for_grain, scope, worker_index, Scope,
};
pub use deque::{double2int, ExposurePolicy, PopBottomMode, SplitDeque};
pub use injector::JoinHandle;
pub use job::Job;
pub use policy::{DequeKind, NotifyChannel, Policies, PolicyError, StealAmount, VictimSelection};
pub use pool::{PoolBuilder, ThreadPool};
pub use signal::EXPOSE_SIGNAL;
pub use sleep::IdlePolicy;
#[cfg(feature = "trace")]
pub use trace::Trace;
pub use trace::{EventKind, TraceEvent};
pub use variant::{ParseVariantError, Variant};

// Re-export the metrics surface users need to interpret `run_measured`.
pub use lcws_metrics::{Counter, Snapshot};
