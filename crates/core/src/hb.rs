//! Dynamic happens-before race checking — the `hb` cargo feature.
//!
//! The DFS explorer behind the `model` feature proves the deque protocols
//! exhaustively, but only on 2–3-thread micro-scenarios and only under
//! *interleaving* (sequentially consistent) semantics: it cannot tell a
//! `Relaxed` publish from a `Release` one. This module is the complementary
//! tool: a ThreadSanitizer-style **vector-clock checker** that runs under
//! full-scale workloads (all five variants, supervision churn, 64-producer
//! ingress) and checks that the memory *orderings* actually written in the
//! source establish the happens-before edges the unsafe code relies on.
//!
//! ## Algorithm
//!
//! Every participating thread `t` carries a vector clock `C_t` (its slot is
//! assigned lazily on first instrumented access). The shim atomics in
//! [`crate::model::shim`] call into this module on every operation:
//!
//! * store with a Release component: the atomic's *release clock* `L_a`
//!   becomes a copy of `C_t`; a `Relaxed` store **resets** `L_a` (C++20
//!   semantics: a plain store breaks the release sequence).
//! * RMW (`swap`, `fetch_*`, successful `compare_exchange`): joins instead
//!   of replacing — an RMW continues an existing release sequence whatever
//!   its ordering, and additionally contributes `C_t` when it has a Release
//!   component.
//! * load/RMW with an Acquire component: `C_t := C_t ⊔ L_a`.
//! * any `SeqCst` access and `fence(SeqCst)`: additionally joins through a
//!   global SC clock (`C_t := C_t ⊔ SC; SC := SC ⊔ C_t`) — a sound model of
//!   the single total order S, and the edge the fence-based deque protocols
//!   (`pop_public_bottom`, ABP `pop_bottom`) rely on.
//!
//! Non-atomic locations where real races would live — ring-buffer slots,
//! `Job`/`TaskState` result cells, trace-ring records — are registered
//! explicitly via [`on_read`]/[`on_write`] with a site name. Each tracked
//! address remembers its last write and all reads since, as
//! `(thread, clock)` epochs; an access that is not happens-after a
//! conflicting prior access produces a report naming **both** sites.
//!
//! Thief-side ring-slot reads are *speculative*: the Chase-Lev steal reads
//! the slot before the `age` CAS validates ownership, and a read whose CAS
//! fails discards the value. [`speculative_read`] captures the would-be
//! race at read time; [`commit_read`] files it only if the steal succeeds,
//! so sound executions under contention produce no false reports.
//!
//! ## Cost
//!
//! With the feature off, every hook in this module is an empty
//! `#[inline(always)]` stub and the shim atomics are plain `std` aliases
//! (TypeId-asserted in `model::tests`), so default builds are bit-identical
//! to pre-`hb` ones. With the feature on, every hook serializes through one
//! global mutex — the checker is a correctness instrument, not a
//! performance configuration. Hooks block `SIGUSR1` for the lock's
//! duration, so the expose handler's own accesses always run fully
//! instrumented (never interleaving with a half-recorded hook); a TLS
//! re-entrancy flag remains as a skip-don't-deadlock backstop.

/// Test-only ordering switches for the seeded "broken variant" negative
/// tests. Each returns the sound ordering unless a test explicitly broke
/// it; with the `hb` feature off they are compile-time constants.
pub mod negative {
    use std::sync::atomic::Ordering;

    #[cfg(feature = "hb")]
    use std::sync::atomic::AtomicBool;

    #[cfg(feature = "hb")]
    static BROKEN_GROW_PUBLISH: AtomicBool = AtomicBool::new(false);
    #[cfg(feature = "hb")]
    static BROKEN_DONE_STORE: AtomicBool = AtomicBool::new(false);

    /// Ordering used by `GrowableRing::grow` to publish the new buffer:
    /// `Release` normally, `Relaxed` when broken by
    /// [`set_broken_grow_publish`].
    #[cfg(feature = "hb")]
    #[inline]
    pub fn grow_publish_order() -> Ordering {
        if BROKEN_GROW_PUBLISH.load(Ordering::Relaxed) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        }
    }

    /// Sound constant when the checker is compiled out.
    #[cfg(not(feature = "hb"))]
    #[inline(always)]
    pub fn grow_publish_order() -> Ordering {
        Ordering::Release
    }

    /// Ordering used by `Job::mark_done` for the `done` store: `Release`
    /// normally, `Relaxed` when broken by [`set_broken_done_store`].
    #[cfg(feature = "hb")]
    #[inline]
    pub fn done_store_order() -> Ordering {
        if BROKEN_DONE_STORE.load(Ordering::Relaxed) {
            Ordering::Relaxed
        } else {
            Ordering::Release
        }
    }

    /// Sound constant when the checker is compiled out.
    #[cfg(not(feature = "hb"))]
    #[inline(always)]
    pub fn done_store_order() -> Ordering {
        Ordering::Release
    }

    /// Break (or restore) the ring-grow buffer publish to `Relaxed`.
    /// Test-only; requires `--features hb`.
    #[cfg(feature = "hb")]
    pub fn set_broken_grow_publish(broken: bool) {
        BROKEN_GROW_PUBLISH.store(broken, Ordering::Relaxed);
    }

    /// Break (or restore) the `Job::mark_done` publish to `Relaxed`.
    /// Test-only; requires `--features hb`.
    #[cfg(feature = "hb")]
    pub fn set_broken_done_store(broken: bool) {
        BROKEN_DONE_STORE.store(broken, Ordering::Relaxed);
    }
}

#[cfg(feature = "hb")]
mod imp {
    use std::cell::Cell;
    use std::collections::{BTreeMap, HashMap};
    use std::sync::atomic::Ordering;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    const UNREGISTERED: usize = usize::MAX;
    /// Stop accumulating after this many reports (floods help nobody).
    const MAX_REPORTS: usize = 200;

    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(UNREGISTERED) };
        /// Re-entrancy backstop: a hook re-entered on the same thread must
        /// not relock the checker. With [`SigBlock`] masking the expose
        /// signal for the lock's duration this should never fire, but the
        /// uninstrumented fallback is still safer than a self-deadlock.
        static IN_HOOK: Cell<bool> = const { Cell::new(false) };
    }

    /// Blocks `EXPOSE_SIGNAL` for the current thread while a hook holds
    /// the checker lock. Without this, a `SIGUSR1` landing mid-hook would
    /// run the handler's own hooks uninstrumented (via `IN_HOOK`), silently
    /// dropping the exposure's release edge and turning sound schedules
    /// into false positives.
    struct SigBlock {
        old: libc::sigset_t,
    }

    impl SigBlock {
        fn new() -> SigBlock {
            // Safety: plain sigset manipulation plus pthread_sigmask, all
            // async-signal-safe and thread-local by definition.
            unsafe {
                let mut set: libc::sigset_t = std::mem::zeroed();
                libc::sigemptyset(&mut set);
                libc::sigaddset(&mut set, crate::signal::EXPOSE_SIGNAL);
                let mut old: libc::sigset_t = std::mem::zeroed();
                libc::pthread_sigmask(libc::SIG_BLOCK, &set, &mut old);
                SigBlock { old }
            }
        }
    }

    impl Drop for SigBlock {
        fn drop(&mut self) {
            // Safety: restores the mask captured by `new` on this thread.
            unsafe {
                libc::pthread_sigmask(libc::SIG_SETMASK, &self.old, std::ptr::null_mut());
            }
        }
    }

    /// A vector clock: `0[t] = k` means "has observed thread t's first k
    /// instrumented accesses".
    #[derive(Debug, Clone, Default)]
    struct Vc(Vec<u64>);

    impl Vc {
        fn get(&self, t: usize) -> u64 {
            self.0.get(t).copied().unwrap_or(0)
        }
        fn set(&mut self, t: usize, v: u64) {
            if self.0.len() <= t {
                self.0.resize(t + 1, 0);
            }
            self.0[t] = v;
        }
        fn join(&mut self, other: &Vc) {
            if self.0.len() < other.0.len() {
                self.0.resize(other.0.len(), 0);
            }
            for (s, &o) in self.0.iter_mut().zip(other.0.iter()) {
                *s = (*s).max(o);
            }
        }
        fn clear(&mut self) {
            self.0.clear();
        }
    }

    /// One recorded access to a tracked data location.
    #[derive(Debug, Clone, Copy)]
    struct Access {
        tid: usize,
        epoch: u64,
        site: &'static str,
    }

    #[derive(Debug, Default)]
    struct AtomicState {
        /// The release clock: joined into readers that synchronize with
        /// this atomic (release store / release sequence headed here).
        release: Vc,
    }

    #[derive(Debug, Default)]
    struct DataState {
        write: Option<Access>,
        reads: Vec<Access>,
    }

    #[derive(Default)]
    struct Checker {
        /// Per-slot thread clocks. Slots are assigned on first access and
        /// recycled when a thread exits (its epoch counter carries over, so
        /// recorded accesses of the dead thread stay well-ordered).
        threads: Vec<Vc>,
        free_slots: Vec<usize>,
        /// Global SeqCst clock (the total order S, as an HB approximation).
        sc: Vc,
        /// Keyed by address; `BTreeMap` so [`forget_range`] can drop a freed
        /// range in `O(log n + k)` instead of scanning every entry (a
        /// million-job run calls it once per job free).
        atomics: BTreeMap<usize, AtomicState>,
        data: BTreeMap<usize, DataState>,
        /// Parent-clock snapshots for explicit thread-spawn edges.
        forks: HashMap<u64, Vc>,
        /// Next fork token; starts at 1 so the stubbed/skipped token 0 can
        /// never collide with a real edge.
        next_fork: u64,
        reports: Vec<String>,
        seen_pairs: HashMap<(&'static str, &'static str), ()>,
    }

    static CHECKER: Mutex<Option<Checker>> = Mutex::new(None);

    fn lock() -> MutexGuard<'static, Option<Checker>> {
        CHECKER.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current thread's clock slot, assigning (or recycling) one on
    /// first use. Must be called with the checker lock held.
    fn register(ck: &mut Checker) -> usize {
        let tid = SLOT.with(|s| s.get());
        if tid != UNREGISTERED {
            return tid;
        }
        let slot = ck.free_slots.pop().unwrap_or_else(|| {
            ck.threads.push(Vc::default());
            ck.threads.len() - 1
        });
        // A fresh thread starts one past whatever epoch the slot's
        // previous occupant reached, so the dead thread's recorded
        // accesses stay distinguishable from the newcomer's.
        let next = ck.threads[slot].get(slot) + 1;
        ck.threads[slot].clear();
        ck.threads[slot].set(slot, next);
        SLOT.with(|s| s.set(slot));
        RECYCLE.with(|r| r.slot.set(slot));
        slot
    }

    /// Run `f` on the checker unless this thread is already inside a hook
    /// (re-entrancy backstop) — then skip instrumentation entirely.
    fn with<T: Default>(f: impl FnOnce(&mut Checker, usize) -> T) -> T {
        let _sig = SigBlock::new();
        if IN_HOOK.with(|c| c.replace(true)) {
            return T::default();
        }
        let result = {
            let mut g = lock();
            let ck = g.get_or_insert_with(Checker::default);
            let tid = register(ck);
            f(ck, tid)
        };
        IN_HOOK.with(|c| c.set(false));
        result
    }

    /// TLS guard returning a thread's slot to the free list on exit.
    struct Recycle {
        slot: Cell<usize>,
    }

    impl Drop for Recycle {
        fn drop(&mut self) {
            let slot = self.slot.get();
            if slot == UNREGISTERED {
                return;
            }
            let mut g = lock();
            if let Some(ck) = g.as_mut() {
                ck.free_slots.push(slot);
            }
        }
    }

    thread_local! {
        static RECYCLE: Recycle = const {
            Recycle { slot: Cell::new(UNREGISTERED) }
        };
    }

    impl Checker {
        fn bump_epoch(&mut self, tid: usize) {
            let e = self.threads[tid].get(tid) + 1;
            self.threads[tid].set(tid, e);
        }

        /// Does recorded access `a` happen-before the current state of
        /// thread `tid`?
        fn ordered(&self, a: &Access, tid: usize) -> bool {
            a.tid == tid || self.threads[tid].get(a.tid) >= a.epoch
        }

        fn file(
            &mut self,
            kind: &str,
            prior: &Access,
            tid: usize,
            site: &'static str,
            addr: usize,
        ) {
            let key = (prior.site, site);
            if self.seen_pairs.contains_key(&key) || self.reports.len() >= MAX_REPORTS {
                return;
            }
            self.seen_pairs.insert(key, ());
            let msg = format!(
                "hb: {kind} race at {addr:#x}: [{}] (thread slot {} @ epoch {}) is unordered with [{}] (thread slot {tid})",
                prior.site, prior.tid, prior.epoch, site
            );
            eprintln!("{msg}");
            self.reports.push(msg);
            lcws_metrics::bump(lcws_metrics::Counter::HbReport);
        }

        /// The conflict scan for a read of `addr`; returns the racing write
        /// (if any) without recording the read.
        fn read_conflict(&self, addr: usize, tid: usize) -> Option<Access> {
            let st = self.data.get(&addr)?;
            match &st.write {
                Some(w) if !self.ordered(w, tid) => Some(*w),
                _ => None,
            }
        }

        fn record_read(&mut self, addr: usize, tid: usize, site: &'static str) {
            let epoch = self.threads[tid].get(tid);
            let st = self.data.entry(addr).or_default();
            // Keep the read set small: drop reads already ordered before
            // this one from the same thread.
            st.reads.retain(|r| r.tid != tid);
            st.reads.push(Access { tid, epoch, site });
        }
    }

    fn has_acquire(o: Ordering) -> bool {
        matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn has_release(o: Ordering) -> bool {
        matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn sc_sync(ck: &mut Checker, tid: usize) {
        let sc = ck.sc.clone();
        ck.threads[tid].join(&sc);
        let t = ck.threads[tid].clone();
        ck.sc.join(&t);
    }

    /// Run `op` under the checker lock and feed the clock update `f`. The
    /// lock makes the real access and its clock bookkeeping one step, so
    /// hook/op interleavings cannot fabricate or hide edges. Re-entrant
    /// calls run uninstrumented (backstop; `SigBlock` keeps the expose
    /// handler from ever re-entering).
    fn with_op<T>(op: impl FnOnce() -> T, f: impl FnOnce(&mut Checker, usize)) -> T {
        let _sig = SigBlock::new();
        if IN_HOOK.with(|c| c.replace(true)) {
            return op();
        }
        let result = {
            let mut g = lock();
            let ck = g.get_or_insert_with(Checker::default);
            let tid = register(ck);
            let v = op();
            f(ck, tid);
            v
        };
        IN_HOOK.with(|c| c.set(false));
        result
    }

    /// Clock update for a plain load: acquire joins the release clock.
    fn load_clocks(ck: &mut Checker, tid: usize, addr: usize, order: Ordering) {
        ck.bump_epoch(tid);
        if has_acquire(order) {
            let rel = ck.atomics.entry(addr).or_default().release.clone();
            ck.threads[tid].join(&rel);
        }
        if order == Ordering::SeqCst {
            sc_sync(ck, tid);
        }
    }

    /// Clock update for an RMW (swap, fetch_*, successful CAS): continues
    /// the release sequence whatever its ordering.
    fn rmw_clocks(ck: &mut Checker, tid: usize, addr: usize, order: Ordering) {
        ck.bump_epoch(tid);
        if order == Ordering::SeqCst {
            sc_sync(ck, tid);
        }
        if has_acquire(order) {
            let rel = ck.atomics.entry(addr).or_default().release.clone();
            ck.threads[tid].join(&rel);
        }
        if has_release(order) {
            let clock = ck.threads[tid].clone();
            // Join, not replace: an RMW continues the release sequence.
            ck.atomics.entry(addr).or_default().release.join(&clock);
        }
    }

    /// Atomic load through a shim type.
    pub(crate) fn atomic_load<T>(addr: usize, order: Ordering, op: impl FnOnce() -> T) -> T {
        with_op(op, |ck, tid| load_clocks(ck, tid, addr, order))
    }

    /// Atomic store through a shim type.
    pub(crate) fn atomic_store<T>(addr: usize, order: Ordering, op: impl FnOnce() -> T) -> T {
        with_op(op, |ck, tid| {
            ck.bump_epoch(tid);
            if order == Ordering::SeqCst {
                sc_sync(ck, tid);
            }
            let clock = ck.threads[tid].clone();
            let st = ck.atomics.entry(addr).or_default();
            if has_release(order) {
                st.release = clock;
            } else {
                // A plain store breaks the release sequence (C++20).
                st.release.clear();
            }
        })
    }

    /// Atomic read-modify-write (swap, `fetch_*`).
    pub(crate) fn atomic_rmw<T>(addr: usize, order: Ordering, op: impl FnOnce() -> T) -> T {
        with_op(op, |ck, tid| rmw_clocks(ck, tid, addr, order))
    }

    /// Compare-exchange: RMW semantics on success, plain-load semantics
    /// (with the failure ordering) on failure.
    pub(crate) fn atomic_cas<V>(
        addr: usize,
        success: Ordering,
        failure: Ordering,
        op: impl FnOnce() -> Result<V, V>,
    ) -> Result<V, V> {
        let _sig = SigBlock::new();
        if IN_HOOK.with(|c| c.replace(true)) {
            return op();
        }
        let result = {
            let mut g = lock();
            let ck = g.get_or_insert_with(Checker::default);
            let tid = register(ck);
            let r = op();
            match &r {
                Ok(_) => rmw_clocks(ck, tid, addr, success),
                Err(_) => load_clocks(ck, tid, addr, failure),
            }
            r
        };
        IN_HOOK.with(|c| c.set(false));
        result
    }

    /// `fence(SeqCst)` (the only fence the schedulers use).
    pub(crate) fn fence_seq_cst<T>(op: impl FnOnce() -> T) -> T {
        with_op(op, |ck, tid| {
            ck.bump_epoch(tid);
            sc_sync(ck, tid);
        })
    }

    /// Lock-based edge (the injector's `ready` list): acquire side, called
    /// right after taking the lock.
    pub(crate) fn lock_acquired(addr: usize) {
        with(|ck, tid| rmw_clocks(ck, tid, addr, Ordering::Acquire))
    }

    /// Lock-based edge: call immediately before releasing the lock, after
    /// the last write under it.
    pub(crate) fn lock_releasing(addr: usize) {
        with(|ck, tid| rmw_clocks(ck, tid, addr, Ordering::Release))
    }

    /// Committed read of a tracked non-atomic location.
    pub(crate) fn on_read(addr: usize, site: &'static str) {
        with(|ck, tid| {
            ck.bump_epoch(tid);
            if let Some(w) = ck.read_conflict(addr, tid) {
                ck.file("read/write", &w, tid, site, addr);
            }
            ck.record_read(addr, tid, site);
        })
    }

    /// Write to a tracked non-atomic location.
    pub(crate) fn on_write(addr: usize, site: &'static str) {
        with(|ck, tid| {
            ck.bump_epoch(tid);
            let (racy_write, racy_reads): (Option<Access>, Vec<Access>) = match ck.data.get(&addr) {
                Some(st) => (
                    st.write.as_ref().filter(|w| !ck.ordered(w, tid)).copied(),
                    st.reads
                        .iter()
                        .filter(|r| !ck.ordered(r, tid))
                        .copied()
                        .collect(),
                ),
                None => (None, Vec::new()),
            };
            if let Some(w) = racy_write {
                ck.file("write/write", &w, tid, site, addr);
            }
            for r in racy_reads {
                ck.file("read/write", &r, tid, site, addr);
            }
            let epoch = ck.threads[tid].get(tid);
            let st = ck.data.entry(addr).or_default();
            st.write = Some(Access { tid, epoch, site });
            st.reads.clear();
        })
    }

    /// A pending (not yet validated) racy-by-design read: the Chase-Lev
    /// thief slot read before its `age` CAS.
    #[derive(Debug, Default)]
    pub(crate) struct PendingRead {
        addr: usize,
        site: &'static str,
        conflict: Option<Access>,
        armed: bool,
    }

    /// Capture a speculative read; file nothing yet.
    pub(crate) fn speculative_read(addr: usize, site: &'static str) -> PendingRead {
        with(|ck, tid| {
            ck.bump_epoch(tid);
            PendingRead {
                addr,
                site,
                conflict: ck.read_conflict(addr, tid),
                armed: true,
            }
        })
    }

    /// The speculative read's value was actually used (the steal CAS
    /// succeeded): file the captured conflict, record the read.
    pub(crate) fn commit_read(pending: PendingRead) {
        if !pending.armed {
            return;
        }
        with(|ck, tid| {
            if let Some(w) = pending.conflict {
                ck.file("read/write", &w, tid, pending.site, pending.addr);
            }
            ck.record_read(pending.addr, tid, pending.site);
        })
    }

    /// Forget all tracking state for `len` bytes at `addr` — called when a
    /// tracked allocation is freed, so an unrelated reuse of the address by
    /// another thread is not misread as a race.
    pub(crate) fn forget_range(addr: usize, len: usize) {
        with(|ck, _tid| {
            let end = addr.saturating_add(len);
            let doomed: Vec<usize> = ck.data.range(addr..end).map(|(&a, _)| a).collect();
            for a in doomed {
                ck.data.remove(&a);
            }
            let doomed: Vec<usize> = ck.atomics.range(addr..end).map(|(&a, _)| a).collect();
            for a in doomed {
                ck.atomics.remove(&a);
            }
        })
    }

    /// Parent half of an explicit thread-spawn edge.
    pub(crate) fn fork_token() -> u64 {
        with(|ck, tid| {
            ck.bump_epoch(tid);
            let clock = ck.threads[tid].clone();
            ck.next_fork += 1;
            let token = ck.next_fork;
            ck.forks.insert(token, clock);
            token
        })
    }

    /// Child half: joins the parent's clock at spawn time.
    pub(crate) fn join_token(token: u64) {
        with(|ck, tid| {
            if let Some(clock) = ck.forks.remove(&token) {
                ck.threads[tid].join(&clock);
            }
        })
    }

    /// Number of race reports filed since the last [`reset`].
    pub fn report_count() -> u64 {
        lock().as_ref().map_or(0, |ck| ck.reports.len() as u64)
    }

    /// Drain and return the accumulated reports.
    pub fn take_reports() -> Vec<String> {
        let mut g = lock();
        match g.as_mut() {
            Some(ck) => {
                ck.seen_pairs.clear();
                std::mem::take(&mut ck.reports)
            }
            None => Vec::new(),
        }
    }

    /// Clear reports *and* all location state (clocks survive: they only
    /// ever add order, never remove it).
    pub fn reset() {
        let mut g = lock();
        if let Some(ck) = g.as_mut() {
            ck.reports.clear();
            ck.seen_pairs.clear();
            ck.data.clear();
            ck.atomics.clear();
        }
    }
}

#[cfg(feature = "hb")]
#[allow(unused_imports)]
pub(crate) use imp::PendingRead;
#[cfg(feature = "hb")]
pub(crate) use imp::{
    atomic_cas, atomic_load, atomic_rmw, atomic_store, commit_read, fence_seq_cst, forget_range,
    fork_token, join_token, lock_acquired, lock_releasing, on_read, on_write, speculative_read,
};
#[cfg(feature = "hb")]
pub use imp::{report_count, reset, take_reports};

#[cfg(not(feature = "hb"))]
mod stub {
    use std::sync::atomic::Ordering;

    /// Zero-sized stand-in for the checker's pending-read token.
    #[derive(Debug, Default)]
    pub(crate) struct PendingRead;

    #[inline(always)]
    pub(crate) fn atomic_load<T>(_addr: usize, _order: Ordering, op: impl FnOnce() -> T) -> T {
        op()
    }
    #[inline(always)]
    pub(crate) fn atomic_store<T>(_addr: usize, _order: Ordering, op: impl FnOnce() -> T) -> T {
        op()
    }
    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn atomic_rmw<T>(_addr: usize, _order: Ordering, op: impl FnOnce() -> T) -> T {
        op()
    }
    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn atomic_cas<V>(
        _addr: usize,
        _success: Ordering,
        _failure: Ordering,
        op: impl FnOnce() -> Result<V, V>,
    ) -> Result<V, V> {
        op()
    }
    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn fence_seq_cst<T>(op: impl FnOnce() -> T) -> T {
        op()
    }
    #[inline(always)]
    pub(crate) fn on_read(_addr: usize, _site: &'static str) {}
    #[inline(always)]
    pub(crate) fn on_write(_addr: usize, _site: &'static str) {}
    #[inline(always)]
    pub(crate) fn speculative_read(_addr: usize, _site: &'static str) -> PendingRead {
        PendingRead
    }
    #[inline(always)]
    pub(crate) fn commit_read(_pending: PendingRead) {}
    #[inline(always)]
    pub(crate) fn forget_range(_addr: usize, _len: usize) {}
    #[inline(always)]
    pub(crate) fn fork_token() -> u64 {
        0
    }
    #[inline(always)]
    pub(crate) fn join_token(_token: u64) {}
    #[inline(always)]
    pub(crate) fn lock_acquired(_addr: usize) {}
    #[inline(always)]
    pub(crate) fn lock_releasing(_addr: usize) {}

    /// Always zero without the `hb` feature.
    pub fn report_count() -> u64 {
        0
    }

    /// Always empty without the `hb` feature.
    pub fn take_reports() -> Vec<String> {
        Vec::new()
    }

    /// No-op without the `hb` feature.
    pub fn reset() {}
}

#[cfg(not(feature = "hb"))]
#[allow(unused_imports)]
pub(crate) use stub::PendingRead;
#[cfg(not(feature = "hb"))]
#[allow(unused_imports)]
pub(crate) use stub::{
    atomic_cas, atomic_load, atomic_rmw, atomic_store, commit_read, fence_seq_cst, forget_range,
    fork_token, join_token, lock_acquired, lock_releasing, on_read, on_write, speculative_read,
};
#[cfg(not(feature = "hb"))]
pub use stub::{report_count, reset, take_reports};

/// Shim atomics for the scheduler files outside the deque protocols
/// (`pool`, `sleep`, `injector`, `job`, `signal`, `trace`): drop-in
/// `std::sync::atomic` replacements that route every access through the
/// happens-before checker when `hb` is on, and are plain `std` re-exports
/// otherwise (including under `model`, whose DFS explorer never schedules
/// these words — it covers the deque words via [`crate::model::shim`]).
#[cfg(all(feature = "hb", not(feature = "model")))]
pub(crate) mod shim {
    use std::sync::atomic::Ordering;

    macro_rules! hb_atomic {
        ($(#[$doc:meta])* $Name:ident, $Std:ty, $T:ty) => {
            $(#[$doc])*
            #[derive(Debug)]
            #[repr(transparent)]
            pub struct $Name($Std);

            impl $Name {
                #[inline]
                pub fn new(v: $T) -> Self {
                    Self(<$Std>::new(v))
                }

                #[inline]
                fn addr(&self) -> usize {
                    self as *const _ as usize
                }

                #[inline]
                #[allow(dead_code)]
                pub fn load(&self, order: Ordering) -> $T {
                    super::atomic_load(self.addr(), order, || self.0.load(order))
                }

                #[inline]
                #[allow(dead_code)]
                pub fn store(&self, v: $T, order: Ordering) {
                    super::atomic_store(self.addr(), order, || self.0.store(v, order))
                }

                #[inline]
                #[allow(dead_code)]
                pub fn swap(&self, v: $T, order: Ordering) -> $T {
                    super::atomic_rmw(self.addr(), order, || self.0.swap(v, order))
                }

                #[inline]
                #[allow(dead_code)]
                pub fn compare_exchange(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    super::atomic_cas(self.addr(), success, failure, || {
                        self.0.compare_exchange(current, new, success, failure)
                    })
                }
            }
        };
    }

    hb_atomic!(
        /// Checker-instrumented `AtomicBool`.
        AtomicBool, std::sync::atomic::AtomicBool, bool
    );
    hb_atomic!(
        /// Checker-instrumented `AtomicU8`.
        AtomicU8, std::sync::atomic::AtomicU8, u8
    );
    hb_atomic!(
        /// Checker-instrumented `AtomicU32`.
        AtomicU32, std::sync::atomic::AtomicU32, u32
    );
    hb_atomic!(
        /// Checker-instrumented `AtomicU64`.
        AtomicU64, std::sync::atomic::AtomicU64, u64
    );
    hb_atomic!(
        /// Checker-instrumented `AtomicUsize`.
        AtomicUsize, std::sync::atomic::AtomicUsize, usize
    );

    impl AtomicU64 {
        #[inline]
        pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
            super::atomic_rmw(self.addr(), order, || self.0.fetch_add(v, order))
        }

        #[inline]
        pub fn fetch_or(&self, v: u64, order: Ordering) -> u64 {
            super::atomic_rmw(self.addr(), order, || self.0.fetch_or(v, order))
        }

        #[inline]
        pub fn fetch_and(&self, v: u64, order: Ordering) -> u64 {
            super::atomic_rmw(self.addr(), order, || self.0.fetch_and(v, order))
        }
    }

    impl AtomicUsize {
        #[inline]
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            super::atomic_rmw(self.addr(), order, || self.0.fetch_add(v, order))
        }

        #[inline]
        pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
            super::atomic_rmw(self.addr(), order, || self.0.fetch_sub(v, order))
        }
    }

    /// Checker-instrumented `AtomicPtr` (the injector's Treiber head and
    /// job chain links).
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        #[inline]
        pub fn new(p: *mut T) -> Self {
            Self(std::sync::atomic::AtomicPtr::new(p))
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            super::atomic_load(self.addr(), order, || self.0.load(order))
        }

        #[inline]
        pub fn store(&self, p: *mut T, order: Ordering) {
            super::atomic_store(self.addr(), order, || self.0.store(p, order))
        }

        #[inline]
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            super::atomic_rmw(self.addr(), order, || self.0.swap(p, order))
        }

        #[inline]
        #[allow(dead_code)]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            super::atomic_cas(self.addr(), success, failure, || {
                self.0.compare_exchange(current, new, success, failure)
            })
        }

        #[inline]
        #[allow(dead_code)]
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            super::atomic_cas(self.addr(), success, failure, || {
                self.0.compare_exchange_weak(current, new, success, failure)
            })
        }
    }
}

/// Plain std re-exports whenever the checker is compiled out (default and
/// `model` builds): the scheduler files pay exactly what they paid before
/// the shim threading (TypeId-asserted below).
#[cfg(not(all(feature = "hb", not(feature = "model"))))]
pub(crate) mod shim {
    pub use std::sync::atomic::{
        AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    };
}

#[cfg(test)]
mod tests {
    #[cfg(not(all(feature = "hb", not(feature = "model"))))]
    #[test]
    fn shims_are_std_aliases_when_hb_is_off() {
        use std::any::TypeId;
        assert_eq!(
            TypeId::of::<super::shim::AtomicBool>(),
            TypeId::of::<std::sync::atomic::AtomicBool>()
        );
        assert_eq!(
            TypeId::of::<super::shim::AtomicU8>(),
            TypeId::of::<std::sync::atomic::AtomicU8>()
        );
        assert_eq!(
            TypeId::of::<super::shim::AtomicU64>(),
            TypeId::of::<std::sync::atomic::AtomicU64>()
        );
        assert_eq!(
            TypeId::of::<super::shim::AtomicUsize>(),
            TypeId::of::<std::sync::atomic::AtomicUsize>()
        );
        assert_eq!(
            TypeId::of::<super::shim::AtomicPtr<u8>>(),
            TypeId::of::<std::sync::atomic::AtomicPtr<u8>>()
        );
    }

    #[cfg(all(feature = "hb", not(feature = "model")))]
    #[test]
    fn hb_shims_are_transparent() {
        // `#[repr(transparent)]`: instrumented wrappers add no bytes, so
        // struct layouts (CachePadded fields, Job headers) are unchanged.
        use std::mem::{align_of, size_of};
        assert_eq!(size_of::<super::shim::AtomicU64>(), size_of::<u64>());
        assert_eq!(
            align_of::<super::shim::AtomicU64>(),
            align_of::<std::sync::atomic::AtomicU64>()
        );
        assert_eq!(size_of::<super::shim::AtomicBool>(), size_of::<bool>());
        assert_eq!(
            size_of::<super::shim::AtomicPtr<u8>>(),
            size_of::<*mut u8>()
        );
    }

    /// Negative-test harness: seeded broken orderings the checker MUST
    /// report (mirroring how `tests/model.rs` keeps the known-unsound
    /// pairings as negative tests). Each test first runs the *sound*
    /// schedule as a control (zero reports), then flips the ordering
    /// switch and asserts a report naming both access sites appears.
    ///
    /// The scenarios are built from crate internals (`SplitDeque`,
    /// `StackJob`) with `std::sync` primitives for the *real*
    /// synchronization: std mutexes/joins are invisible to the checker, so
    /// the only checker-visible edges are the instrumented atomics under
    /// test — making the verdict deterministic, not schedule-dependent.
    #[cfg(all(feature = "hb", not(feature = "model")))]
    mod negative_harness {
        use crate::deque::{SplitDeque, Steal};
        use crate::hb;
        use crate::job::{Job, StackJob};
        use std::sync::Mutex;

        /// The broken-ordering switches are process-global; one negative
        /// scenario at a time.
        static NEG: Mutex<()> = Mutex::new(());

        /// Restore the sound orderings even if the test panics.
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                hb::negative::set_broken_grow_publish(false);
                hb::negative::set_broken_done_store(false);
            }
        }

        fn drain() -> Vec<String> {
            hb::take_reports()
        }

        /// Owner grows the ring (copying live slots into a fresh buffer),
        /// then a thief steals through the published buffer pointer. With
        /// the publish weakened to `Relaxed` the thief's committed slot
        /// read has no edge back to the copy — the exact bug class the
        /// Chase-Lev publish exists to prevent.
        fn grow_then_steal() -> Vec<String> {
            drain();
            let deque = SplitDeque::new(2);
            // Two pushes fill the capacity-2 ring; expose both (Release on
            // `public_bot` — the thief's only sound edge besides the
            // buffer publish).
            deque.push_bottom(0x100 as *mut Job);
            deque.push_bottom(0x200 as *mut Job);
            deque.expose_all();
            // Third push doubles the ring: live slots 0..2 are copied into
            // the new buffer and the buffer pointer is published with
            // `negative::grow_publish_order()`.
            deque.push_bottom(0x300 as *mut Job);
            assert_eq!(deque.capacity(), 4, "grow must have happened");
            // Thief on a fresh thread (no fork edge on purpose): its only
            // clock joins are the Acquire loads inside `pop_top`.
            std::thread::scope(|s| {
                s.spawn(|| match deque.pop_top() {
                    Steal::Ok(t) => assert_eq!(t as usize, 0x100),
                    other => panic!("steal must succeed, got {other:?}"),
                });
            });
            drain()
        }

        #[test]
        fn broken_grow_publish_is_reported_with_both_sites() {
            let _g = NEG.lock().unwrap_or_else(|e| e.into_inner());
            let _restore = Restore;
            // Control: the sound Release publish orders the copy before
            // the committed steal read.
            let sound = grow_then_steal();
            assert!(
                sound.is_empty(),
                "sound grow/steal must be race-free, got:\n{}",
                sound.join("\n")
            );
            hb::negative::set_broken_grow_publish(true);
            let broken = grow_then_steal();
            assert!(
                broken
                    .iter()
                    .any(|r| r.contains("ring slot (grow copy)")
                        && r.contains("split slot (pop_top)")),
                "Relaxed grow publish must be reported naming both sites, got:\n{}",
                broken.join("\n")
            );
        }

        /// Executor writes the job result, then publishes completion via
        /// the `done` flag; the joiner reads the result after observing
        /// `done`. With the store weakened to `Relaxed` the result write
        /// is unordered with the joiner's read.
        fn execute_then_join() -> Vec<String> {
            drain();
            let job = StackJob::new(|| 41usize + 1);
            let ptr = job.as_job_ptr() as usize;
            // Real fork edge: the executor inherits the owner's
            // pre-publish closure/result writes (a deque push would carry
            // this edge in the scheduler; here the handoff is direct).
            let fork = hb::fork_token();
            std::thread::scope(|s| {
                s.spawn(|| {
                    hb::join_token(fork);
                    // Safety: sole executor of a not-yet-run job.
                    unsafe { Job::execute(ptr as *const Job) };
                });
            });
            // The scope join is real synchronization (invisible to the
            // checker): `done` is physically visible, and the only
            // *checker* edge is the `done` store/load pair under test.
            assert!(job.is_done());
            // Safety: done observed, taken once.
            assert_eq!(unsafe { job.take_result() }, 42);
            drain()
        }

        #[test]
        fn broken_done_store_is_reported_with_both_sites() {
            let _g = NEG.lock().unwrap_or_else(|e| e.into_inner());
            let _restore = Restore;
            let sound = execute_then_join();
            assert!(
                sound.is_empty(),
                "sound execute/join must be race-free, got:\n{}",
                sound.join("\n")
            );
            hb::negative::set_broken_done_store(true);
            let broken = execute_then_join();
            assert!(
                broken
                    .iter()
                    .any(|r| r.contains("StackJob::result (run_erased)")
                        && r.contains("StackJob::result (take_result)")),
                "Relaxed done store must be reported naming both sites, got:\n{}",
                broken.join("\n")
            );
        }
    }

    #[cfg(not(feature = "hb"))]
    #[test]
    fn stubs_are_inert_by_default() {
        // The stub surface must be callable and observably do nothing, and
        // the pending-read token must be zero-sized (no per-steal cost).
        assert_eq!(std::mem::size_of::<super::PendingRead>(), 0);
        super::on_write(0x1000, "w");
        super::on_read(0x1000, "r");
        super::commit_read(super::speculative_read(0x1000, "s"));
        assert_eq!(super::report_count(), 0);
        assert!(super::take_reports().is_empty());
        use std::sync::atomic::Ordering;
        assert_eq!(super::negative::grow_publish_order(), Ordering::Release);
        assert_eq!(super::negative::done_store_order(), Ordering::Release);
    }
}
