//! The global injector: lock-light MPMC ingress for external task
//! submission ([`crate::ThreadPool::spawn`]), plus the joinable handle
//! machinery ([`JoinHandle`]).
//!
//! ## Why not a third deque protocol
//!
//! The paper's deques are strictly owner + thieves; external producers have
//! neither a deque nor a worker index, so submissions need a queue **any**
//! thread can push into. The injector keeps the synchronization-light
//! spirit by splitting producer and consumer sides:
//!
//! * **Producer side** (`incoming`): a Treiber stack of intrusively-linked
//!   jobs ([`crate::job::Job::next_ptr`]). One CAS per push, no allocation
//!   beyond the job itself, and [`Injector::push_batch`] links a whole
//!   chain locally and publishes it with a *single* CAS regardless of batch
//!   size.
//! * **Consumer side** (`ready`): a plain `VecDeque` under a mutex that
//!   only workers touch, and only when the advisory `len` gate says work
//!   exists. A worker that wins the lock and finds `ready` empty grabs the
//!   **entire** incoming stack with one `swap` and reverses it, restoring
//!   global FIFO submission order. Workers then pop in small batches
//!   (`INJECTOR_BATCH`), executing the first task and re-queueing the rest
//!   into their own deque — so injector contention is paid once per batch,
//!   not once per task, and stolen-from-injector work immediately becomes
//!   stealable through the normal deque protocol.
//!
//! The steal loop consults the injector only after a failed steal round
//! (`crate::worker::WorkerCtx::work_until`), so pools running pure
//! fork-join never touch it. §4's signal-window argument is untouched:
//! injector pops happen at task boundaries on the worker's own schedule,
//! never from handler context, and submissions reach deques exclusively via
//! `try_push_job` — the owner-only path the argument already covers.
//!
//! ## Handle lifecycle
//!
//! `spawn` wraps the user closure in a heap job that (1) runs it under
//! `catch_unwind`, (2) publishes the result into the shared [`TaskState`]
//! and wakes a blocked joiner, then (3) decrements the pool's outstanding
//! count. The state machine is `PENDING → (WAITING) → DONE`: `WAITING` is
//! entered only by a blocking external joiner (worker-thread joiners help
//! run tasks instead of blocking — a blocked worker could deadlock the very
//! pool that must run the task), and the completer takes the state's mutex
//! before notifying iff it observed `WAITING`, the classic no-lost-wakeup
//! handshake. Dropping a handle without joining is fine: the `Arc`ed state
//! outlives the task, and an unjoined task's panic payload is simply
//! dropped with the state (only `join` rethrows).

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic;
use std::ptr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::fault::{self, Site};
use crate::hb::{self, shim::AtomicPtr, shim::AtomicU32, shim::AtomicU8, shim::AtomicUsize};
use crate::job::{Job, NO_WAITER};

/// How many tasks a worker takes from the injector per visit: the first
/// runs immediately, the rest go into the worker's own deque. Amortizes the
/// consumer lock across a few tasks without letting one worker hoard a
/// burst that parked workers should share.
pub(crate) const INJECTOR_BATCH: usize = 4;

/// The pool-global ingress queue. See the module docs for the protocol.
pub(crate) struct Injector {
    /// Treiber stack of freshly-pushed jobs (LIFO; reversed on transfer).
    incoming: AtomicPtr<Job>,
    /// Advisory population count. Incremented after a push publishes,
    /// decremented as pops hand jobs out; `is_empty` is therefore a racy
    /// gate — the eventcount protocol and the timed-park backstop cover
    /// the transient windows, exactly like the deque emptiness checks.
    len: AtomicUsize,
    /// Consumer-side FIFO; worker-only, short critical sections.
    ready: Mutex<std::collections::VecDeque<*mut Job>>,
}

// Job pointers cross threads with queue ownership-transfer discipline,
// exactly like deque slots.
unsafe impl Send for Injector {}
unsafe impl Sync for Injector {}

impl Injector {
    pub(crate) fn new() -> Injector {
        Injector {
            incoming: AtomicPtr::new(ptr::null_mut()),
            len: AtomicUsize::new(0),
            ready: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Racy emptiness gate for the workers' parking recheck and steal-loop
    /// fallback.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len.load(Ordering::Relaxed) == 0
    }

    /// Approximate population (diagnostics and trace payloads).
    #[inline]
    pub(crate) fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Push one job. One CAS on the uncontended path. On a `faultpoints`-
    /// forced [`Site::InjectorPush`] fire the job is **not** enqueued and
    /// ownership stays with the caller, which degrades to running it
    /// inline — submissions are never lost.
    pub(crate) fn push(&self, job: *mut Job) -> Result<(), *mut Job> {
        if fault::fail_at(Site::InjectorPush) {
            return Err(job);
        }
        self.push_chain(job, job, 1);
        Ok(())
    }

    /// Push `jobs` as one chain with a single CAS. The slice order is
    /// submission order (restored on the consumer side by the reversal).
    /// Fault-forced rejection returns the whole batch to the caller.
    pub(crate) fn push_batch(&self, jobs: &[*mut Job]) -> Result<(), ()> {
        let (&first, rest) = match jobs.split_first() {
            Some(s) => s,
            None => return Ok(()),
        };
        if fault::fail_at(Site::InjectorPush) {
            return Err(());
        }
        // Link locally: stack order is reversed submission order, so chain
        // the slice back-to-front and publish the *last* element as head.
        let mut head = first;
        for &job in rest {
            // Safety: the caller owns every job until the CAS publishes.
            unsafe { (*job).next_ptr().store(head, Ordering::Relaxed) };
            head = job;
        }
        self.push_chain(head, first, jobs.len());
        Ok(())
    }

    /// Publish a pre-linked chain (`head` newest … `tail` oldest).
    fn push_chain(&self, head: *mut Job, tail: *mut Job, n: usize) {
        let mut cur = self.incoming.load(Ordering::Relaxed);
        loop {
            // Safety: `tail` is caller-owned until the CAS below succeeds.
            unsafe { (*tail).next_ptr().store(cur, Ordering::Relaxed) };
            // Release publishes the chain links and the jobs' closures.
            match self.incoming.compare_exchange_weak(
                cur,
                head,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.len.fetch_add(n, Ordering::Release);
    }

    /// Worker-side batch pop: up to `max` jobs in FIFO submission order.
    /// Returns an empty vec when the gate reads empty, the consumer lock is
    /// contended (another worker is already draining — let it), or a
    /// `faultpoints`-forced [`Site::InjectorPop`] fire empties the round.
    pub(crate) fn pop_batch(&self, max: usize) -> Vec<*mut Job> {
        if self.is_empty() {
            return Vec::new();
        }
        if fault::fail_at(Site::InjectorPop) {
            return Vec::new();
        }
        let mut ready = match self.ready.try_lock() {
            Some(g) => g,
            None => return Vec::new(),
        };
        // The consumer lock is a data-carrying edge the checker cannot see
        // on its own (parking_lot is not shimmed): worker A re-queues a
        // batch tail under it, worker B pops those jobs later. Model it as
        // an acquire/release pair on the mutex address.
        hb::lock_acquired(&self.ready as *const _ as usize);
        if ready.is_empty() {
            // Take the whole incoming stack in one swap; Acquire pairs with
            // the push's Release so the chain links are visible.
            let mut node = self.incoming.swap(ptr::null_mut(), Ordering::Acquire);
            while !node.is_null() {
                // Safety: the swap transferred ownership of the chain.
                let next = unsafe { (*node).next_ptr().swap(ptr::null_mut(), Ordering::Relaxed) };
                // Stack order is newest-first: push_front restores FIFO.
                ready.push_front(node);
                node = next;
            }
        }
        let take = max.min(ready.len());
        let batch: Vec<*mut Job> = ready.drain(..take).collect();
        hb::lock_releasing(&self.ready as *const _ as usize);
        drop(ready);
        if !batch.is_empty() {
            self.len.fetch_sub(batch.len(), Ordering::Release);
        }
        batch
    }
}

impl Drop for Injector {
    fn drop(&mut self) {
        // `shutdown` drains `outstanding` to zero before the pool drops, so
        // a non-empty injector here means the drain protocol was bypassed
        // (e.g. a panicking teardown). Executing foreign closures inside a
        // destructor is worse than leaking them; leak loudly instead.
        debug_assert!(
            self.is_empty(),
            "injector dropped with {} task(s) queued",
            self.approx_len()
        );
    }
}

/// Result of a completed spawned task: the value, or the panic payload.
type TaskResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

const PENDING: u8 = 0;
const WAITING: u8 = 1;
const DONE: u8 = 2;

/// Shared completion state behind a [`JoinHandle`].
pub(crate) struct TaskState<T> {
    /// `PENDING → (WAITING) → DONE`; see the module docs.
    status: AtomicU8,
    sync: Mutex<()>,
    cv: Condvar,
    /// Index of a **pool-worker** joiner parked in its sleeper slot, or
    /// [`NO_WAITER`]. The condvar handshake above only serves *external*
    /// joiners; a worker-side `join` helps run tasks and parks in the
    /// pool's sleeper when nothing is runnable, so completion must route a
    /// targeted `wake_worker` or the joiner idles on the 50ms backstop.
    /// Same Dekker-style SeqCst pairing as [`crate::job::Job::waiter`].
    pub(crate) waiter: AtomicU32,
    /// Written once by the completer (before the `DONE` swap releases it),
    /// taken once by the joiner (after acquiring `DONE`).
    result: UnsafeCell<Option<TaskResult<T>>>,
}

// The result crosses from the executing worker to the joiner; the status
// handshake (Release swap / Acquire load) is the synchronization.
unsafe impl<T: Send> Send for TaskState<T> {}
unsafe impl<T: Send> Sync for TaskState<T> {}

impl<T> TaskState<T> {
    pub(crate) fn new() -> TaskState<T> {
        TaskState {
            status: AtomicU8::new(PENDING),
            sync: Mutex::new(()),
            cv: Condvar::new(),
            waiter: AtomicU32::new(NO_WAITER),
            result: UnsafeCell::new(None),
        }
    }

    /// Completer side: publish the result and wake a blocked joiner.
    pub(crate) fn complete(&self, result: TaskResult<T>) {
        // Dekker pairing with the worker-side joiner (mirrors
        // `Job::mark_done`): load `waiter` SeqCst *before* publishing DONE.
        // A joiner that registered before this load gets a targeted wake; a
        // joiner that registers after it observes DONE on its pre-park
        // recheck (the registration store and the recheck load are both
        // SeqCst, so at least one side always sees the other).
        let waiter = self.waiter.load(Ordering::SeqCst);
        // Safety: exactly one completer (the task runs once), and no reader
        // touches the slot until `DONE` is visible.
        hb::on_write(self.result.get() as usize, "TaskState::result (complete)");
        unsafe { *self.result.get() = Some(result) };
        let prev = self.status.swap(DONE, Ordering::AcqRel);
        if prev == WAITING {
            // Taking the lock orders us after the joiner's last status
            // check inside its wait loop: the notify cannot land in the
            // window between that check and the condvar enqueue.
            let _g = self.sync.lock();
            self.cv.notify_all();
        }
        crate::worker::wake_waiter(waiter);
    }

    #[inline]
    pub(crate) fn is_done(&self) -> bool {
        self.status.load(Ordering::Acquire) == DONE
    }

    /// Block the calling (non-worker) thread until completion.
    fn block_until_done(&self) {
        if self.is_done() {
            return;
        }
        // Announce the waiter; a failed CAS means DONE beat us to it.
        if self
            .status
            .compare_exchange(PENDING, WAITING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let mut g = self.sync.lock();
        while self.status.load(Ordering::Acquire) != DONE {
            self.cv.wait(&mut g);
        }
    }

    /// Take the result after `is_done`.
    ///
    /// # Safety
    /// At most once, only after `is_done()` returned true.
    unsafe fn take_result(&self) -> TaskResult<T> {
        hb::on_read(
            self.result.get() as usize,
            "TaskState::result (take_result)",
        );
        (*self.result.get())
            .take()
            .expect("task result taken twice")
    }
}

impl<T> Drop for TaskState<T> {
    fn drop(&mut self) {
        // The Arc allocation is about to be freed and its address recycled;
        // drop the checker's history so the next occupant starts clean.
        hb::forget_range(self as *const _ as usize, std::mem::size_of::<Self>());
    }
}

/// An owned handle to a task submitted with [`crate::ThreadPool::spawn`].
///
/// Dropping the handle detaches the task (it still runs to completion
/// before [`crate::ThreadPool::shutdown`] returns); [`JoinHandle::join`]
/// blocks until completion and returns the closure's value, rethrowing its
/// panic. Joining **from a worker thread** (e.g. inside another task) helps
/// execute queued work instead of blocking, so a task may join a sibling
/// without deadlocking the pool.
pub struct JoinHandle<T> {
    pub(crate) state: Arc<TaskState<T>>,
}

impl<T: Send> JoinHandle<T> {
    /// Has the task finished (successfully or by panicking)?
    pub fn is_finished(&self) -> bool {
        self.state.is_done()
    }

    /// Wait for the task and return its result, rethrowing the task's
    /// panic on this thread.
    pub fn join(self) -> T {
        let ctx = crate::worker::current_ctx();
        if ctx.is_null() {
            self.state.block_until_done();
        } else {
            // Worker thread: helping loop. The condvar wake is useless here
            // (we must keep scheduling to make progress), so run
            // local/stolen/injector work until the state flips — and when
            // even that runs dry, register in `state.waiter` so the
            // completer's `wake_worker` ends the park immediately instead
            // of the 1ms poll backstop burning spurious wakes.
            // Safety: installed ctx pointers outlive the call on this
            // thread (CtxGuard discipline).
            unsafe {
                crate::worker::help_until(&*ctx, || self.state.is_done(), Some(&self.state.waiter))
            };
        }
        // Safety: DONE observed; sole consumer (join takes self).
        match unsafe { self.state.take_result() } {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("finished", &self.state.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The opaque-cookie trick from the deque tests cannot exercise the
    // intrusive link (push dereferences `next_ptr`), so these tests use
    // real no-op heap jobs throughout.
    fn real_job() -> *mut Job {
        crate::job::HeapJob::push_new(|| {})
    }

    #[test]
    fn fifo_order_across_push_and_batch() {
        let inj = Injector::new();
        let a = real_job();
        let b = real_job();
        let c = real_job();
        let d = real_job();
        inj.push(a).unwrap();
        inj.push_batch(&[b, c]).unwrap();
        inj.push(d).unwrap();
        assert_eq!(inj.approx_len(), 4);
        let got = inj.pop_batch(16);
        assert_eq!(got, vec![a, b, c, d], "submission order must survive");
        assert!(inj.is_empty());
        for j in got {
            // Execute to free the heap jobs.
            unsafe { Job::execute(j) };
        }
    }

    #[test]
    fn pop_batch_caps_at_max_and_preserves_remainder() {
        let inj = Injector::new();
        let jobs: Vec<_> = (0..7).map(|_| real_job()).collect();
        inj.push_batch(&jobs).unwrap();
        let first = inj.pop_batch(4);
        assert_eq!(first, jobs[..4]);
        assert_eq!(inj.approx_len(), 3);
        let rest = inj.pop_batch(4);
        assert_eq!(rest, jobs[4..]);
        assert!(inj.pop_batch(4).is_empty());
        for j in jobs {
            unsafe { Job::execute(j) };
        }
    }

    #[test]
    fn empty_pop_is_cheap_and_empty_batch_push_ok() {
        let inj = Injector::new();
        assert!(inj.pop_batch(4).is_empty());
        inj.push_batch(&[]).unwrap();
        assert!(inj.is_empty());
    }

    #[test]
    fn concurrent_producers_no_loss_no_duplication() {
        use std::collections::HashSet;

        const PRODUCERS: usize = 8;
        const PER: usize = 500;
        let inj = Injector::new();
        let taken = Mutex::new(Vec::<usize>::new());
        // Producers push real jobs tagged via a side map (addresses as
        // plain usize so the map is Send); consumers drain until every
        // producer finished *and* the queue reads empty.
        let ids = Mutex::new(std::collections::HashMap::<usize, usize>::new());
        let producing = AtomicUsize::new(PRODUCERS);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let inj = &inj;
                let ids = &ids;
                let producing = &producing;
                s.spawn(move || {
                    for i in 0..PER {
                        let j = real_job();
                        ids.lock().insert(j as usize, p * PER + i);
                        inj.push(j).unwrap();
                    }
                    producing.fetch_sub(1, Ordering::Release);
                });
            }
            for _ in 0..2 {
                let inj = &inj;
                let taken = &taken;
                let ids = &ids;
                let producing = &producing;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let batch = inj.pop_batch(INJECTOR_BATCH);
                        if batch.is_empty() {
                            if producing.load(Ordering::Acquire) == 0 && inj.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                            continue;
                        }
                        for j in batch {
                            local.push(ids.lock()[&(j as usize)]);
                            unsafe { Job::execute(j) };
                        }
                    }
                    taken.lock().extend(local);
                });
            }
        });
        let all = taken.into_inner();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "a task was executed twice");
        assert_eq!(set.len(), PRODUCERS * PER, "a task was lost");
    }

    #[test]
    fn task_state_handshake_external_join() {
        let state = Arc::new(TaskState::<u32>::new());
        let s2 = Arc::clone(&state);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            s2.complete(Ok(42));
        });
        let h = JoinHandle { state };
        assert_eq!(h.join(), 42);
        t.join().unwrap();
    }

    #[test]
    fn task_state_done_before_join_does_not_block() {
        let state = Arc::new(TaskState::<&'static str>::new());
        state.complete(Ok("done"));
        let h = JoinHandle { state };
        assert!(h.is_finished());
        assert_eq!(h.join(), "done");
    }
}
