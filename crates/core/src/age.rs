//! The two-field `age` word shared by the ABP and split deques.
//!
//! Both deques guard their top end with a single atomic word holding the
//! index of the top-most element (`top`) and a monotonically growing `tag`
//! that prevents the ABA problem on the reset path (Listing 2 of the paper,
//! after Dechev et al.). The two `u32` halves are packed into one `u64` so a
//! plain `AtomicU64` compare-and-swap updates them together.

use std::sync::atomic::Ordering;

use crate::model::shim::{self, AtomicU64};

/// Packed `{tag, top}` value. `top` lives in the low 32 bits so that the
/// common "bump top by one" update is an add on the raw word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Age {
    /// ABA-avoidance epoch, bumped every time the deque is reset.
    pub tag: u32,
    /// Index of the deque's top-most element.
    pub top: u32,
}

impl Age {
    /// The all-zero age a fresh deque starts with.
    pub const ZERO: Age = Age { tag: 0, top: 0 };

    /// Pack into the raw `u64` representation.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.tag as u64) << 32) | self.top as u64
    }

    /// Unpack from the raw `u64` representation.
    #[inline]
    pub fn unpack(raw: u64) -> Age {
        Age {
            tag: (raw >> 32) as u32,
            top: raw as u32,
        }
    }

    /// This age with `top` advanced by one (a successful steal). Wraps:
    /// `top` is an absolute ring index, monotone modulo 2³² within an era
    /// (ordering comparisons against it go through the wrap-safe signed
    /// distance in `crate::deque`).
    #[inline]
    pub fn with_top_incremented(self) -> Age {
        Age {
            tag: self.tag,
            top: self.top.wrapping_add(1),
        }
    }

    /// This age with `top` advanced by `k` (a successful batch steal of `k`
    /// tasks validated by a single CAS). Wraps like
    /// [`Age::with_top_incremented`]; `with_top_advanced(1)` is identical to
    /// it.
    #[inline]
    pub fn with_top_advanced(self, k: u32) -> Age {
        Age {
            tag: self.tag,
            top: self.top.wrapping_add(k),
        }
    }

    /// The age after a deque reset: `top` back to zero, `tag` bumped so
    /// in-flight thieves holding the old age fail their CAS.
    #[inline]
    pub fn reset(self) -> Age {
        Age {
            tag: self.tag.wrapping_add(1),
            top: 0,
        }
    }
}

/// An atomic [`Age`] cell.
///
/// Backed by the [`crate::model::shim`] atomic so that, under the opt-in
/// `model` feature, every `age` access is a scheduling point of the
/// interleaving explorer; the default build is a plain `AtomicU64`.
#[derive(Debug)]
pub struct AtomicAge(AtomicU64);

impl AtomicAge {
    /// New cell holding [`Age::ZERO`].
    pub fn new() -> Self {
        AtomicAge(shim::named_u64(Age::ZERO.pack(), "age"))
    }

    /// Load with the given ordering.
    #[inline]
    pub fn load(&self, order: Ordering) -> Age {
        Age::unpack(self.0.load(order))
    }

    /// Store with the given ordering.
    #[inline]
    pub fn store(&self, age: Age, order: Ordering) {
        self.0.store(age.pack(), order)
    }

    /// Single-word compare-and-exchange over both fields.
    ///
    /// The caller is responsible for accounting the CAS via
    /// [`lcws_metrics::record_cas`]; this type stays measurement-free so the
    /// instrumentation sites mirror the paper's listings exactly.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Age,
        new: Age,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Age, Age> {
        self.0
            .compare_exchange(current.pack(), new.pack(), success, failure)
            .map(Age::unpack)
            .map_err(Age::unpack)
    }
}

impl Default for AtomicAge {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for &(tag, top) in &[
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (u32::MAX, u32::MAX),
            (0xDEAD_BEEF, 0x1234_5678),
        ] {
            let a = Age { tag, top };
            assert_eq!(Age::unpack(a.pack()), a);
        }
    }

    #[test]
    fn top_lives_in_low_bits() {
        let a = Age { tag: 0, top: 7 };
        assert_eq!(a.pack(), 7);
        let b = Age { tag: 1, top: 0 };
        assert_eq!(b.pack(), 1u64 << 32);
    }

    #[test]
    fn increment_and_reset() {
        let a = Age { tag: 3, top: 9 };
        assert_eq!(a.with_top_incremented(), Age { tag: 3, top: 10 });
        assert_eq!(a.with_top_advanced(1), a.with_top_incremented());
        assert_eq!(a.with_top_advanced(5), Age { tag: 3, top: 14 });
        // Multi-slot advance wraps like the single-slot one.
        let e = Age {
            tag: 3,
            top: u32::MAX - 1,
        };
        assert_eq!(e.with_top_advanced(3), Age { tag: 3, top: 1 });
        assert_eq!(a.reset(), Age { tag: 4, top: 0 });
        // Tag wraps instead of overflowing.
        let m = Age {
            tag: u32::MAX,
            top: 5,
        };
        assert_eq!(m.reset(), Age { tag: 0, top: 0 });
        // `top` wraps too: it is an absolute index modulo 2³² within an
        // era, so a steal at `top == u32::MAX` must carry into 0.
        let w = Age {
            tag: 2,
            top: u32::MAX,
        };
        assert_eq!(w.with_top_incremented(), Age { tag: 2, top: 0 });
    }

    #[test]
    fn atomic_cas_success_and_failure() {
        let cell = AtomicAge::new();
        let cur = cell.load(Ordering::Relaxed);
        assert_eq!(cur, Age::ZERO);
        let next = cur.with_top_incremented();
        assert!(cell
            .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok());
        // Stale CAS fails and reports the live value.
        let err = cell
            .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            .unwrap_err();
        assert_eq!(err, next);
    }
}
