//! POSIX-signal plumbing for the signal-based LCWS schedulers (§4).
//!
//! A thief that finds a victim's public deque part empty — but its private
//! part non-empty — sends the victim `SIGUSR1` via `pthread_kill`. The
//! victim's handler transfers work from the private to the public part of
//! its own split deque (`update_public_bottom`), so work-exposure requests
//! are served in **constant time**, up to OS signal-delivery latency —
//! the property that separates LCWS from Lace and from the user-space
//! implementation, and that the paper's asymptotic runtime bound requires.
//!
//! ## Async-signal-safety
//!
//! The handler only:
//! 1. reads a `#[thread_local]`-style `Cell` pointer (const-initialized
//!    `thread_local!`, touched by the worker prologue before any signal can
//!    target the thread, so no lazy initialization runs in the handler),
//! 2. performs Relaxed/Release atomic loads and stores on the thread's own
//!    split deque, and
//! 3. bumps plain `Cell` counters in the same thread's TLS.
//!
//! No allocation, locking, or syscalls — all of which POSIX permits in a
//! handler. The §4 owner-vs-handler interleaving is handled by the
//! `SignalSafe` `pop_bottom` / exposure-policy pairing (see
//! [`crate::deque::SplitDeque`]).

use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::Once;

use lcws_metrics as metrics;

use crate::deque::{ExposurePolicy, SplitDeque};
use crate::fault::{self, Site};
use crate::hb::shim::AtomicBool;
use crate::trace;

/// The signal used for work-exposure requests, as in the paper's Listing 3.
pub const EXPOSE_SIGNAL: libc::c_int = libc::SIGUSR1;

/// Everything the handler needs: the interrupted worker's own deque and the
/// scheduler's exposure policy. Stored at a stable address for the duration
/// of a worker's participation in a pool run.
pub(crate) struct HandlerCtx {
    pub deque: *const SplitDeque,
    pub policy: ExposurePolicy,
    /// Deferred-wake flag for the sleeper subsystem (null to disable).
    /// The handler must **not** wake sleepers itself — condvar
    /// notification locks a mutex the interrupted thread might hold, which
    /// is not async-signal-safe. It only stores `true` here; the owner
    /// drains the flag on its next deque access and performs the wake
    /// outside signal context.
    pub wake_pending: *const AtomicBool,
}

thread_local! {
    /// Pointer to the current worker's [`HandlerCtx`]; null whenever the
    /// thread is not acting as a worker (the handler then no-ops, which
    /// safely absorbs stragglers delivered right after a run finishes).
    static HANDLER_CTX: Cell<*const HandlerCtx> = const { Cell::new(std::ptr::null()) };
}

/// Three-argument (`SA_SIGINFO`) handler. Everything in here — including
/// the [`trace`] records, which are plain TLS ring-buffer stores plus
/// `clock_gettime(CLOCK_MONOTONIC)` — is on the POSIX async-signal-safe
/// list; see the module docs.
extern "C" fn expose_handler(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    _uctx: *mut libc::c_void,
) {
    // Signal-handler context: injected actions must be spin delays only.
    fault::point(Site::HandlerEntry);
    trace::record(trace::EventKind::HandlerEntry, 0);
    let ctx = HANDLER_CTX.with(|c| c.get());
    if ctx.is_null() {
        return;
    }
    // Safety: the pointer was installed by this thread's worker prologue and
    // is cleared before the referent is dropped (guard in worker.rs); the
    // handler runs on the owning thread, so `update_public_bottom`'s
    // owner-only contract holds.
    unsafe {
        metrics::bump(metrics::Counter::ExposureRequest);
        let exposed = (*(*ctx).deque).update_public_bottom((*ctx).policy);
        trace::record(trace::EventKind::HandlerExpose, exposed as u32);
        // Exposed work could feed a parked thief, but waking from a signal
        // handler is forbidden (see `HandlerCtx::wake_pending`): record the
        // event with a plain atomic store and let the owner wake.
        if exposed > 0 && !(*ctx).wake_pending.is_null() {
            (*(*ctx).wake_pending).store(true, Ordering::Release);
        }
    }
}

/// Install the process-wide `SIGUSR1` handler (idempotent).
///
/// `SA_RESTART` keeps interrupted slow syscalls (condvar waits between pool
/// runs, I/O in user code) transparent to their callers. `SA_SIGINFO` is
/// set because the handler uses the three-argument `sa_sigaction`
/// signature: registering a 1-arg handler through the `sa_sigaction` field
/// happens to work on Linux only because glibc unions the two fields, and
/// the flag makes the registration match the handler ABI on every POSIX
/// target.
pub(crate) fn install_handler() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| unsafe {
        let mut sa: libc::sigaction = std::mem::zeroed();
        sa.sa_sigaction = expose_handler as *const () as usize;
        sa.sa_flags = libc::SA_RESTART | libc::SA_SIGINFO;
        libc::sigemptyset(&mut sa.sa_mask);
        let rc = libc::sigaction(EXPOSE_SIGNAL, &sa, std::ptr::null_mut());
        assert_eq!(rc, 0, "sigaction(SIGUSR1) failed");
    });
}

/// Point the current thread's handler at `ctx` (null to disarm).
///
/// # Safety
/// `ctx`, when non-null, must stay valid until replaced or cleared.
pub(crate) unsafe fn set_handler_ctx(ctx: *const HandlerCtx) {
    HANDLER_CTX.with(|c| c.set(ctx));
}

/// This thread's pthread handle, for later [`notify`] calls.
pub(crate) fn current_pthread() -> libc::pthread_t {
    unsafe { libc::pthread_self() }
}

/// Extra `pthread_kill` attempts after the first before giving up and
/// reporting failure to the caller (capped backoff: one `spin_loop` burst
/// between attempts). Transient kernel-side refusals (EAGAIN on some
/// platforms) are retried; a dead target (ESRCH/EINVAL) fails fast.
const SEND_RETRIES: u32 = 2;

/// Send a work-exposure request to `target` (a live pool worker's pthread
/// handle, stored as `u64` in the pool's worker table).
///
/// Targets are pool threads that normally outlive every run, but a victim
/// racing with teardown can make `pthread_kill` fail (ESRCH/EINVAL). That
/// failure is detected in release builds too, counted, and surfaced to the
/// caller so the steal request can be rerouted through the user-space
/// `targeted`-flag path instead of being silently dropped.
///
/// The supervision layer (DESIGN.md §5e) keeps corpses out of here
/// entirely: a dying worker zeroes its pthread slot *before* raising its
/// death flag, and `signal_or_flag` treats a zero handle as "unreachable,
/// use the fallback flag" — so after a worker death, thieves fail fast in
/// user space rather than racing `pthread_kill` against thread teardown
/// (a handle can be recycled by the OS once the thread is joined, making a
/// late kill target an unrelated thread; the zero-handle gate closes that).
pub(crate) fn notify(target: u64) -> Result<(), libc::c_int> {
    let mut rc = send_once(target);
    let mut attempt = 0;
    while rc == libc::EAGAIN && attempt < SEND_RETRIES {
        for _ in 0..(64 << attempt) {
            std::hint::spin_loop();
        }
        attempt += 1;
        rc = send_once(target);
    }
    // `SignalSent` means *delivered*: the paper's Fig. 8 counts signals that
    // actually reached a victim, so a failed send must not inflate it (it
    // lands in `SignalSendFailed` instead) and each EAGAIN re-send shows up
    // only in `SignalSendAttempt` (bumped per attempt in `send_once`).
    if rc == 0 {
        metrics::bump(metrics::Counter::SignalSent);
        Ok(())
    } else {
        metrics::bump(metrics::Counter::SignalSendFailed);
        Err(rc)
    }
}

/// One raw `pthread_kill` attempt, with the fault-injection hook that lets
/// chaos tests force the failure outcome without a racing thread exit.
fn send_once(target: u64) -> libc::c_int {
    metrics::bump(metrics::Counter::SignalSendAttempt);
    if fault::fail_at(Site::SignalSend) {
        return libc::ESRCH;
    }
    unsafe { libc::pthread_kill(target as libc::pthread_t, EXPOSE_SIGNAL) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn handler_noops_without_ctx() {
        install_handler();
        // Deliver a signal to ourselves with no ctx installed: must be a
        // no-op rather than a crash.
        unsafe {
            libc::pthread_kill(libc::pthread_self(), EXPOSE_SIGNAL);
        }
        // If we got here, the handler ran (or the signal is pending and will
        // run at return) without touching a null context.
    }

    #[test]
    fn signal_triggers_exposure_on_target_thread() {
        install_handler();
        metrics::touch();
        let deque = Arc::new(SplitDeque::new(16));
        let ready = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));

        let d2 = Arc::clone(&deque);
        let ready2 = Arc::clone(&ready);
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            metrics::touch();
            // Owner thread: private task, handler armed.
            d2.push_bottom(0x10 as *mut _);
            let ctx = HandlerCtx {
                deque: &*d2,
                policy: ExposurePolicy::One,
                wake_pending: std::ptr::null(),
            };
            unsafe { set_handler_ctx(&ctx) };
            ready2.store(true, Ordering::Release);
            // Simulate a long sequential task: spin until told to stop.
            while !stop2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            unsafe { set_handler_ctx(std::ptr::null()) };
        });

        while !ready.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let target = {
            // `pthread_t` isn't exposed by std; grab it via a side channel:
            // signal the whole thread by its JoinHandle's pthread id.
            use std::os::unix::thread::JoinHandleExt;
            handle.as_pthread_t()
        };
        // Thief: request exposure and wait until the boundary moves.
        let mut tries = 0;
        while deque.public_len() == 0 {
            notify(target).expect("live target must accept SIGUSR1");
            std::thread::sleep(std::time::Duration::from_millis(1));
            tries += 1;
            assert!(tries < 5000, "exposure request never handled");
        }
        assert_eq!(deque.public_len(), 1, "exactly one task exposed");
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }
}
