//! Type-erased, run-once job objects stored in the work-stealing deques.
//!
//! A deque slot holds a thin `*mut Job` pointer. `Job` is the common header
//! of two concrete layouts:
//!
//! * [`StackJob`] — lives in the stack frame of a `join`; holds the closure
//!   and a slot for its result. The frame outlives the job because `join`
//!   does not return until the job's `done` flag is set.
//! * [`HeapJob`] — boxed closure spawned into a [`crate::scope`]; frees
//!   itself after running and decrements the scope's pending counter.
//!
//! Execution goes through an erased `unsafe fn(*const Job)` stored in the
//! header (a hand-rolled single-method vtable, so deque slots stay one word
//! wide — the layout the paper's C++ `Task*` arrays use).
//!
//! Panic discipline: job bodies run under `catch_unwind`. A `StackJob`
//! parks the payload for the joining worker to rethrow; a `HeapJob` hands it
//! to its scope. Workers themselves never unwind across the steal loop.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::Ordering;

use crate::hb::{self, shim::AtomicBool, shim::AtomicPtr, shim::AtomicU32};

/// Sentinel for [`Job`]'s waiter slot: no worker registered for a
/// completion wake.
pub(crate) const NO_WAITER: u32 = u32::MAX;

/// Common header of every job. Must be the first field of each concrete
/// job type so a `*mut Job` can be recovered from the concrete pointer.
#[repr(C)]
pub struct Job {
    /// Erased entry point; takes the header pointer and runs the job once.
    run_fn: unsafe fn(*const Job),
    /// Set (release) after the job body finished — successfully or by
    /// panicking. Waiters acquire-load it before touching the result.
    done: AtomicBool,
    /// Intrusive link for the global injector's incoming stack; null while
    /// the job is not enqueued there (deque-resident jobs never use it).
    next: AtomicPtr<Job>,
    /// Worker index of a join waiter registered for a targeted completion
    /// wake, or [`NO_WAITER`]. Read by the executor immediately *before*
    /// publishing `done` — once `done` is visible the waiter may return and
    /// free the job, so the executor must never touch the header after that
    /// store (see [`Job::mark_done`]).
    waiter: AtomicU32,
}

impl Job {
    fn new(run_fn: unsafe fn(*const Job)) -> Job {
        Job {
            run_fn,
            done: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
            waiter: AtomicU32::new(NO_WAITER),
        }
    }

    /// Execute the job.
    ///
    /// # Safety
    /// `ptr` must point to a live, not-yet-executed job of the concrete type
    /// `run_fn` expects, and no other thread may execute it concurrently
    /// (deque ownership transfer guarantees this).
    #[inline]
    pub unsafe fn execute(ptr: *const Job) {
        ((*ptr).run_fn)(ptr)
    }

    /// Has the job finished running?
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Publish completion and return the waiter registered for a targeted
    /// wake (or [`NO_WAITER`]).
    ///
    /// The waiter slot is loaded **before** the `done` store on purpose: a
    /// joiner that observes `done` may immediately return and pop the
    /// `StackJob`'s frame (or a `HeapJob` free itself), so this is the last
    /// instant the header is guaranteed alive. The caller delivers the wake
    /// through pool state, never through the job. A registration landing
    /// after this load and before the waiter's park-recheck can miss both
    /// signals; the waiter's timed backstop bounds that window (see
    /// `crate::sleep`).
    fn mark_done(&self) -> u32 {
        let waiter = self.waiter.load(Ordering::SeqCst);
        // `done_store_order()` is a compile-time `Release` unless an hb
        // negative test deliberately weakens it to demonstrate the checker
        // catches the severed result-publication edge.
        self.done.store(true, hb::negative::done_store_order());
        waiter
    }

    /// Register worker `index` for a targeted wake when this job completes.
    /// SeqCst so the store orders with the sleeper-mask announcement that
    /// follows in `park` (see `crate::sleep` for the pairing argument).
    #[inline]
    pub(crate) fn set_waiter(&self, index: u32) {
        self.waiter.store(index, Ordering::SeqCst);
    }

    /// Withdraw a completion-wake registration.
    #[inline]
    pub(crate) fn clear_waiter(&self) {
        self.waiter.store(NO_WAITER, Ordering::SeqCst);
    }

    /// Intrusive injector link (crate-internal; used only while the job
    /// sits in the global injector's incoming stack).
    #[inline]
    pub(crate) fn next_ptr(&self) -> &AtomicPtr<Job> {
        &self.next
    }
}

/// Result of a completed job body: the value, or the panic payload.
type JobResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// A run-once job allocated in the caller's stack frame (used by `join`).
///
/// The lifetime contract is enforced by the caller: `join` keeps the frame
/// alive until [`Job::is_done`] is observed true.
#[repr(C)]
pub struct StackJob<F, R> {
    job: Job,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<JobResult<R>>>,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    /// Wrap `func` into a pushable job.
    pub fn new(func: F) -> Self {
        StackJob {
            job: Job::new(Self::run_erased),
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
        }
    }

    /// Header pointer to push into a deque.
    ///
    /// Doubles as the checker's record of the owner's pre-publication
    /// writes to the closure/result cells: it runs on the settled stack
    /// binding (unlike `new`, whose local may still move) and immediately
    /// precedes the deque push that publishes them.
    pub fn as_job_ptr(&self) -> *mut Job {
        hb::on_write(self.func.get() as usize, "StackJob::func (pre-publish)");
        hb::on_write(self.result.get() as usize, "StackJob::result (pre-publish)");
        &self.job as *const Job as *mut Job
    }

    /// Whether the job body has completed (panicked counts as completed).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.job.is_done()
    }

    unsafe fn run_erased(ptr: *const Job) {
        let this = ptr as *const StackJob<F, R>;
        // Ownership: exactly one executor reaches this point (the deque hands
        // a task to exactly one taker), so the closure slot is uncontended.
        hb::on_read((*this).func.get() as usize, "StackJob::func (run_erased)");
        let func = (*(*this).func.get())
            .take()
            .expect("StackJob executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        hb::on_write(
            (*this).result.get() as usize,
            "StackJob::result (run_erased)",
        );
        *(*this).result.get() = Some(result.map_err(|e| e as Box<dyn Any + Send>));
        // `mark_done` may be the frame's last valid access (the joiner can
        // return as soon as `done` is visible); the wake goes through pool
        // state only.
        let waiter = (*this).job.mark_done();
        crate::worker::wake_waiter(waiter);
    }

    /// Take the result after observing `is_done()`, rethrowing a panic from
    /// the job body on the joining thread.
    ///
    /// # Safety
    /// Must be called at most once, only after `is_done()` returned true.
    pub unsafe fn take_result(&self) -> R {
        debug_assert!(self.is_done());
        hb::on_read(self.result.get() as usize, "StackJob::result (take_result)");
        match (*self.result.get()).take().expect("result taken twice") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Run the job inline on the current thread (the "pop it back" path of
    /// `join`) and return its result directly.
    ///
    /// # Safety
    /// Same contract as [`Job::execute`]: sole ownership, not yet executed.
    pub unsafe fn run_inline(&self) -> R {
        Job::execute(self.as_job_ptr());
        self.take_result()
    }
}

// The job is handed between threads through the deque; the closure and its
// result must therefore be sendable. The pointer-based handoff is what makes
// this `unsafe impl` necessary.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> Drop for StackJob<F, R> {
    fn drop(&mut self) {
        // The frame is about to be reused (same thread, or a respawned
        // worker mapped onto the dead worker's stack range); drop the
        // checker's access history for it.
        hb::forget_range(self as *const _ as usize, std::mem::size_of::<Self>());
    }
}

/// A boxed, self-freeing job used by [`crate::scope`] spawns.
#[repr(C)]
pub struct HeapJob<F> {
    job: Job,
    func: Option<F>,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Box `func` and leak it as a job pointer; the job frees itself when
    /// executed. The caller must guarantee it *is* eventually executed
    /// (the scheduler runs every pushed job before a pool run completes).
    pub fn push_new(func: F) -> *mut Job {
        let boxed = Box::new(HeapJob {
            job: Job::new(Self::run_erased),
            func: Some(func),
        });
        hb::on_write(&boxed.func as *const _ as usize, "HeapJob::func (push_new)");
        Box::into_raw(boxed) as *mut Job
    }

    unsafe fn run_erased(ptr: *const Job) {
        // Reclaim the box; the closure runs (and is dropped) before the
        // allocation is freed at the end of this scope.
        let mut this = Box::from_raw(ptr as *mut HeapJob<F>);
        hb::on_read(
            &this.func as *const _ as usize,
            "HeapJob::func (run_erased)",
        );
        let func = this.func.take().expect("HeapJob executed twice");
        // Scope-level panic bookkeeping is handled inside `func` itself
        // (see `scope`); an unwind past this frame would abort, so `func`
        // is always a non-unwinding wrapper.
        func();
        let waiter = this.job.mark_done();
        // The allocation dies here; drop the checker's state for it so a
        // later job reusing the address is not misread as racing this one.
        hb::forget_range(
            &*this as *const _ as usize,
            std::mem::size_of::<HeapJob<F>>(),
        );
        drop(this);
        crate::worker::wake_waiter(waiter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn stack_job_runs_once_and_yields_result() {
        let job = StackJob::new(|| 21 * 2);
        assert!(!job.is_done());
        unsafe { Job::execute(job.as_job_ptr()) };
        assert!(job.is_done());
        assert_eq!(unsafe { job.take_result() }, 42);
    }

    #[test]
    fn stack_job_run_inline() {
        let job = StackJob::new(|| String::from("hi"));
        assert_eq!(unsafe { job.run_inline() }, "hi");
    }

    #[test]
    fn stack_job_captures_panic() {
        let job: StackJob<_, ()> = StackJob::new(|| panic!("boom"));
        unsafe { Job::execute(job.as_job_ptr()) };
        assert!(job.is_done(), "panicking jobs still complete");
        let caught = panic::catch_unwind(AssertUnwindSafe(|| unsafe { job.take_result() }));
        assert!(caught.is_err(), "take_result rethrows the payload");
    }

    #[test]
    fn heap_job_runs_and_frees() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let ptr = HeapJob::push_new(|| {
            RAN.fetch_add(1, Ordering::SeqCst);
        });
        unsafe { Job::execute(ptr) };
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn done_flag_is_acquire_visible_across_threads() {
        let job = StackJob::new(|| vec![1, 2, 3]);
        std::thread::scope(|s| {
            let job_ref = &job;
            s.spawn(move || unsafe { Job::execute(job_ref.as_job_ptr()) });
            while !job.is_done() {
                std::hint::spin_loop();
            }
        });
        assert_eq!(unsafe { job.take_result() }, vec![1, 2, 3]);
    }
}
