//! Adaptive idle management for the steal loop: spin → yield → park.
//!
//! The schedulers' thieves used to busy-wait (`yield_now` per idle
//! iteration) whenever no work was stealable. That burns a full core per
//! idle worker, inflates the `IdleIter` profile, and — on loaded machines —
//! steals cycles from the workers that *do* have work. This module gives
//! each pool a [`Sleep`] subsystem with the classic three-stage escalation:
//!
//! 1. **Spin**: a bounded number of `spin_loop` rounds, keeping the thief
//!    hot for the common case where work reappears within microseconds.
//! 2. **Yield**: a bounded number of `yield_now` rounds, giving the OS a
//!    chance to run somebody useful while staying runnable.
//! 3. **Park**: block on a per-worker mutex/condvar slot, registered in a
//!    pool-wide sleeper set so producers can find and wake sleepers in
//!    `O(words)` time.
//!
//! ## The announce-then-sleep race (no lost wakeups)
//!
//! Parking uses an eventcount protocol around a global [`Sleep::epoch`]:
//!
//! * **Sleeper**: read `epoch` (SeqCst) → publish the worker's bit in the
//!   sleeper mask (`fetch_or`, SeqCst — a full barrier) → *recheck* for
//!   work → take the slot lock and re-validate (`epoch` unchanged and no
//!   wakeup pending) → wait on the condvar.
//! * **Waker**: make the work visible (push / boundary move) → bump
//!   `epoch` (SeqCst RMW) → scan the mask → mark each chosen slot woken
//!   under its lock → `notify_one`.
//!
//! In the SeqCst total order, either the waker's epoch bump precedes the
//! sleeper's epoch read — then the sleeper's recheck (or its under-lock
//! epoch re-validation) observes the work/bump and aborts the park — or
//! the sleeper's mask publication precedes the waker's mask scan, and the
//! waker delivers a wakeup through the slot (the `woken` flag absorbs a
//! notify that lands before the wait starts). Either way, no wakeup is
//! lost. As a belt-and-braces backstop against protocol-analysis slips,
//! every park is *timed*: a parked worker re-polls after its backstop
//! ([`PARK_TIMEOUT`], or [`WAITER_PARK_TIMEOUT`] for registered
//! completion waiters) at the latest.
//!
//! ## What wakes sleepers
//!
//! * `push_job` on any deque (new local work a thief could take or expose).
//! * Work-exposure events on a split deque: the USLCWS owner-side
//!   `update_public_bottom`, and — for the signal variants — the handler's
//!   exposure, *deferred to the owner* (next point).
//! * Pool run close (`done_epoch` store), which wakes **all** sleepers so
//!   helpers can observe `finished()` and quiesce.
//!
//! The `SIGUSR1` handler itself must **never** call the waker: condvar
//! notify takes a lock and is not async-signal-safe (the interrupted
//! thread might hold that very lock). The handler only stores a flag
//! ([`crate::pool::WorkerShared::wake_pending`]); the owner drains the
//! flag and performs the wake on its next deque access, keeping the
//! handler confined to flag stores.
//!
//! * External submission into the global injector
//!   ([`crate::ThreadPool::spawn`]), which must be able to rouse a fully
//!   parked `serve`-mode pool.
//! * Job/scope completion, as a **targeted** wake: a join or scope waiter
//!   registers its worker index in the awaited `Job` (or `Scope`) before
//!   parking, and the executor reads the registration immediately before
//!   publishing `done`, then pings exactly that slot via
//!   [`Sleep::wake_worker`]. The execute fast path pays one uncontended
//!   atomic load when no waiter is registered — no mask scan. The pairing
//!   argument: the waiter's register → announce → recheck sequence against
//!   the executor's read-waiter → store-done → check-mask sequence means
//!   either the executor sees the registration (and `wake_worker` either
//!   finds the mask bit or the recheck sees `done`), or the registration
//!   came after the executor's read — the one interleaving that can miss
//!   both signals. That window is why registered waiters still park
//!   *timed*, with the longer [`WAITER_PARK_TIMEOUT`]: real wakes make the
//!   1 ms re-poll cadence unnecessary, so the backstop stretches ~50× and
//!   the spurious-wake count of a long join collapses accordingly (asserted
//!   in `tests/sleeper.rs`).

use std::sync::atomic::Ordering;
use std::time::Duration;

use crossbeam_utils::CachePadded;
use lcws_metrics as metrics;
use lcws_metrics::Counter;
use parking_lot::{Condvar, Mutex};

use crate::fault::{self, Site};
use crate::hb::shim::AtomicU64;
use crate::trace;

/// Spin-loop rounds before escalating to yields (stage 1 length).
const SPIN_ROUNDS: u32 = 64;
/// `yield_now` rounds before escalating to parking (stage 2 length).
const YIELD_ROUNDS: u32 = 16;
/// Timed-park backstop: the longest a worker stays blocked without
/// re-polling, bounding the cost of any missed wakeup to one timeout.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);
/// Backstop for parks whose waker delivers a *targeted* completion wake
/// (join/scope waiters registered in the awaited job or scope). Real wakes
/// arrive through [`Sleep::wake_worker`], so the re-poll only covers the
/// narrow register-after-read miss window and can be ~50× lazier than
/// [`PARK_TIMEOUT`] without hurting latency.
pub(crate) const WAITER_PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// How a pool's idle workers behave once out of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdlePolicy {
    /// Full spin → yield → park escalation (the default).
    #[default]
    Adaptive,
    /// Never park: spin/yield forever, as the pre-sleeper schedulers did.
    /// Kept for A/B comparisons of idle cost (see the `idle_wakeup` bench
    /// and the sleeper integration tests).
    SpinOnly,
}

/// What the backoff ladder tells an idle worker to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IdleAction {
    /// Stay hot: issue a few `spin_loop` hints.
    Spin,
    /// Stay runnable but let others in: `yield_now`.
    Yield,
    /// Escalate to a timed condvar park.
    Park,
}

/// Per-idle-episode escalation state. One instance lives on the stack of
/// each steal/wait loop; `reset` on any progress.
pub(crate) struct IdleBackoff {
    policy: IdlePolicy,
    step: u32,
}

impl IdleBackoff {
    pub(crate) fn new(policy: IdlePolicy) -> IdleBackoff {
        IdleBackoff { policy, step: 0 }
    }

    /// Record that the worker made progress: restart the ladder.
    #[inline]
    pub(crate) fn reset(&mut self) {
        self.step = 0;
    }

    /// Next action for one fruitless iteration.
    #[inline]
    pub(crate) fn next(&mut self) -> IdleAction {
        let step = self.step;
        self.step = self.step.saturating_add(1);
        if step < SPIN_ROUNDS {
            IdleAction::Spin
        } else if step < SPIN_ROUNDS + YIELD_ROUNDS || self.policy == IdlePolicy::SpinOnly {
            IdleAction::Yield
        } else {
            IdleAction::Park
        }
    }

    /// Execute one non-parking action (shared by all idle loops).
    #[inline]
    pub(crate) fn relax(action: IdleAction) {
        match action {
            IdleAction::Spin => {
                for _ in 0..8 {
                    std::hint::spin_loop();
                }
            }
            IdleAction::Yield | IdleAction::Park => std::thread::yield_now(),
        }
    }
}

/// One worker's parking place.
struct SleepSlot {
    /// `true` while a wakeup is pending for this slot; set by wakers under
    /// the lock, consumed by the sleeper.
    woken: Mutex<bool>,
    cv: Condvar,
}

/// Pool-wide sleeper subsystem: the eventcount epoch, the sleeper set, and
/// one [`SleepSlot`] per worker.
pub(crate) struct Sleep {
    /// Eventcount epoch; bumped (SeqCst) by every wake so in-flight parks
    /// can detect that a wakeup raced past them.
    epoch: CachePadded<AtomicU64>,
    /// Sleeper set: bit `w % 64` of word `w / 64` is set while worker `w`
    /// is announcing or inside a park.
    mask: Box<[CachePadded<AtomicU64>]>,
    slots: Box<[SleepSlot]>,
}

impl Sleep {
    pub(crate) fn new(workers: usize) -> Sleep {
        let words = workers.div_ceil(64).max(1);
        Sleep {
            epoch: CachePadded::new(AtomicU64::new(0)),
            mask: (0..words)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            slots: (0..workers)
                .map(|_| SleepSlot {
                    woken: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
        }
    }

    /// Fast-path producer gate: is any worker announced in the sleeper set?
    /// One relaxed load per mask word — this is all a push pays when nobody
    /// sleeps, keeping the sleeper invisible on the hot path.
    #[inline]
    pub(crate) fn has_sleepers(&self) -> bool {
        self.mask.iter().any(|w| w.load(Ordering::Relaxed) != 0)
    }

    /// Is worker `index` currently announced in the sleeper set (racy)?
    /// Diagnostic only — the stall watchdog's report uses it to distinguish
    /// parked helpers from ones still running (or dead); never used for
    /// wake decisions.
    pub(crate) fn is_sleeping(&self, index: usize) -> bool {
        let (word, bit) = (index / 64, 1u64 << (index % 64));
        self.mask[word].load(Ordering::Relaxed) & bit != 0
    }

    /// Block worker `index` until woken, the timed backstop fires, or
    /// `should_abort` reports that parking is (no longer) warranted.
    ///
    /// `should_abort` is re-evaluated *after* the worker announces itself
    /// in the sleeper set — that ordering, against the waker's
    /// publish-work-then-bump-epoch ordering, is what closes the
    /// announce-then-sleep race (see the module docs).
    pub(crate) fn park(&self, index: usize, should_abort: impl Fn() -> bool) {
        self.park_with_backstop(index, PARK_TIMEOUT, should_abort)
    }

    /// [`Sleep::park`] with an explicit timed-park backstop. Join/scope
    /// waiters that registered for a targeted completion wake pass
    /// [`WAITER_PARK_TIMEOUT`]; everyone else goes through `park`.
    pub(crate) fn park_with_backstop(
        &self,
        index: usize,
        backstop: Duration,
        should_abort: impl Fn() -> bool,
    ) {
        let slot = &self.slots[index];
        let (word, bit) = (index / 64, 1u64 << (index % 64));

        // A delay here stretches the decide-to-sleep → announce window the
        // eventcount protocol must tolerate.
        fault::point(Site::SleeperPark);
        // Eventcount read: any wake that happens after this point either
        // bumps the epoch we re-validate under the lock, or sees our mask
        // bit and delivers through the slot.
        let epoch = self.epoch.load(Ordering::SeqCst);
        // Announce. SeqCst RMW: full barrier between the announcement and
        // the recheck's loads.
        self.mask[word].fetch_or(bit, Ordering::SeqCst);

        // And here the announce → recheck window, against racing wakers.
        fault::point(Site::SleeperPark);
        // Recheck: did work appear (or the run finish) while we decided to
        // sleep? Producers publish work *before* scanning the mask, so
        // missing it here means they will see our bit.
        if should_abort() {
            self.retire(index);
            return;
        }

        let mut woken = slot.woken.lock();
        // A waker that bumped the epoch after our read above may have
        // already marked us woken, or may still be about to; either way the
        // epoch moved and we must not block on a condvar nobody will ping.
        if *woken || self.epoch.load(Ordering::SeqCst) != epoch {
            *woken = false;
            drop(woken);
            self.retire(index);
            return;
        }

        metrics::bump(Counter::Park);
        trace::record(trace::EventKind::Park, 0);
        let _ = slot.cv.wait_for(&mut woken, backstop);
        if *woken {
            *woken = false;
        } else {
            // Timeout expiry or spurious condvar return: nobody signed up
            // to wake us, so count it against the backstop.
            metrics::bump(Counter::SpuriousWake);
            trace::record(trace::EventKind::SpuriousWake, 0);
        }
        drop(woken);
        self.retire(index);
    }

    /// Withdraw worker `index` from the sleeper set and absorb any wakeup
    /// that was delivered concurrently (so a stale `woken` can never leak
    /// into the next park).
    fn retire(&self, index: usize) {
        let (word, bit) = (index / 64, 1u64 << (index % 64));
        self.mask[word].fetch_and(!bit, Ordering::SeqCst);
        let mut woken = self.slots[index].woken.lock();
        *woken = false;
    }

    /// Wake one sleeper, if any. Producers call this after making new work
    /// visible (push, exposure). Cheap when the sleeper set is empty.
    ///
    /// The empty-set gate is a Relaxed load, so a store-buffering
    /// interleaving exists where the producer's work-store is not yet
    /// visible to a sleeper's recheck while the sleeper's mask bit is not
    /// yet visible here (closing it would put a SeqCst fence on every
    /// producer fast path — the very cost this crate exists to avoid). The
    /// window costs at most one [`PARK_TIMEOUT`], absorbed by the timed
    /// park.
    pub(crate) fn wake_one(&self) {
        // Counted before the empty-set gate: redundant notifications (e.g.
        // one per task of a drained injector batch) are exactly what the
        // counter exists to expose.
        metrics::bump(Counter::WakeAttempt);
        if !self.has_sleepers() {
            return;
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for (w, word) in self.mask.iter().enumerate() {
            let mut bits = word.load(Ordering::SeqCst);
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.deliver(w * 64 + bit) {
                    return;
                }
            }
        }
    }

    /// Targeted wake of worker `index` (completion wakes, registered
    /// waiters). One SeqCst mask-word load when the target is not
    /// announced; epoch bump + slot delivery when it is.
    ///
    /// Pairing with [`Sleep::park_with_backstop`]: the waiter announces its
    /// mask bit (SeqCst RMW) *before* its recheck loads. If this load
    /// misses the bit, the announce is later in the SeqCst order, so the
    /// caller's work-publication (e.g. the job's `done` store, program-
    /// ordered before this call) is visible to the waiter's recheck — the
    /// park aborts without needing us.
    pub(crate) fn wake_worker(&self, index: usize) {
        metrics::bump(Counter::WakeAttempt);
        let (word, bit) = (index / 64, 1u64 << (index % 64));
        if self.mask[word].load(Ordering::SeqCst) & bit == 0 {
            return;
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.deliver(index);
    }

    /// Wake every sleeper (run close, teardown).
    pub(crate) fn wake_all(&self) {
        metrics::bump(Counter::WakeAttempt);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for (w, word) in self.mask.iter().enumerate() {
            let mut bits = word.load(Ordering::SeqCst);
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.deliver(w * 64 + bit);
            }
        }
    }

    /// Mark `index`'s slot woken and ping its condvar. Returns whether a
    /// wakeup was (newly) delivered.
    fn deliver(&self, index: usize) -> bool {
        // A delay between choosing a sleeper and pinging its slot races the
        // sleeper's own retire/re-park transitions.
        fault::point(Site::SleeperUnpark);
        let slot = &self.slots[index];
        let mut woken = slot.woken.lock();
        if *woken {
            // Already has a pending wakeup from another producer.
            return false;
        }
        *woken = true;
        slot.cv.notify_one();
        metrics::bump(Counter::Unpark);
        // Recorded on the *waker's* ring: the wake decision is its event.
        trace::record(trace::EventKind::Unpark, index as u32);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = IdleBackoff::new(IdlePolicy::Adaptive);
        for _ in 0..SPIN_ROUNDS {
            assert_eq!(b.next(), IdleAction::Spin);
        }
        for _ in 0..YIELD_ROUNDS {
            assert_eq!(b.next(), IdleAction::Yield);
        }
        assert_eq!(b.next(), IdleAction::Park);
        assert_eq!(b.next(), IdleAction::Park);
        b.reset();
        assert_eq!(b.next(), IdleAction::Spin);
    }

    #[test]
    fn spin_only_never_parks() {
        let mut b = IdleBackoff::new(IdlePolicy::SpinOnly);
        for _ in 0..(SPIN_ROUNDS + YIELD_ROUNDS + 100) {
            assert_ne!(b.next(), IdleAction::Park);
        }
    }

    #[test]
    fn park_aborts_when_work_already_visible() {
        let sleep = Sleep::new(2);
        let start = Instant::now();
        sleep.park(0, || true);
        // An aborted park must not block for the timeout.
        assert!(start.elapsed() < PARK_TIMEOUT);
        assert!(!sleep.has_sleepers());
    }

    #[test]
    fn wake_one_wakes_a_parked_worker() {
        let sleep = Arc::new(Sleep::new(1));
        let stop = Arc::new(AtomicBool::new(false));
        let parks = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&sleep);
        let stop2 = Arc::clone(&stop);
        let parks2 = Arc::clone(&parks);
        let h = std::thread::spawn(move || {
            while !stop2.load(Ordering::Acquire) {
                s2.park(0, || stop2.load(Ordering::Acquire));
                parks2.fetch_add(1, Ordering::AcqRel);
            }
        });
        // Drive several wake rounds through the slot.
        for _ in 0..10 {
            let before = parks.load(Ordering::Acquire);
            sleep.wake_one();
            let t0 = Instant::now();
            while parks.load(Ordering::Acquire) == before {
                assert!(t0.elapsed() < Duration::from_secs(5), "wakeup lost");
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        sleep.wake_all();
        h.join().unwrap();
    }

    #[test]
    fn wake_all_wakes_every_parked_worker() {
        const P: usize = 4;
        let sleep = Arc::new(Sleep::new(P));
        let released = Arc::new(AtomicUsize::new(0));
        let go = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..P)
            .map(|i| {
                let sleep = Arc::clone(&sleep);
                let released = Arc::clone(&released);
                let go = Arc::clone(&go);
                std::thread::spawn(move || {
                    while !go.load(Ordering::Acquire) {
                        sleep.park(i, || go.load(Ordering::Acquire));
                    }
                    released.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(5));
        go.store(true, Ordering::Release);
        sleep.wake_all();
        let t0 = Instant::now();
        while released.load(Ordering::Acquire) != P {
            assert!(t0.elapsed() < Duration::from_secs(5), "a sleeper was lost");
            std::thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn no_lost_wakeup_under_contention() {
        // One producer repeatedly: publish a token, wake. One consumer:
        // park unless a token is visible, consume. If a wakeup could be
        // lost, the consumer would stall for the full timeout each round
        // and the loop would blow the deadline.
        let sleep = Arc::new(Sleep::new(1));
        let tokens = Arc::new(AtomicUsize::new(0));
        const ROUNDS: usize = 20_000;
        let s2 = Arc::clone(&sleep);
        let t2 = Arc::clone(&tokens);
        let consumer = std::thread::spawn(move || {
            let mut got = 0usize;
            while got < ROUNDS {
                if t2
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
                    .is_ok()
                {
                    got += 1;
                } else {
                    s2.park(0, || t2.load(Ordering::Acquire) > 0);
                }
            }
        });
        for _ in 0..ROUNDS {
            tokens.fetch_add(1, Ordering::AcqRel);
            sleep.wake_one();
        }
        consumer.join().unwrap();
    }
}
