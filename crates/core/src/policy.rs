//! Composable scheduling policies: the axes the five paper variants are
//! points in.
//!
//! [`Variant`] is a closed enum because the paper evaluates exactly five
//! schedulers — but each scheduler is really a *composition* of orthogonal
//! choices: which deque backs each worker, how thieves ask for work, how
//! much the victim exposes, which `pop_bottom` flavour the owner needs,
//! which victim a thief probes, how many tasks one steal CAS transfers, and
//! how an idle worker waits. This module names those axes and bundles a
//! choice per axis into a [`Policies`] value.
//!
//! The variants stay the compatibility surface ([`Variant::policies`]
//! returns the composition each one denotes), while
//! [`crate::PoolBuilder::policies`] accepts any *sound* bundle — e.g. the
//! base signal scheduler with near-first victim order, or Expose Half with
//! single-task steals. Soundness is checked by [`Policies::validate`]:
//! the §4 pop-bottom rule and the deque/notification pairing are
//! constraints *between* axes, and an unsound bundle (say, asynchronous
//! unconstrained exposure over the standard `pop_bottom`) would reintroduce
//! exactly the lost-task race §4 exists to prevent. Construction through
//! the named compositions or the builder can therefore never produce one.

use std::fmt;

use crate::deque::{ExposurePolicy, PopBottomMode};
use crate::sleep::IdlePolicy;
use crate::variant::Variant;

/// Which deque implementation backs each worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeKind {
    /// Fully-concurrent ABP deque: every task is stealable, the owner pays
    /// a seq-cst fence per pop (the WS baseline).
    Abp,
    /// The paper's split deque: private part synchronization-free, work
    /// exposed on request.
    Split,
}

/// How a thief tells a victim with only private work to expose some.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NotifyChannel {
    /// No exposure requests at all. Sound only with [`DequeKind::Abp`],
    /// where everything is public already.
    None,
    /// Set the victim's `targeted` flag; the victim polls it at task
    /// boundaries (§3, USLCWS).
    Flag,
    /// Send `SIGUSR1`; the victim's handler exposes work in constant time
    /// (§4). Failed sends reroute through the flag.
    Signal,
}

/// The order in which a thief picks victims to probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimSelection {
    /// Independent uniform draw over the other `P - 1` workers (the
    /// paper's choice; bias-free by construction, see
    /// `worker::victim_from_random`).
    Uniform,
    /// Locality-aware: probe victims in order of worker-index distance
    /// (`self + 1`, `self + 2`, … mod `P`), restarting from the nearest
    /// after a successful steal, and falling back to the uniform draw once
    /// a full ring of probes came up empty. Index distance is a proxy for
    /// cache/NUMA distance under the usual linear thread pinning; the
    /// fallback keeps the ring from orbiting a starved neighbourhood.
    NearFirst,
}

/// How many tasks a successful steal CAS transfers to the thief.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealAmount {
    /// Exactly one task per CAS — the paper's protocol on both deques.
    One,
    /// Split deque only: up to `⌈public/2⌉` tasks (capped at
    /// `SplitDeque::STEAL_BATCH_MAX`) with one validating age CAS; the
    /// thief keeps the oldest and requeues the surplus into its own deque,
    /// where it is immediately re-stealable. Pays off when Expose Half
    /// publishes whole runs of tasks at once.
    Half,
}

/// A full bundle of scheduling policies — one choice per axis.
///
/// Obtain one from a named composition ([`Policies::ws`] …
/// [`Policies::signal_half`], or [`Variant::policies`]), tweak the open
/// axes, and hand it to [`crate::PoolBuilder::policies`]. The builder
/// validates the bundle; see [`Policies::validate`] for the soundness
/// rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policies {
    /// Deque implementation per worker.
    pub deque: DequeKind,
    /// Exposure-request channel.
    pub notify: NotifyChannel,
    /// Exposure amount per handled request (split deque only; ignored —
    /// but kept, for composition equality — under [`DequeKind::Abp`]).
    pub exposure: ExposurePolicy,
    /// Owner-side `pop_bottom` flavour (§4's subtlety).
    pub pop_bottom: PopBottomMode,
    /// Victim probe order.
    pub victim: VictimSelection,
    /// Tasks transferred per successful steal CAS.
    pub steal: StealAmount,
    /// Idle-worker waiting strategy.
    pub idle: IdlePolicy,
}

/// Why a [`Policies`] bundle was rejected by [`Policies::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// Asynchronous (signal-driven) exposure that may publish the task the
    /// owner is popping requires [`PopBottomMode::SignalSafe`]; running it
    /// over `Standard` reintroduces the §4 lost-task race.
    SignalNeedsSignalSafePop,
    /// The ABP deque has no private part: an exposure-request channel is
    /// protocol confusion.
    AbpHasNoExposure,
    /// Batch steals ride the split deque's `{tag, top}` validation; the
    /// ABP protocol transfers exactly one task per CAS.
    AbpStealsOne,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::SignalNeedsSignalSafePop => f.write_str(
                "signal-driven exposure with an unconstrained exposure policy requires \
                 PopBottomMode::SignalSafe (the §4 decrement-then-compare)",
            ),
            PolicyError::AbpHasNoExposure => {
                f.write_str("the ABP deque has no private part; NotifyChannel must be None")
            }
            PolicyError::AbpStealsOne => f.write_str(
                "the ABP deque transfers exactly one task per CAS; StealAmount must be One",
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

impl Policies {
    /// Classic work stealing (the paper's WS baseline): ABP deque, no
    /// exposure protocol, uniform victims, one task per steal.
    pub const fn ws() -> Policies {
        Policies {
            deque: DequeKind::Abp,
            notify: NotifyChannel::None,
            exposure: ExposurePolicy::One, // unused; kept for equality
            pop_bottom: PopBottomMode::Standard,
            victim: VictimSelection::Uniform,
            steal: StealAmount::One,
            idle: IdlePolicy::Adaptive,
        }
    }

    /// User-Space LCWS (§3): split deque, `targeted`-flag requests polled
    /// at task boundaries, one task exposed and stolen at a time.
    pub const fn uslcws() -> Policies {
        Policies {
            deque: DequeKind::Split,
            notify: NotifyChannel::Flag,
            exposure: ExposurePolicy::One,
            pop_bottom: PopBottomMode::Standard,
            victim: VictimSelection::Uniform,
            steal: StealAmount::One,
            idle: IdlePolicy::Adaptive,
        }
    }

    /// Signal-based LCWS (§4): signal-driven exposure of one task, which
    /// may race the owner's pop — hence the signal-safe `pop_bottom`.
    pub const fn signal() -> Policies {
        Policies {
            deque: DequeKind::Split,
            notify: NotifyChannel::Signal,
            exposure: ExposurePolicy::One,
            pop_bottom: PopBottomMode::SignalSafe,
            victim: VictimSelection::Uniform,
            steal: StealAmount::One,
            idle: IdlePolicy::Adaptive,
        }
    }

    /// Conservative Exposure (§4.1.1): the handler never publishes the
    /// bottom-most task, so the standard `pop_bottom` stays sound.
    pub const fn signal_conservative() -> Policies {
        Policies {
            deque: DequeKind::Split,
            notify: NotifyChannel::Signal,
            exposure: ExposurePolicy::Conservative,
            pop_bottom: PopBottomMode::Standard,
            victim: VictimSelection::Uniform,
            steal: StealAmount::One,
            idle: IdlePolicy::Adaptive,
        }
    }

    /// Expose Half (§4.1.2): signal-driven exposure of `round(r/2)` tasks,
    /// paired with batch steals — the whole point of publishing a run of
    /// tasks is that thieves can take several per CAS.
    pub const fn signal_half() -> Policies {
        Policies {
            deque: DequeKind::Split,
            notify: NotifyChannel::Signal,
            exposure: ExposurePolicy::Half,
            pop_bottom: PopBottomMode::SignalSafe,
            victim: VictimSelection::Uniform,
            steal: StealAmount::Half,
            idle: IdlePolicy::Adaptive,
        }
    }

    /// Does this bundle use split deques?
    #[inline]
    pub fn uses_split_deque(&self) -> bool {
        self.deque == DequeKind::Split
    }

    /// Does this bundle notify victims with POSIX signals?
    #[inline]
    pub fn uses_signals(&self) -> bool {
        self.notify == NotifyChannel::Signal
    }

    /// Does this bundle poll the user-space `fallback_expose` flag at task
    /// boundaries? True exactly for signal-driven bundles: a failed
    /// `pthread_kill` is rerouted through the flag instead of dropped.
    /// (Flag-driven bundles poll `targeted` directly; ABP has no exposure.)
    #[inline]
    pub fn polls_fallback_flag(&self) -> bool {
        self.uses_signals()
    }

    /// Check the cross-axis soundness rules.
    ///
    /// * Signal-driven exposure may fire inside the owner's `pop_bottom`
    ///   window. Unless the exposure policy provably leaves the bottom task
    ///   private ([`ExposurePolicy::Conservative`]), the owner must use the
    ///   §4 decrement-then-compare ([`PopBottomMode::SignalSafe`]).
    /// * The ABP deque has no private part: no notification channel, no
    ///   batch steals.
    ///
    /// Everything else composes freely (victim order and idle policy touch
    /// no protocol invariant; flag-driven exposure happens at the owner's
    /// own scheduling points, where either `pop_bottom` flavour is sound).
    pub fn validate(&self) -> Result<(), PolicyError> {
        match self.deque {
            DequeKind::Abp => {
                if self.notify != NotifyChannel::None {
                    return Err(PolicyError::AbpHasNoExposure);
                }
                if self.steal != StealAmount::One {
                    return Err(PolicyError::AbpStealsOne);
                }
            }
            DequeKind::Split => {
                if self.notify == NotifyChannel::Signal
                    && self.exposure != ExposurePolicy::Conservative
                    && self.pop_bottom != PopBottomMode::SignalSafe
                {
                    return Err(PolicyError::SignalNeedsSignalSafePop);
                }
            }
        }
        Ok(())
    }
}

impl Variant {
    /// The policy composition this variant denotes. Every predicate on
    /// `Variant` (`uses_split_deque`, `pop_bottom_mode`, …) is derived from
    /// this bundle, so a pool built from `PoolBuilder::new(v)` and one
    /// built from `PoolBuilder::new(v).policies(v.policies())` are
    /// bit-identical.
    pub fn policies(self) -> Policies {
        match self {
            Variant::Ws => Policies::ws(),
            Variant::UsLcws => Policies::uslcws(),
            Variant::Signal => Policies::signal(),
            Variant::SignalConservative => Policies::signal_conservative(),
            Variant::SignalHalf => Policies::signal_half(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_compositions_are_sound() {
        for v in Variant::ALL {
            v.policies().validate().unwrap_or_else(|e| {
                panic!("named composition for {v} is unsound: {e}");
            });
        }
    }

    #[test]
    fn variant_predicates_match_policies() {
        for v in Variant::ALL {
            let p = v.policies();
            assert_eq!(v.uses_split_deque(), p.uses_split_deque(), "{v}");
            assert_eq!(v.uses_signals(), p.uses_signals(), "{v}");
            assert_eq!(v.polls_fallback_flag(), p.polls_fallback_flag(), "{v}");
            assert_eq!(v.pop_bottom_mode(), p.pop_bottom, "{v}");
            assert_eq!(v.exposure_policy(), p.exposure, "{v}");
        }
    }

    #[test]
    fn unsound_bundles_are_rejected() {
        // Signal exposure of the bottom task over the standard pop: the §4
        // race.
        let mut p = Policies::signal();
        p.pop_bottom = PopBottomMode::Standard;
        assert_eq!(p.validate(), Err(PolicyError::SignalNeedsSignalSafePop));
        let mut p = Policies::signal_half();
        p.pop_bottom = PopBottomMode::Standard;
        assert_eq!(p.validate(), Err(PolicyError::SignalNeedsSignalSafePop));
        // Conservative exposure is exempt (never publishes the bottom task).
        assert_eq!(Policies::signal_conservative().validate(), Ok(()));
        // ABP with an exposure channel or batch steals.
        let mut p = Policies::ws();
        p.notify = NotifyChannel::Flag;
        assert_eq!(p.validate(), Err(PolicyError::AbpHasNoExposure));
        let mut p = Policies::ws();
        p.steal = StealAmount::Half;
        assert_eq!(p.validate(), Err(PolicyError::AbpStealsOne));
    }

    #[test]
    fn open_axes_compose_freely() {
        for v in Variant::ALL {
            let mut p = v.policies();
            p.victim = VictimSelection::NearFirst;
            p.idle = IdlePolicy::SpinOnly;
            assert_eq!(p.validate(), Ok(()), "{v} with near-first victims");
        }
        // Flag exposure over either pop flavour is sound (owner-synchronous).
        let mut p = Policies::uslcws();
        p.pop_bottom = PopBottomMode::SignalSafe;
        assert_eq!(p.validate(), Ok(()));
        // Batch steals without Expose Half: legal, just less profitable.
        let mut p = Policies::signal();
        p.steal = StealAmount::Half;
        assert_eq!(p.validate(), Ok(()));
    }
}
