//! Shim atomic types the deques are written against.
//!
//! Features off: type aliases for `std::sync::atomic` plus
//! `#[inline(always)]` passthrough helpers — zero cost, identical codegen
//! (asserted by a `TypeId` test in the parent module).
//!
//! Under `hb` (with `model` off) the same types become
//! `#[repr(transparent)]` wrappers that route every access through the
//! vector-clock happens-before checker in [`crate::hb`] — one
//! instrumentation layer now serves `model`, `hb`, and default builds.
//! When both features are on, `model` wins and the checker is inert.
//!
//! Feature on: `AtomicU32`/`AtomicU64` become wrappers that route every
//! access through the DFS scheduler in `super::dfs` before performing the
//! real operation, and remember a short field name so counterexample
//! traces read like the paper's listings (`owner: store bot <- 0`).
//!
//! `AtomicPtr` stays a std alias in both configurations: it only carries
//! task slots, which every model script writes during single-threaded
//! setup — scheduling their reads would grow the tree without adding
//! behaviours (see the parent module docs).
//!
//! The growable rings' *buffer pointer* is different: the owner republishes
//! it on every resize, so thief captures racing an owner grow are real
//! protocol behaviours. [`SchedPtr`] wraps it — a std passthrough when the
//! feature is off, a scheduled access (the explorer's `Resize` decision
//! point) when it is on. `load_owner` stays unscheduled in both configs:
//! the owner is the pointer's only writer, so its own reads commute with
//! every other access.

pub use std::sync::atomic::AtomicPtr;

#[cfg(all(feature = "hb", not(feature = "model")))]
mod imp {
    use std::sync::atomic::Ordering;

    use crate::hb;

    /// A `u32` deque word routed through the happens-before checker.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct AtomicU32(std::sync::atomic::AtomicU32);

    impl AtomicU32 {
        #[inline]
        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        #[inline]
        pub fn load(&self, order: Ordering) -> u32 {
            hb::atomic_load(self.addr(), order, || self.0.load(order))
        }

        #[inline]
        pub fn store(&self, value: u32, order: Ordering) {
            hb::atomic_store(self.addr(), order, || self.0.store(value, order))
        }
    }

    /// A `u64` deque word (the `age`) routed through the checker.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct AtomicU64(std::sync::atomic::AtomicU64);

    impl AtomicU64 {
        #[inline]
        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        #[inline]
        pub fn load(&self, order: Ordering) -> u64 {
            hb::atomic_load(self.addr(), order, || self.0.load(order))
        }

        #[inline]
        pub fn store(&self, value: u64, order: Ordering) {
            hb::atomic_store(self.addr(), order, || self.0.store(value, order))
        }

        #[inline]
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            hb::atomic_cas(self.addr(), success, failure, || {
                self.0.compare_exchange(current, new, success, failure)
            })
        }
    }

    /// Instrumented twin of the passthrough helper (names label model
    /// traces only; the checker keys state by address).
    #[inline]
    pub fn named_u32(value: u32, _name: &'static str) -> AtomicU32 {
        AtomicU32(std::sync::atomic::AtomicU32::new(value))
    }

    /// Instrumented named `u64` constructor.
    #[inline]
    pub fn named_u64(value: u64, _name: &'static str) -> AtomicU64 {
        AtomicU64(std::sync::atomic::AtomicU64::new(value))
    }

    /// The paper's fence, counted as always, plus the checker's SC-clock
    /// join (the HB edge fence-paired protocols rely on).
    #[inline]
    pub fn fence_seq_cst() {
        hb::fence_seq_cst(lcws_metrics::fence_seq_cst)
    }

    /// Ring-buffer pointer routed through the checker: a `Relaxed`
    /// republish in `grow` must sever the thief's edge to the copied
    /// slots, which is exactly what the negative tests assert.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct SchedPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> SchedPtr<T> {
        #[inline]
        pub fn new(ptr: *mut T, _name: &'static str) -> Self {
            SchedPtr(std::sync::atomic::AtomicPtr::new(ptr))
        }

        #[inline]
        fn addr(&self) -> usize {
            self as *const _ as usize
        }

        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            hb::atomic_load(self.addr(), order, || self.0.load(order))
        }

        /// Owner-side read of a pointer only the owner writes: still
        /// instrumented (an acquire here is a real edge), but cheap.
        #[inline]
        pub fn load_owner(&self, order: Ordering) -> *mut T {
            hb::atomic_load(self.addr(), order, || self.0.load(order))
        }

        #[inline]
        pub fn store(&self, ptr: *mut T, order: Ordering) {
            hb::atomic_store(self.addr(), order, || self.0.store(ptr, order))
        }
    }
}

#[cfg(not(any(feature = "model", feature = "hb")))]
mod imp {
    use std::sync::atomic::Ordering;

    pub use std::sync::atomic::{AtomicU32, AtomicU64};

    /// Passthrough: a plain `AtomicU32`; the name only matters under
    /// `model`, where it labels trace lines.
    #[inline(always)]
    pub fn named_u32(value: u32, _name: &'static str) -> AtomicU32 {
        AtomicU32::new(value)
    }

    /// Passthrough: a plain `AtomicU64`.
    #[inline(always)]
    pub fn named_u64(value: u64, _name: &'static str) -> AtomicU64 {
        AtomicU64::new(value)
    }

    /// The paper's `atomic_thread_fence(seq_cst)`, with its metrics
    /// accounting (this is exactly `lcws_metrics::fence_seq_cst`).
    #[inline(always)]
    pub fn fence_seq_cst() {
        lcws_metrics::fence_seq_cst();
    }

    /// Passthrough ring-buffer pointer: a `#[repr(transparent)]` wrapper
    /// around `AtomicPtr<T>` with `#[inline(always)]` forwarding — the
    /// fast path pays exactly one atomic pointer load per operation.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct SchedPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> SchedPtr<T> {
        /// Passthrough constructor; the name only labels model traces.
        #[inline(always)]
        pub fn new(ptr: *mut T, _name: &'static str) -> Self {
            SchedPtr(std::sync::atomic::AtomicPtr::new(ptr))
        }

        /// Capture the buffer for a thief/handler-visible operation.
        #[inline(always)]
        pub fn load(&self, order: Ordering) -> *mut T {
            self.0.load(order)
        }

        /// Owner-side read of a pointer only the owner writes.
        #[inline(always)]
        pub fn load_owner(&self, order: Ordering) -> *mut T {
            self.0.load(order)
        }

        /// Publish a new buffer (owner-only).
        #[inline(always)]
        pub fn store(&self, ptr: *mut T, order: Ordering) {
            self.0.store(ptr, order)
        }
    }
}

#[cfg(feature = "model")]
mod imp {
    use std::sync::atomic::Ordering;

    use super::super::dfs;

    /// Format a packed `{tag, top}` or plain word for trace lines: the
    /// only u64 in the protocols is the `age` word, whose halves are more
    /// readable separately.
    fn fmt64(v: u64) -> String {
        format!("{}:{}", v >> 32, v as u32)
    }

    /// A `u32` atomic whose accesses are DFS scheduling points.
    #[derive(Debug)]
    pub struct AtomicU32 {
        inner: std::sync::atomic::AtomicU32,
        name: &'static str,
    }

    impl AtomicU32 {
        #[inline]
        pub fn load(&self, order: Ordering) -> u32 {
            dfs::access(
                || self.inner.load(order),
                |v| format!("load {} -> {v}", self.name),
            )
        }

        #[inline]
        pub fn store(&self, value: u32, order: Ordering) {
            dfs::access(
                || self.inner.store(value, order),
                |_| format!("store {} <- {value}", self.name),
            )
        }
    }

    /// A `u64` atomic whose accesses are DFS scheduling points.
    #[derive(Debug)]
    pub struct AtomicU64 {
        inner: std::sync::atomic::AtomicU64,
        name: &'static str,
    }

    impl AtomicU64 {
        #[inline]
        pub fn load(&self, order: Ordering) -> u64 {
            dfs::access(
                || self.inner.load(order),
                |v| format!("load {} -> {}", self.name, fmt64(*v)),
            )
        }

        #[inline]
        pub fn store(&self, value: u64, order: Ordering) {
            dfs::access(
                || self.inner.store(value, order),
                |_| format!("store {} <- {}", self.name, fmt64(value)),
            )
        }

        #[inline]
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            dfs::access(
                || self.inner.compare_exchange(current, new, success, failure),
                |r| match r {
                    Ok(_) => format!("cas {} {} -> {} ok", self.name, fmt64(current), fmt64(new)),
                    Err(seen) => format!(
                        "cas {} {} -> {} FAILED (saw {})",
                        self.name,
                        fmt64(current),
                        fmt64(new),
                        fmt64(*seen)
                    ),
                },
            )
        }
    }

    /// Named constructor (the model-side twin of the passthrough helper).
    #[inline]
    pub fn named_u32(value: u32, name: &'static str) -> AtomicU32 {
        AtomicU32 {
            inner: std::sync::atomic::AtomicU32::new(value),
            name,
        }
    }

    /// Named constructor for the `age` word.
    #[inline]
    pub fn named_u64(value: u64, name: &'static str) -> AtomicU64 {
        AtomicU64 {
            inner: std::sync::atomic::AtomicU64::new(value),
            name,
        }
    }

    /// Seq-cst fence: a scheduling point under the model (the fence itself
    /// is a no-op in interleaving semantics, but its *position* between
    /// accesses is part of the protocol, so it shows up in traces), plus
    /// the normal metrics accounting.
    #[inline]
    pub fn fence_seq_cst() {
        dfs::access(lcws_metrics::fence_seq_cst, |_| "fence(seq_cst)".into())
    }

    /// Ring-buffer pointer whose thief captures and owner republishes are
    /// DFS scheduling points — the explorer's `Resize` decision point.
    #[derive(Debug)]
    pub struct SchedPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
        name: &'static str,
    }

    impl<T> SchedPtr<T> {
        pub fn new(ptr: *mut T, name: &'static str) -> Self {
            SchedPtr {
                inner: std::sync::atomic::AtomicPtr::new(ptr),
                name,
            }
        }

        /// Scheduled capture: a thief (or any cross-thread reader) racing
        /// an owner grow is a real decision for the explorer.
        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            dfs::access(
                || self.inner.load(order),
                |p| format!("load {} -> {p:p}", self.name),
            )
        }

        /// Unscheduled owner-side read: the owner is the pointer's only
        /// writer, so this read commutes with every concurrent access
        /// (same argument as the unscheduled task slots).
        #[inline]
        pub fn load_owner(&self, order: Ordering) -> *mut T {
            self.inner.load(order)
        }

        /// Scheduled publish of a freshly grown buffer (owner-only write).
        #[inline]
        pub fn store(&self, ptr: *mut T, order: Ordering) {
            dfs::access(
                || self.inner.store(ptr, order),
                |_| format!("store {} <- {ptr:p} (resize publish)", self.name),
            )
        }
    }
}

pub use imp::{fence_seq_cst, named_u32, named_u64, AtomicU32, AtomicU64, SchedPtr};
