//! Shim atomic types the deques are written against.
//!
//! Feature off: type aliases for `std::sync::atomic` plus
//! `#[inline(always)]` passthrough helpers — zero cost, identical codegen
//! (asserted by a `TypeId` test in the parent module).
//!
//! Feature on: `AtomicU32`/`AtomicU64` become wrappers that route every
//! access through the DFS scheduler in `super::dfs` before performing the
//! real operation, and remember a short field name so counterexample
//! traces read like the paper's listings (`owner: store bot <- 0`).
//!
//! `AtomicPtr` stays a std alias in both configurations: it only carries
//! task slots, which every model script writes during single-threaded
//! setup — scheduling their reads would grow the tree without adding
//! behaviours (see the parent module docs).

pub use std::sync::atomic::AtomicPtr;

#[cfg(not(feature = "model"))]
mod imp {
    pub use std::sync::atomic::{AtomicU32, AtomicU64};

    /// Passthrough: a plain `AtomicU32`; the name only matters under
    /// `model`, where it labels trace lines.
    #[inline(always)]
    pub fn named_u32(value: u32, _name: &'static str) -> AtomicU32 {
        AtomicU32::new(value)
    }

    /// Passthrough: a plain `AtomicU64`.
    #[inline(always)]
    pub fn named_u64(value: u64, _name: &'static str) -> AtomicU64 {
        AtomicU64::new(value)
    }

    /// The paper's `atomic_thread_fence(seq_cst)`, with its metrics
    /// accounting (this is exactly `lcws_metrics::fence_seq_cst`).
    #[inline(always)]
    pub fn fence_seq_cst() {
        lcws_metrics::fence_seq_cst();
    }
}

#[cfg(feature = "model")]
mod imp {
    use std::sync::atomic::Ordering;

    use super::super::dfs;

    /// Format a packed `{tag, top}` or plain word for trace lines: the
    /// only u64 in the protocols is the `age` word, whose halves are more
    /// readable separately.
    fn fmt64(v: u64) -> String {
        format!("{}:{}", v >> 32, v as u32)
    }

    /// A `u32` atomic whose accesses are DFS scheduling points.
    #[derive(Debug)]
    pub struct AtomicU32 {
        inner: std::sync::atomic::AtomicU32,
        name: &'static str,
    }

    impl AtomicU32 {
        #[inline]
        pub fn load(&self, order: Ordering) -> u32 {
            dfs::access(
                || self.inner.load(order),
                |v| format!("load {} -> {v}", self.name),
            )
        }

        #[inline]
        pub fn store(&self, value: u32, order: Ordering) {
            dfs::access(
                || self.inner.store(value, order),
                |_| format!("store {} <- {value}", self.name),
            )
        }
    }

    /// A `u64` atomic whose accesses are DFS scheduling points.
    #[derive(Debug)]
    pub struct AtomicU64 {
        inner: std::sync::atomic::AtomicU64,
        name: &'static str,
    }

    impl AtomicU64 {
        #[inline]
        pub fn load(&self, order: Ordering) -> u64 {
            dfs::access(
                || self.inner.load(order),
                |v| format!("load {} -> {}", self.name, fmt64(*v)),
            )
        }

        #[inline]
        pub fn store(&self, value: u64, order: Ordering) {
            dfs::access(
                || self.inner.store(value, order),
                |_| format!("store {} <- {}", self.name, fmt64(value)),
            )
        }

        #[inline]
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            dfs::access(
                || self.inner.compare_exchange(current, new, success, failure),
                |r| match r {
                    Ok(_) => format!("cas {} {} -> {} ok", self.name, fmt64(current), fmt64(new)),
                    Err(seen) => format!(
                        "cas {} {} -> {} FAILED (saw {})",
                        self.name,
                        fmt64(current),
                        fmt64(new),
                        fmt64(*seen)
                    ),
                },
            )
        }
    }

    /// Named constructor (the model-side twin of the passthrough helper).
    #[inline]
    pub fn named_u32(value: u32, name: &'static str) -> AtomicU32 {
        AtomicU32 {
            inner: std::sync::atomic::AtomicU32::new(value),
            name,
        }
    }

    /// Named constructor for the `age` word.
    #[inline]
    pub fn named_u64(value: u64, name: &'static str) -> AtomicU64 {
        AtomicU64 {
            inner: std::sync::atomic::AtomicU64::new(value),
            name,
        }
    }

    /// Seq-cst fence: a scheduling point under the model (the fence itself
    /// is a no-op in interleaving semantics, but its *position* between
    /// accesses is part of the protocol, so it shows up in traces), plus
    /// the normal metrics accounting.
    #[inline]
    pub fn fence_seq_cst() {
        dfs::access(lcws_metrics::fence_seq_cst, |_| "fence(seq_cst)".into())
    }
}

pub use imp::{fence_seq_cst, named_u32, named_u64, AtomicU32, AtomicU64};
