//! `lcws-model`: a deterministic interleaving explorer for the deque
//! protocols (opt-in via the `model` cargo feature, mirroring
//! `faultpoints` and `trace`).
//!
//! ## Why
//!
//! The paper's §4 correctness argument hinges on one subtlety: a `SIGUSR1`
//! handler may run `update_public_bottom` between **any two instructions**
//! of the owner's `pop_bottom`, and only the `--bot < public_bot` trick
//! plus the right (pop-mode × exposure-policy) pairing prevents a lost or
//! double-run task. Stress tests sample a handful of interleavings; this
//! module *enumerates* them.
//!
//! ## How
//!
//! The deques perform every atomic access through the shim types in
//! [`shim`]. With the feature off, the shims are type aliases for
//! `std::sync::atomic` plus `#[inline(always)]` passthrough constructors —
//! release codegen is unchanged. With the feature on, each access first
//! parks the calling thread on a central scheduler that grants exactly one
//! thread at a time, so a whole execution is a deterministic sequence of
//! scheduler decisions. [`explore`] then drives a depth-first search over
//! that decision tree: replay a recorded prefix, extend it with
//! first-choice decisions to completion, check the user's invariants,
//! backtrack.
//!
//! ## The signal model (what loom lacks)
//!
//! Besides picking which thread's atomic access runs next, the scheduler
//! has one extra choice at every point where the handler's target thread
//! is parked: **deliver the signal now**. Delivery runs the handler
//! closure inline on the target thread — before the access the target was
//! about to perform — which models a full `SIGUSR1` handler executing
//! between any two of the owner's atomic accesses. The handler's own
//! atomic accesses remain scheduling points, so other threads (a thief's
//! CAS, say) interleave with the handler body exactly as real preemption
//! allows. One execution delivers the handler at most once; a script that
//! needs n deliveries models them as n explored executions of smaller
//! scripts, which keeps the state space tractable.
//!
//! ## Scope and abstractions (see DESIGN.md §5c)
//!
//! * Interleaving (sequentially-consistent) semantics: every access reads
//!   the globally latest value. Weak-memory reorderings are *not*
//!   explored; the checker targets the paper's algorithmic races, not the
//!   fence placement (which `split.rs` documents separately).
//! * Task-slot (`AtomicPtr`) accesses pass through unscheduled: slots are
//!   written during single-threaded setup in every script, so their reads
//!   commute with everything — removing them from the schedule loses no
//!   behaviours while shrinking the tree by orders of magnitude.
//! * The growable rings' *buffer pointer* ([`shim::SchedPtr`]) is the
//!   exception — the `Resize` decision point. The owner's grow-publish
//!   store and every thief-side capture are scheduling points, so
//!   owner-grow vs. thief-steal vs. handler-expose interleavings are
//!   enumerated like any other access. Only the owner's *own* reads of the
//!   pointer (`load_owner`) pass through: the owner is its sole writer, so
//!   those reads commute with everything. The grow's slot copies into the
//!   not-yet-published ring are invisible to other threads by definition
//!   and stay unscheduled with the other slot accesses.
//! * Threads not registered with the scheduler (the explorer thread doing
//!   setup/drain, ordinary test threads) pass through the shims directly.

pub(crate) mod shim;

#[cfg(feature = "model")]
mod dfs;

#[cfg(feature = "model")]
pub use dfs::{explore, pause, Execution, Options, Report, Violation};

/// Explicit scheduling point with no atomic access attached. Model-thread
/// scripts use it to let the scheduler act (e.g. deliver a pending signal)
/// at a program point that performs no atomic access of its own — before a
/// protocol's first access or after its last. No-op when the `model`
/// feature is off or the calling thread is not a registered model thread.
#[cfg(not(feature = "model"))]
#[inline(always)]
pub fn pause() {}

#[cfg(test)]
mod tests {
    #[cfg(not(any(feature = "model", feature = "hb")))]
    #[test]
    fn shims_are_std_aliases_when_model_is_off() {
        use std::any::TypeId;
        // The zero-cost claim, statically: with the feature off the shim
        // types *are* the std atomics, so deque codegen cannot differ.
        assert_eq!(
            TypeId::of::<super::shim::AtomicU32>(),
            TypeId::of::<std::sync::atomic::AtomicU32>()
        );
        assert_eq!(
            TypeId::of::<super::shim::AtomicU64>(),
            TypeId::of::<std::sync::atomic::AtomicU64>()
        );
        assert_eq!(
            TypeId::of::<super::shim::AtomicPtr<u8>>(),
            TypeId::of::<std::sync::atomic::AtomicPtr<u8>>()
        );
    }

    #[cfg(not(feature = "model"))]
    #[test]
    fn sched_ptr_is_transparent_when_model_is_off() {
        // Holds under `hb` too: the instrumented wrapper is also
        // `#[repr(transparent)]`.
        // `SchedPtr` cannot be a bare alias (it must also compile under
        // `model`), but with the feature off it is a `#[repr(transparent)]`
        // wrapper over the std atomic — same size, same layout.
        assert_eq!(
            std::mem::size_of::<super::shim::SchedPtr<u8>>(),
            std::mem::size_of::<std::sync::atomic::AtomicPtr<u8>>()
        );
        assert_eq!(
            std::mem::align_of::<super::shim::SchedPtr<u8>>(),
            std::mem::align_of::<std::sync::atomic::AtomicPtr<u8>>()
        );
    }
}
