//! The depth-first interleaving explorer behind the `model` feature.
//!
//! One *execution* runs the script's threads on real OS threads, but every
//! shim atomic access first parks its thread on a token scheduler: the
//! controller (the thread that called [`explore`]) waits until every
//! unfinished thread is parked, consults the decision stack for which
//! thread — or the pending signal — goes next, and grants exactly one.
//! An execution is therefore a deterministic function of its decision
//! vector, and [`explore`] enumerates all vectors depth-first: replay the
//! recorded prefix, extend with first choices until the execution
//! completes, run the script's invariant check, then backtrack by bumping
//! the deepest decision that still has unexplored alternatives.
//!
//! Signal delivery is one extra decision: whenever the handler's target
//! thread is parked and the handler has not been delivered yet in this
//! execution, "deliver now" is an option. Taking it runs the handler
//! closure inline on the target thread *before* the access the target was
//! parked on — a full handler run between two adjacent owner accesses,
//! with the handler's own accesses remaining scheduling points other
//! threads can interleave with.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Sentinel for threads that are not part of a model execution.
const UNREGISTERED: usize = usize::MAX;

thread_local! {
    static THREAD_INDEX: Cell<usize> = const { Cell::new(UNREGISTERED) };
    static IN_HANDLER: Cell<bool> = const { Cell::new(false) };
    static EXPLORER_CTX: RefCell<Option<ExplorerCtx>> = const { RefCell::new(None) };
}

/// Exploration limits. The defaults comfortably cover the deque scripts in
/// `tests/model.rs` (thousands to tens of thousands of schedules).
#[derive(Debug, Clone)]
pub struct Options {
    /// Stop (reporting `complete: false`) after this many executions.
    pub max_schedules: u64,
    /// Panic if a single execution makes this many scheduling decisions —
    /// a livelocked script (e.g. an unbounded retry loop).
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_schedules: 2_000_000,
            max_steps: 20_000,
        }
    }
}

/// A failing interleaving, as returned by the script's check function.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The script's own description of what went wrong.
    pub message: String,
    /// The decision vector reproducing the execution (option index at each
    /// scheduling point).
    pub schedule: Vec<usize>,
    /// Human-readable access trace of the failing execution, one line per
    /// scheduled event.
    pub trace: Vec<String>,
}

impl Violation {
    /// Multi-line rendering for test output and EXPERIMENTS walkthroughs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "violation: {}\nschedule (decision vector): {:?}\ninterleaving trace:\n",
            self.message, self.schedule
        );
        for line in &self.trace {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Result of an [`explore`] call.
#[derive(Debug)]
pub struct Report {
    /// Number of executions (complete thread schedules) explored.
    pub schedules: u64,
    /// Whether the decision tree was exhausted (false when stopped early by
    /// `max_schedules` or by a violation).
    pub complete: bool,
    /// The first violating interleaving found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// Assert this report proves the property: the tree was exhausted and
    /// no interleaving violated the check. Panics with the rendered
    /// counterexample otherwise.
    #[track_caller]
    pub fn assert_exhaustive_pass(&self, what: &str) {
        if let Some(v) = &self.violation {
            panic!("{what}: counterexample found\n{}", v.render());
        }
        assert!(
            self.complete,
            "{what}: exploration stopped early after {} schedules",
            self.schedules
        );
    }
}

/// Per-`explore` state, living in the explorer thread's TLS so the
/// controller and the schedule loop share it without threading it through
/// the user's script closure.
struct ExplorerCtx {
    decisions: DecisionStack,
    last_log: Vec<String>,
    max_steps: usize,
}

fn with_explorer<T>(f: impl FnOnce(&mut ExplorerCtx) -> T) -> T {
    EXPLORER_CTX.with(|c| {
        let mut borrow = c.borrow_mut();
        let ctx = borrow
            .as_mut()
            .expect("model Execution::run outside model::explore");
        f(ctx)
    })
}

/// The DFS decision vector: `(chosen option, number of options)` per
/// scheduling point, replayed from the top on every execution.
#[derive(Default)]
struct DecisionStack {
    chosen: Vec<(usize, usize)>,
    cursor: usize,
}

impl DecisionStack {
    /// Next decision: replay the recorded prefix, then extend with option 0.
    fn next(&mut self, num_options: usize) -> usize {
        debug_assert!(num_options > 0);
        if self.cursor < self.chosen.len() {
            let (choice, recorded) = self.chosen[self.cursor];
            assert_eq!(
                recorded, num_options,
                "non-deterministic model execution: replay diverged at \
                 decision {} (recorded {} options, now {})",
                self.cursor, recorded, num_options
            );
            self.cursor += 1;
            choice
        } else {
            self.chosen.push((0, num_options));
            self.cursor += 1;
            0
        }
    }

    /// Advance to the next unexplored schedule; false when exhausted.
    fn advance(&mut self) -> bool {
        self.cursor = 0;
        while let Some(last) = self.chosen.last_mut() {
            if last.0 + 1 < last.1 {
                last.0 += 1;
                return true;
            }
            self.chosen.pop();
        }
        false
    }

    fn schedule(&self) -> Vec<usize> {
        self.chosen.iter().map(|&(c, _)| c).collect()
    }
}

type HandlerFn = Box<dyn Fn() + Send + Sync + 'static>;

struct SessState {
    /// Thread i is parked on the scheduler, wanting to run.
    waiting: Vec<bool>,
    /// Thread i has returned from its script closure.
    finished: Vec<bool>,
    /// The single thread currently granted to run (consumed on wake).
    turn: Option<usize>,
    /// Grant carries a signal delivery: the woken thread must run the
    /// handler before its pending access.
    deliver_handler: bool,
    /// The (at most one) delivery already happened this execution.
    handler_delivered: bool,
    /// Controller panicked: threads run free so the scope can unwind.
    free_run: bool,
    /// Scheduling decisions made this execution (livelock guard).
    steps: usize,
    log: Vec<String>,
}

struct Session {
    state: Mutex<SessState>,
    cv: Condvar,
    names: Vec<&'static str>,
    handler: Option<(usize, HandlerFn)>,
}

/// The live session, published for `access()` calls from arbitrary deque
/// code on registered threads. Null outside `Execution::run`.
static SESSION: AtomicPtr<Session> = AtomicPtr::new(std::ptr::null_mut());

impl Session {
    fn new(names: Vec<&'static str>, handler: Option<(usize, HandlerFn)>) -> Session {
        let n = names.len();
        Session {
            state: Mutex::new(SessState {
                waiting: vec![false; n],
                finished: vec![false; n],
                turn: None,
                deliver_handler: false,
                handler_delivered: false,
                free_run: false,
                steps: 0,
                log: Vec::new(),
            }),
            cv: Condvar::new(),
            names,
            handler,
        }
    }

    fn lock(&self) -> MutexGuard<'_, SessState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push_log(&self, idx: usize, msg: &str) {
        let marker = if IN_HANDLER.with(|c| c.get()) {
            "(handler)"
        } else {
            ""
        };
        self.lock()
            .log
            .push(format!("{}{}: {}", self.names[idx], marker, msg));
    }

    /// Park until granted; if the grant carries a signal delivery, run the
    /// handler inline first, then park again for the original access.
    fn step(&self, idx: usize) {
        loop {
            let mut g = self.lock();
            if g.free_run {
                return;
            }
            g.waiting[idx] = true;
            self.cv.notify_all();
            while g.turn != Some(idx) {
                if g.free_run {
                    g.waiting[idx] = false;
                    return;
                }
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g.turn = None;
            g.waiting[idx] = false;
            let deliver = g.deliver_handler;
            g.deliver_handler = false;
            drop(g);
            if deliver {
                let (_, handler) = self
                    .handler
                    .as_ref()
                    .expect("signal delivery without a handler");
                IN_HANDLER.with(|c| c.set(true));
                handler();
                IN_HANDLER.with(|c| c.set(false));
                self.push_log(idx, "handler returns; original access resumes");
                continue;
            }
            return;
        }
    }

    fn finish(&self, idx: usize) {
        let mut g = self.lock();
        g.finished[idx] = true;
        g.waiting[idx] = false;
        self.cv.notify_all();
    }

    /// The controller loop: one decision per iteration until every thread
    /// finished.
    fn control(&self) {
        let n = self.names.len();
        let target = self.handler.as_ref().map(|&(t, _)| t);
        loop {
            let mut g = self.lock();
            loop {
                if g.finished.iter().all(|&f| f) {
                    return;
                }
                // Decide only once the previous grant has been consumed
                // (`turn` cleared by the woken thread) and every unfinished
                // thread is parked again — otherwise the still-`waiting`
                // flag of a granted-but-not-yet-woken thread would trigger
                // a spurious extra decision.
                if g.turn.is_none() && (0..n).all(|i| g.finished[i] || g.waiting[i]) {
                    break;
                }
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            // Options: any parked thread may run; additionally, if the
            // armed handler has not been delivered and its target is still
            // alive (parked), the signal may arrive now. `None` encodes
            // "deliver the signal".
            let mut options: Vec<Option<usize>> =
                (0..n).filter(|&i| !g.finished[i]).map(Some).collect();
            if let Some(t) = target {
                if !g.handler_delivered && !g.finished[t] {
                    options.push(None);
                }
            }
            g.steps += 1;
            let (choice, max_steps) =
                with_explorer(|e| (e.decisions.next(options.len()), e.max_steps));
            assert!(
                g.steps <= max_steps,
                "model execution exceeded {max_steps} scheduling decisions — \
                 livelocked script? (raise Options::max_steps if intended)"
            );
            match options[choice] {
                Some(i) => g.turn = Some(i),
                None => {
                    let t = target.expect("handler option without target");
                    g.handler_delivered = true;
                    g.deliver_handler = true;
                    g.turn = Some(t);
                    let line = format!("signal: SIGUSR1 delivered to {}", self.names[t]);
                    g.log.push(line);
                }
            }
            self.cv.notify_all();
        }
    }

    /// Unblock every parked thread permanently (controller bail-out path).
    fn release_all(&self) {
        let mut g = self.lock();
        g.free_run = true;
        self.cv.notify_all();
    }
}

/// Route one atomic access through the scheduler. Called by the shim types;
/// passthrough for threads that are not part of a model execution.
pub fn access<T>(op: impl FnOnce() -> T, describe: impl FnOnce(&T) -> String) -> T {
    let idx = THREAD_INDEX.with(|c| c.get());
    if idx == UNREGISTERED {
        return op();
    }
    let session = SESSION.load(Ordering::Acquire);
    if session.is_null() {
        return op();
    }
    // Safety: non-null only while `Execution::run` is on the stack of the
    // controlling thread, and registered threads are scoped within it.
    let session = unsafe { &*session };
    session.step(idx);
    let value = op();
    session.push_log(idx, &describe(&value));
    value
}

/// Explicit scheduling point with no attached atomic access; see
/// [`crate::model::pause`] for the cross-feature documentation.
pub fn pause() {
    let idx = THREAD_INDEX.with(|c| c.get());
    if idx == UNREGISTERED {
        return;
    }
    let session = SESSION.load(Ordering::Acquire);
    if session.is_null() {
        return;
    }
    // Safety: as in `access`.
    let session = unsafe { &*session };
    session.step(idx);
    session.push_log(idx, "pause (no access)");
}

/// Marks a model thread finished even when its closure unwinds, so the
/// controller never waits forever on a panicking thread.
struct FinishGuard<'a> {
    session: &'a Session,
    idx: usize,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        THREAD_INDEX.with(|c| c.set(UNREGISTERED));
        IN_HANDLER.with(|c| c.set(false));
        self.session.finish(self.idx);
    }
}

/// One concurrent program over the shim atomics: up to a handful of named
/// threads plus an optional signal handler targeting one of them.
#[derive(Default)]
pub struct Execution<'env> {
    threads: Vec<(&'static str, Box<dyn FnOnce() + Send + 'env>)>,
    handler: Option<(usize, Box<dyn Fn() + Send + Sync + 'env>)>,
}

impl<'env> Execution<'env> {
    /// An execution with no threads yet.
    pub fn new() -> Self {
        Execution::default()
    }

    /// Add a named thread running `f` (builder style; thread indices are
    /// assigned in call order).
    pub fn thread(mut self, name: &'static str, f: impl FnOnce() + Send + 'env) -> Self {
        self.threads.push((name, Box::new(f)));
        self
    }

    /// Arm a signal handler that the scheduler may deliver (at most once
    /// per execution) to thread `target` at any of its scheduling points.
    pub fn handler_on(mut self, target: usize, f: impl Fn() + Send + Sync + 'env) -> Self {
        self.handler = Some((target, Box::new(f)));
        self
    }

    /// Run the execution under the current [`explore`] decision vector.
    /// Must be called from inside an `explore` body, on the explorer
    /// thread.
    pub fn run(self) {
        let Execution { threads, handler } = self;
        let n = threads.len();
        assert!(n > 0, "an execution needs at least one thread");
        let names: Vec<&'static str> = threads.iter().map(|&(name, _)| name).collect();
        let handler: Option<(usize, HandlerFn)> = handler.map(|(t, f)| {
            assert!(t < n, "handler target {t} out of range (n = {n})");
            // Safety: lifetime erasure only. The session — and with it the
            // only reference to this closure — is dropped before `run`
            // returns, which is within 'env.
            let f: HandlerFn =
                unsafe { std::mem::transmute::<Box<dyn Fn() + Send + Sync + 'env>, HandlerFn>(f) };
            (t, f)
        });
        let session = Session::new(names, handler);
        SESSION.store(
            &session as *const Session as *mut Session,
            Ordering::Release,
        );
        let controlled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                for (i, (_, f)) in threads.into_iter().enumerate() {
                    let sess: &Session = &session;
                    s.spawn(move || {
                        THREAD_INDEX.with(|c| c.set(i));
                        let _finish = FinishGuard {
                            session: sess,
                            idx: i,
                        };
                        f();
                    });
                }
                let control = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    session.control();
                }));
                if control.is_err() {
                    // Let the threads run to completion unscheduled so the
                    // scope can join them, then re-raise.
                    session.release_all();
                }
                control
            })
        }));
        SESSION.store(std::ptr::null_mut(), Ordering::Release);
        let log = std::mem::take(&mut session.lock().log);
        with_explorer(|e| e.last_log = log);
        match controlled {
            // A controller panic (replay divergence, livelock guard)
            // surfaces after the scope exits cleanly.
            Ok(Err(payload)) | Err(payload) => std::panic::resume_unwind(payload),
            Ok(Ok(())) => {}
        }
    }
}

/// Serializes explorations across test threads: the scheduler session is a
/// process-wide singleton.
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

/// Exhaustively explore every schedule of the executions `body` runs.
///
/// `body` is called once per schedule. It must be deterministic apart from
/// the scheduler's decisions: set up state, build and [`Execution::run`]
/// one execution, then check invariants, returning `Err(description)` on a
/// violation (which stops the search and captures the interleaving trace).
pub fn explore(opts: Options, mut body: impl FnMut() -> Result<(), String>) -> Report {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    EXPLORER_CTX.with(|c| {
        *c.borrow_mut() = Some(ExplorerCtx {
            decisions: DecisionStack::default(),
            last_log: Vec::new(),
            max_steps: opts.max_steps,
        })
    });
    let mut schedules = 0u64;
    let mut violation = None;
    let complete = loop {
        schedules += 1;
        match body() {
            Ok(()) => {}
            Err(message) => {
                violation = Some(with_explorer(|e| Violation {
                    message,
                    schedule: e.decisions.schedule(),
                    trace: std::mem::take(&mut e.last_log),
                }));
                break false;
            }
        }
        if !with_explorer(|e| e.decisions.advance()) {
            break true;
        }
        if schedules >= opts.max_schedules {
            break false;
        }
    };
    EXPLORER_CTX.with(|c| *c.borrow_mut() = None);
    Report {
        schedules,
        complete,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::super::shim;
    use super::*;
    use std::sync::atomic::Ordering as O;

    #[test]
    fn two_single_access_threads_have_two_schedules() {
        let report = explore(Options::default(), || {
            let a = shim::named_u32(0, "a");
            let b = shim::named_u32(0, "b");
            Execution::new()
                .thread("t0", || a.store(1, O::Relaxed))
                .thread("t1", || b.store(1, O::Relaxed))
                .run();
            assert_eq!(a.load(O::Relaxed), 1); // post-run: passthrough access
            assert_eq!(b.load(O::Relaxed), 1);
            Ok(())
        });
        report.assert_exhaustive_pass("two independent stores");
        assert_eq!(report.schedules, 2, "t0-first and t1-first");
    }

    #[test]
    fn handler_injects_at_every_boundary() {
        // One thread with two accesses, plus a handler: the handler can
        // arrive before access 1, between the accesses, or never — three
        // schedules. (After the last access the thread finishes immediately,
        // so "after access 2" coincides with "never" unless the script adds
        // a trailing pause.)
        let report = explore(Options::default(), || {
            let x = shim::named_u32(0, "x");
            let seen = shim::named_u32(0, "seen");
            Execution::new()
                .thread("owner", || {
                    x.store(1, O::Relaxed);
                    x.store(2, O::Relaxed);
                })
                .handler_on(0, || {
                    // Unscheduled bookkeeping only (plain std atomic would
                    // also do): record what the handler observed.
                    let _ = &seen;
                })
                .run();
            Ok(())
        });
        report.assert_exhaustive_pass("handler positions");
        assert_eq!(report.schedules, 3);
    }

    #[test]
    fn trailing_pause_exposes_post_protocol_delivery() {
        let report = explore(Options::default(), || {
            let x = shim::named_u32(0, "x");
            Execution::new()
                .thread("owner", || {
                    x.store(1, O::Relaxed);
                    pause();
                })
                .handler_on(0, || {})
                .run();
            Ok(())
        });
        report.assert_exhaustive_pass("pause point");
        // Deliver before the store, between store and pause, or never.
        assert_eq!(report.schedules, 3);
    }

    #[test]
    fn dfs_finds_the_lost_update() {
        // The canonical non-atomic increment: two threads doing
        // load-then-store(+1) on one cell. Some interleaving must lose an
        // update, and the explorer must find and report it.
        let report = explore(Options::default(), || {
            let x = shim::named_u32(0, "x");
            let bump = || {
                let v = x.load(O::Relaxed);
                x.store(v + 1, O::Relaxed);
            };
            Execution::new().thread("t0", bump).thread("t1", bump).run();
            let v = x.load(O::Relaxed);
            if v == 2 {
                Ok(())
            } else {
                Err(format!("lost update: x = {v} after two increments"))
            }
        });
        let v = report
            .violation
            .expect("explorer must find the lost update");
        assert!(v.message.contains("lost update"));
        assert!(!v.trace.is_empty(), "counterexample carries a trace");
        assert!(!v.schedule.is_empty(), "counterexample carries a schedule");
        // The rendered form is what EXPERIMENTS.md tells users to read.
        assert!(v.render().contains("interleaving trace"));
    }

    #[test]
    fn handler_accesses_interleave_with_other_threads() {
        // A handler whose body performs scheduled accesses: a thief access
        // can land *inside* the handler run. Verified by finding an
        // interleaving where the thief's load sees the handler's first
        // store but not its second.
        let report = explore(Options::default(), || {
            let a = shim::named_u32(0, "a");
            let b = shim::named_u32(0, "b");
            let saw_torn = std::sync::atomic::AtomicBool::new(false);
            Execution::new()
                .thread("owner", || {
                    pause();
                    pause();
                })
                .thread("thief", || {
                    let av = a.load(O::Relaxed);
                    let bv = b.load(O::Relaxed);
                    if av == 1 && bv == 0 {
                        saw_torn.store(true, O::Relaxed);
                    }
                })
                .handler_on(0, || {
                    a.store(1, O::Relaxed);
                    b.store(1, O::Relaxed);
                })
                .run();
            if saw_torn.load(O::Relaxed) {
                Err("thief observed the handler mid-run".into())
            } else {
                Ok(())
            }
        });
        assert!(
            report.violation.is_some(),
            "some schedule must interleave the thief inside the handler"
        );
    }

    #[test]
    fn replay_is_deterministic_across_many_schedules() {
        // A 3-thread script with several accesses each: exhausting it
        // without a replay-divergence panic is itself the assertion.
        let report = explore(Options::default(), || {
            let x = shim::named_u32(0, "x");
            let work = || {
                let v = x.load(O::Relaxed);
                x.store(v | 1, O::Relaxed);
            };
            Execution::new()
                .thread("a", work)
                .thread("b", work)
                .thread("c", work)
                .run();
            Ok(())
        });
        report.assert_exhaustive_pass("three-thread determinism");
        assert!(report.schedules >= 90, "6 orderings × interleavings");
    }
}
