//! Per-worker scheduling logic: Listing 1's `get_task` (split into a local
//! acquisition step and a one-victim steal step), the Listing 3 notification
//! rules, and the fork-join `join` primitive built on top of them.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::Ordering;

use lcws_metrics as metrics;
use lcws_metrics::Counter;

use crate::deque::{AbpSteal, DequeFull, SplitDeque, Steal, STEAL_BATCH_MAX};
use crate::fault::{self, Site};
use crate::hb::shim::AtomicU32;
use crate::injector::INJECTOR_BATCH;
use crate::job::{Job, StackJob, NO_WAITER};
use crate::policy::{NotifyChannel, Policies, StealAmount, VictimSelection};
use crate::pool::{AnyDeque, PoolInner, WorkerShared};
use crate::signal::{self, HandlerCtx};
use crate::sleep::{IdleAction, IdleBackoff, WAITER_PARK_TIMEOUT};
use crate::trace;

thread_local! {
    /// The worker context of the current thread, when it participates in a
    /// pool run (workers for the pool's lifetime; the caller thread for the
    /// duration of each `run`).
    static CURRENT: Cell<*const WorkerCtx> = const { Cell::new(ptr::null()) };
}

/// Outcome of one steal iteration, separating "the victim provably held
/// work an instant ago" from "nothing to steal". The distinction drives the
/// idle backoff: contention must not escalate a thief toward parking.
pub(crate) enum StealAttempt {
    /// A task was stolen.
    Taken(*mut Job),
    /// The victim held work but this thief lost the race for it
    /// (`Steal::Abort`): stay hot, the work is being fought over right now.
    Contended,
    /// Nothing stealable was found this iteration.
    NoWork,
}

/// The current thread's worker context, or null outside pool runs.
pub(crate) fn current_ctx() -> *const WorkerCtx {
    CURRENT.with(|c| c.get())
}

/// Deliver a targeted completion wake to the worker parked in `await_job`
/// or the scope drain, if one registered. Called by the job executor right
/// after it publishes `done` — through *pool* state only; the job header
/// may already be freed (see [`Job::mark_done`]).
///
/// Runs on whichever thread executed the job. If that thread has no
/// installed ctx (it ran the job inline outside a pool run), there is no
/// pool to route the wake through — but then the joiner is on the same
/// thread and was never parked, so there is nothing to deliver.
pub(crate) fn wake_waiter(index: u32) {
    if index == NO_WAITER {
        return;
    }
    let ctx = current_ctx();
    if !ctx.is_null() {
        // Safety: installed ctx pointers outlive the executing job.
        unsafe { (*ctx).pool().sleep.wake_worker(index as usize) };
    }
}

/// Run scheduling work on `ctx`'s worker until `done` reports true. Used
/// by `JoinHandle::join` on worker threads: blocking a worker on a condvar
/// could deadlock the very pool that must run the joined task, so the
/// joiner keeps executing local, stolen, and injector work instead.
///
/// `waiter` is the completion-wake registration slot of whatever `done`
/// observes (e.g. `TaskState::waiter`): before parking, the worker
/// registers its index there so the completer can deliver a targeted wake
/// through `wake_waiter`, exactly like `await_job` registers in
/// `Job::waiter` — without it the park arm is pure 1ms-backstop polling.
/// `None` keeps the plain eventcount-recheck park for callers with no
/// registration slot.
pub(crate) fn help_until(ctx: &WorkerCtx, done: impl Fn() -> bool, waiter: Option<&AtomicU32>) {
    let mut backoff = IdleBackoff::new(ctx.pool().idle);
    loop {
        if done() {
            return;
        }
        if let Some(job) = ctx.acquire_local() {
            ctx.execute(job);
            backoff.reset();
            continue;
        }
        match ctx.steal_once() {
            StealAttempt::Taken(job) => {
                ctx.execute(job);
                backoff.reset();
            }
            StealAttempt::Contended => {
                metrics::bump(Counter::IdleIter);
                backoff.reset();
                std::hint::spin_loop();
            }
            StealAttempt::NoWork => {
                if ctx.try_injector() {
                    backoff.reset();
                    continue;
                }
                metrics::bump(Counter::IdleIter);
                match backoff.next() {
                    IdleAction::Park => match waiter {
                        Some(w) => {
                            // Same SeqCst register / longer-backstop park /
                            // withdraw protocol as `await_job`; see
                            // `crate::sleep` for the pairing argument.
                            w.store(ctx.index as u32, Ordering::SeqCst);
                            ctx.pool().sleep.park_with_backstop(
                                ctx.index,
                                WAITER_PARK_TIMEOUT,
                                || done() || ctx.any_work_visible(),
                            );
                            w.store(NO_WAITER, Ordering::SeqCst);
                        }
                        None => ctx
                            .pool()
                            .sleep
                            .park(ctx.index, || done() || ctx.any_work_visible()),
                    },
                    action => IdleBackoff::relax(action),
                }
            }
        }
    }
}

/// Per-thread scheduling state. Lives at a stable address (worker stack
/// frame) while installed into TLS.
pub(crate) struct WorkerCtx {
    pool: *const PoolInner,
    index: usize,
    rng: Cell<u64>,
    /// Near-first probe cursor ([`VictimSelection::NearFirst`]): how many
    /// consecutive probes the current steal drought has made. Reset on
    /// every successful steal so the ring restarts at the nearest
    /// neighbour.
    probe: Cell<u64>,
    /// Signal-handler context pointing at this worker's split deque; armed
    /// only for signal-driven policy bundles.
    handler_ctx: HandlerCtx,
}

impl WorkerCtx {
    pub(crate) fn new(pool: &PoolInner, index: usize) -> WorkerCtx {
        let deque = match &pool.workers[index].deque {
            AnyDeque::Split(d) => d as *const _,
            AnyDeque::Abp(_) => ptr::null(),
        };
        // Distinct, never-zero RNG seed per worker (SplitMix64 of index+1).
        let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        WorkerCtx {
            pool,
            index,
            rng: Cell::new(z | 1),
            probe: Cell::new(0),
            handler_ctx: HandlerCtx {
                deque,
                policy: pool.policies.exposure,
                wake_pending: &*pool.workers[index].wake_pending as *const _,
            },
        }
    }

    #[inline]
    pub(crate) fn pool(&self) -> &PoolInner {
        // Safety: the pool outlives every installed ctx (workers are joined
        // before PoolInner drops; run() clears the caller's ctx on exit).
        unsafe { &*self.pool }
    }

    #[inline]
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    #[inline]
    fn policies(&self) -> &Policies {
        &self.pool().policies
    }

    #[inline]
    fn shared(&self) -> &WorkerShared {
        &self.pool().workers[self.index]
    }

    /// Install this context into TLS (and arm the signal handler context
    /// for signal-based variants). The returned guard restores the previous
    /// state on drop, including during unwinding.
    pub(crate) fn install(&self) -> CtxGuard<'_> {
        CURRENT.with(|c| {
            debug_assert!(c.get().is_null(), "nested worker ctx installation");
            c.set(self as *const WorkerCtx);
        });
        // Arm the trace ring before the handler ctx: once signals can land,
        // the handler's records must already have somewhere to go.
        // Safety: the ring lives in the pool, which outlives the guard.
        #[cfg(feature = "trace")]
        unsafe {
            trace::set_ring(&self.shared().trace)
        };
        if self.policies().uses_signals() {
            // Safety: `self` outlives the guard, which disarms on drop.
            unsafe { signal::set_handler_ctx(&self.handler_ctx) };
        }
        CtxGuard { ctx: self }
    }

    /// Uniformly random victim index ≠ self (xorshift64*; never called with
    /// fewer than two workers).
    fn random_victim(&self, num_workers: usize) -> usize {
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        let z = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        victim_from_random(z, num_workers, self.index)
    }

    /// The victim for this steal iteration, per the pool's
    /// [`VictimSelection`] policy. Near-first walks the index ring outward
    /// from self; once a full ring of probes found nothing it falls back to
    /// the bias-free uniform draw (one random probe per ring thereafter)
    /// so a starved neighbourhood cannot capture the thief forever.
    fn choose_victim(&self, num_workers: usize) -> usize {
        if self.policies().victim == VictimSelection::NearFirst {
            let step = self.probe.get();
            self.probe.set(step.wrapping_add(1));
            if let Some(v) = victim_near_first(step, num_workers, self.index) {
                return v;
            }
        }
        self.random_victim(num_workers)
    }

    /// A steal succeeded: restart the near-first probe ring at the nearest
    /// neighbour (no-op for the uniform policy).
    #[inline]
    fn note_steal_success(&self) {
        if self.policies().victim == VictimSelection::NearFirst {
            self.probe.set(0);
        }
    }

    /// Try to push a job at the bottom of this worker's deque.
    ///
    /// For the signal variants, pushing new work re-enables notifications
    /// (§4: the `targeted` flag "is only reset to false when a task is
    /// removed from the deque's public part or the target processor pushes
    /// a new task").
    ///
    /// On [`DequeFull`] the job was **not** enqueued and the caller still
    /// owns it; `join` and `scope` degrade to running it inline on this
    /// worker (counted as `OverflowInline`) instead of aborting.
    pub(crate) fn try_push_job(&self, job: *mut Job) -> Result<(), DequeFull> {
        self.try_push_job_quiet(job)?;
        // New work is visible: give a parked thief a chance at it (or, for
        // a split deque, a chance to request its exposure).
        self.pool().sleep.wake_one();
        Ok(())
    }

    /// [`WorkerCtx::try_push_job`] minus the trailing thief wake, for batch
    /// callers (`try_injector`, the batch-steal surplus requeue) that
    /// coalesce the whole batch into one `wake_one` — waking a parked
    /// worker per task just stampedes sleepers at the same deque. The
    /// handler's deferred wake still drains per push: that one belongs to
    /// the signal handler, not to this batch.
    fn try_push_job_quiet(&self, job: *mut Job) -> Result<(), DequeFull> {
        let w = self.shared();
        match &w.deque {
            AnyDeque::Abp(d) => d.try_push_bottom(job)?,
            AnyDeque::Split(d) => {
                d.try_push_bottom(job)?;
                if self.policies().uses_signals() && w.targeted.load(Ordering::Relaxed) {
                    w.targeted.store(false, Ordering::Relaxed);
                }
            }
        }
        self.drain_deferred_wake(w);
        Ok(())
    }

    /// Perform any wake the signal handler deferred to us (it only sets
    /// `wake_pending`; condvar notification is not async-signal-safe).
    #[inline]
    fn drain_deferred_wake(&self, w: &WorkerShared) {
        if w.wake_pending.load(Ordering::Relaxed) {
            w.wake_pending.store(false, Ordering::Relaxed);
            self.pool().sleep.wake_one();
        }
    }

    /// Is any task observably present in any worker's deque (including
    /// private split-deque parts, whose exposure a thief must stay awake
    /// to request) or in the global injector? Used as the parking recheck.
    fn any_work_visible(&self) -> bool {
        !self.pool().injector.is_empty()
            || self.pool().workers.iter().any(|w| match &w.deque {
                AnyDeque::Abp(d) => !d.is_empty(),
                AnyDeque::Split(d) => !d.is_empty(),
            })
    }

    /// Injector fallback: after a fruitless steal round, take a batch of
    /// externally-submitted tasks. The head runs immediately; the tail is
    /// re-queued into this worker's own deque *first*, so thieves can share
    /// a burst instead of one worker draining it serially. Returns whether
    /// any task was executed.
    pub(crate) fn try_injector(&self) -> bool {
        let batch = self.pool().injector.pop_batch(INJECTOR_BATCH);
        let (&first, rest) = match batch.split_first() {
            Some(s) => s,
            None => return false,
        };
        metrics::bump_by(Counter::InjectorPop, batch.len() as u64);
        trace::record(trace::EventKind::InjectorPop, batch.len() as u32);
        let mut queued = false;
        for &job in rest {
            if self.try_push_job_quiet(job).is_err() {
                // Forced DequeFull (see `join`): ownership stays with us,
                // degrade to running the task inline.
                metrics::bump(Counter::OverflowInline);
                trace::record(trace::EventKind::OverflowInline, 0);
                self.execute(job);
            } else {
                queued = true;
            }
        }
        if queued {
            // One wake for the whole re-queued tail: the tasks became
            // visible together, and `INJECTOR_BATCH − 1` wakes for them
            // would just stampede parked thieves at one deque.
            self.pool().sleep.wake_one();
        }
        self.execute(first);
        true
    }

    /// Listing 1 lines 7–17: take a task from this worker's own deque,
    /// performing the per-variant `targeted`-flag bookkeeping.
    pub(crate) fn acquire_local(&self) -> Option<*mut Job> {
        let w = self.shared();
        self.drain_deferred_wake(w);
        match &w.deque {
            AnyDeque::Abp(d) => d.pop_bottom(),
            AnyDeque::Split(d) => {
                let policies = self.policies();
                // Degraded-notification path: a thief whose `pthread_kill`
                // failed left its steal request in `fallback_expose`; serve
                // it here at task granularity, exactly like USLCWS serves
                // `targeted` (constant-time exposure is lost only for the
                // requests whose signal already failed).
                if policies.polls_fallback_flag() && w.fallback_expose.load(Ordering::Relaxed) {
                    fault::point(Site::TargetedPoll);
                    trace::record(trace::EventKind::TargetedPoll, 1);
                    w.fallback_expose.store(false, Ordering::Relaxed);
                    metrics::bump(Counter::ExposureRequest);
                    if d.update_public_bottom(policies.exposure) > 0 {
                        self.pool().sleep.wake_one();
                    }
                }
                if let Some(task) = d.pop_bottom(policies.pop_bottom) {
                    // Flag-notified bundles (USLCWS) handle exposure
                    // requests here — at task granularity, which is exactly
                    // why they lose the constant-time-exposure guarantee
                    // (§3).
                    if policies.notify == NotifyChannel::Flag && w.targeted.load(Ordering::Relaxed)
                    {
                        fault::point(Site::TargetedPoll);
                        trace::record(trace::EventKind::TargetedPoll, 0);
                        w.targeted.store(false, Ordering::Relaxed);
                        metrics::bump(Counter::ExposureRequest);
                        if d.update_public_bottom(policies.exposure) > 0 {
                            // Freshly public work: wake a thief for it.
                            self.pool().sleep.wake_one();
                        }
                    }
                    return Some(task);
                }
                if let Some(task) = d.pop_public_bottom() {
                    // A task left the public part: allow fresh notifications.
                    // §3/§4: `targeted` resets when "a task is removed from
                    // the deque's public part" — for *every* split-deque
                    // variant. USLCWS included: a stale flag here would make
                    // thieves skip this victim while it drains its public
                    // part, stranding the pending exposure request until the
                    // next push.
                    w.targeted.store(false, Ordering::Relaxed);
                    return Some(task);
                }
                if policies.notify == NotifyChannel::Flag {
                    // Listing 1 line 17.
                    w.targeted.store(false, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// One iteration of the stealing phase (Listing 1 lines 20–23 /
    /// Listing 3): pick a random victim, try to steal, and send the
    /// per-variant work-exposure notification on `PRIVATE_WORK`.
    ///
    /// `Steal::Abort` maps to [`StealAttempt::Contended`], **not** to
    /// no-work: an abort proves the victim held a stealable task an
    /// instant ago (another taker won the CAS), and folding it into the
    /// empty outcome would walk contending thieves up the idle-backoff
    /// ladder toward parking at the exact moment work is available.
    pub(crate) fn steal_once(&self) -> StealAttempt {
        let pool = self.pool();
        let p = pool.workers.len();
        if p <= 1 {
            return StealAttempt::NoWork;
        }
        let victim_idx = self.choose_victim(p);
        let victim = &pool.workers[victim_idx];
        match &victim.deque {
            AnyDeque::Abp(d) => match d.pop_top() {
                AbpSteal::Ok(task) => {
                    trace::record(trace::EventKind::StealOk, victim_idx as u32);
                    self.note_steal_success();
                    StealAttempt::Taken(task)
                }
                AbpSteal::Abort => StealAttempt::Contended,
                AbpSteal::Empty => StealAttempt::NoWork,
            },
            AnyDeque::Split(d) => {
                let outcome = if self.policies().steal == StealAmount::Half {
                    self.steal_batch(d)
                } else {
                    d.pop_top()
                };
                match outcome {
                    Steal::Ok(task) => {
                        trace::record(trace::EventKind::StealOk, victim_idx as u32);
                        self.note_steal_success();
                        // Stealing removed a task from the victim's public
                        // part: future thieves may request exposure again.
                        victim.targeted.store(false, Ordering::Relaxed);
                        StealAttempt::Taken(task)
                    }
                    Steal::PrivateWork => {
                        trace::record(trace::EventKind::StealPrivate, victim_idx as u32);
                        self.notify_victim(victim_idx, victim, d);
                        StealAttempt::NoWork
                    }
                    Steal::Abort => StealAttempt::Contended,
                    Steal::Empty => StealAttempt::NoWork,
                }
            }
        }
    }

    /// [`StealAmount::Half`]: take up to `⌈public/2⌉` of the victim's
    /// public tasks with one validating age CAS, keep the oldest as this
    /// iteration's task, and requeue the surplus into our own deque — where
    /// the owner pops it synchronization-free and other thieves can
    /// immediately re-steal it. Requeued oldest-first so our deque keeps
    /// the global age order (thieves at our top see the oldest first).
    fn steal_batch(&self, d: &SplitDeque) -> Steal {
        let mut extras: Vec<*mut Job> = Vec::new();
        let outcome = d.pop_top_batch(&mut extras, STEAL_BATCH_MAX - 1);
        if !extras.is_empty() {
            trace::record(trace::EventKind::StealBatch, (extras.len() + 1) as u32);
            let mut queued = false;
            for &job in &extras {
                if self.try_push_job_quiet(job).is_err() {
                    // Forced DequeFull: ownership stays with us; degrade to
                    // running the surplus task inline (see `try_injector`).
                    metrics::bump(Counter::OverflowInline);
                    trace::record(trace::EventKind::OverflowInline, 0);
                    self.execute(job);
                } else {
                    queued = true;
                }
            }
            if queued {
                // One wake for the whole surplus, like the injector batch.
                self.pool().sleep.wake_one();
            }
        }
        outcome
    }

    /// The per-policy notification rule for a `PRIVATE_WORK` answer.
    fn notify_victim(&self, victim_idx: usize, victim: &WorkerShared, deque: &SplitDeque) {
        let policies = self.policies();
        match policies.notify {
            // Listing 1 line 22: flag only; the victim polls it.
            NotifyChannel::Flag => victim.targeted.store(true, Ordering::Relaxed),
            // Listing 3 lines 8–11. The plain load-then-store mirrors the
            // paper; a lost race costs one duplicate SIGUSR1, which the OS
            // coalesces with the pending one. Conservative Exposure
            // (§4.1.1) adds `has_two_tasks()` to the condition: the victim
            // would refuse to expose its last task anyway, so the signal
            // would be wasted.
            NotifyChannel::Signal => {
                if policies.exposure == crate::deque::ExposurePolicy::Conservative
                    && !deque.has_two_tasks()
                {
                    return;
                }
                if !victim.targeted.load(Ordering::Relaxed) {
                    victim.targeted.store(true, Ordering::Relaxed);
                    self.signal_or_flag(victim_idx, victim);
                }
            }
            NotifyChannel::None => unreachable!("no-exposure bundles use the ABP deque"),
        }
    }

    /// Deliver a work-exposure request by signal, degrading to the
    /// user-space `fallback_expose` flag when `pthread_kill` fails (after
    /// its capped retry) **or** when the victim has no pthread handle yet.
    /// The request is never silently dropped: the victim polls the flag at
    /// its next task boundary.
    ///
    /// (`pub(crate)` for the pool regression tests; callers go through
    /// `notify_victim`.)
    pub(crate) fn signal_or_flag(&self, victim_idx: usize, victim: &WorkerShared) {
        // A thief can race worker startup: `build` only returns once every
        // helper registered its handle, but helpers that registered early
        // can already steal — and find a victim whose slot still holds the
        // pre-spawn zero value. pthread_t has no null value in POSIX;
        // passing our sentinel 0 to pthread_kill is undefined (on glibc it
        // dereferences the handle). Route the request through the
        // user-space flag instead: the victim polls it at its first task
        // boundary, so the request survives.
        let handle = victim.pthread.load(Ordering::Acquire);
        if handle == 0 {
            trace::record(trace::EventKind::FallbackReroute, victim_idx as u32);
            self.reroute_to_fallback(victim);
            return;
        }
        // Timestamp *before* pthread_kill: the victim's HandlerEntry minus
        // this record is the true signal-delivery latency.
        trace::record(trace::EventKind::SignalSend, victim_idx as u32);
        if signal::notify(handle).is_err() {
            trace::record(trace::EventKind::SignalSendFailed, victim_idx as u32);
            trace::record(trace::EventKind::FallbackReroute, victim_idx as u32);
            self.reroute_to_fallback(victim);
        }
    }

    /// The degraded-notification path shared by the zero-handle guard and
    /// the failed-send case.
    fn reroute_to_fallback(&self, victim: &WorkerShared) {
        victim.fallback_expose.store(true, Ordering::Relaxed);
        metrics::bump(Counter::SignalFallbackFlag);
        // The victim may be between task boundaries for a while and
        // other thieves are gated by `targeted`; waking a sleeper keeps
        // someone retrying in the meantime.
        self.pool().sleep.wake_one();
    }

    /// Execute a job taken from a deque, with task accounting.
    #[inline]
    pub(crate) fn execute(&self, job: *mut Job) {
        metrics::bump(Counter::TaskRun);
        // Safety: deque ownership transfer — exactly one taker per job.
        unsafe { Job::execute(job) };
    }

    /// Helper worker loop: execute tasks until `finished` reports the run
    /// generation complete. A worker's own deque is provably empty whenever
    /// an executed task returns (its nested joins/scopes drain everything it
    /// pushed), so returning on `finished` never strands work.
    pub(crate) fn work_until(&self, finished: &dyn Fn() -> bool) {
        let mut backoff = IdleBackoff::new(self.pool().idle);
        loop {
            if finished() {
                return;
            }
            // Supervision fault site: a forced fire panics the helper here,
            // at the top of the loop *before* local acquisition — the worker
            // provably holds no task in hand, so the chaos tests can kill it
            // deterministically and assert the dying-owner handoff rescues
            // everything still queued (see `pool::handle_worker_death`).
            if fault::fail_at(Site::WorkerLoop) {
                panic!("injected worker-loop fault (Site::WorkerLoop)");
            }
            if let Some(job) = self.acquire_local() {
                self.execute(job);
                backoff.reset();
                continue;
            }
            match self.steal_once() {
                StealAttempt::Taken(job) => {
                    self.execute(job);
                    backoff.reset();
                }
                StealAttempt::Contended => {
                    // Lost a race on a non-empty victim: work exists, so
                    // retry hot instead of escalating toward a park.
                    metrics::bump(Counter::IdleIter);
                    backoff.reset();
                    std::hint::spin_loop();
                }
                StealAttempt::NoWork => {
                    // Externally-submitted work before idle escalation: the
                    // injector is the fallback victim shared by all workers.
                    if self.try_injector() {
                        backoff.reset();
                        continue;
                    }
                    metrics::bump(Counter::IdleIter);
                    match backoff.next() {
                        IdleAction::Park => self
                            .pool()
                            .sleep
                            .park(self.index, || finished() || self.any_work_visible()),
                        action => IdleBackoff::relax(action),
                    }
                }
            }
        }
    }

    /// Fork-join: run `a` and `b` in parallel, `b` being made available to
    /// thieves through this worker's deque.
    ///
    /// The deque grows on demand, so the push can no longer fail from
    /// recursion depth alone. The Cilk-style inline fallback (run both
    /// arms sequentially on the owner — overflow costs parallelism, never
    /// correctness) is kept as graceful degradation for the two residual
    /// `DequeFull` sources: a `faultpoints`-forced `PushBottom`/
    /// `DequeResize` failure, and a ring already at `MAX_DEQUE_CAPACITY`.
    pub(crate) fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(b);
        let ptr_b = job_b.as_job_ptr();
        if self.try_push_job(ptr_b).is_err() {
            // Unreachable without fault injection: a debug build hitting
            // this assert grew a ring past MAX_DEQUE_CAPACITY (2^30 live
            // tasks), which indicates runaway recursion, not a full deque.
            debug_assert!(
                cfg!(feature = "faultpoints"),
                "deque overflow without fault injection: growable rings \
                 only report DequeFull when forced (Site::PushBottom / \
                 Site::DequeResize) or at MAX_DEQUE_CAPACITY"
            );
            metrics::bump(Counter::OverflowInline);
            trace::record(trace::EventKind::OverflowInline, 0);
            // Nobody else ever saw `job_b`: run both closures inline with
            // the same semantics as the out-of-pool sequential path.
            let ra = a();
            // Safety: sole ownership; the job was never pushed.
            let rb = unsafe { job_b.run_inline() };
            return (ra, rb);
        }
        let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
            Ok(v) => v,
            Err(payload) => {
                // `b` may be running on a thief and referencing this frame:
                // it must complete (or be reclaimed unrun) before we unwind.
                self.await_job(ptr_b, false);
                panic::resume_unwind(payload);
            }
        };
        self.await_job(ptr_b, true);
        // Safety: await_job guarantees the job ran (or we ran it inline).
        let rb = unsafe { job_b.take_result() };
        (ra, rb)
    }

    /// Wait until the job at `ptr` has been executed, or reclaim it from our
    /// own deque (running it inline iff `run_if_reacquired`; the panic path
    /// reclaims without running).
    ///
    /// On return, either the job ran to completion (`done` set) or it was
    /// reclaimed unrun by this worker — in both cases no other thread holds
    /// a reference to it.
    fn await_job(&self, ptr: *mut Job, run_if_reacquired: bool) {
        // Fast path: the job is still at the bottom of our deque. The deque
        // discipline makes anything acquire_local returns here *be* `ptr`
        // (everything pushed above it has been popped or stolen-and-
        // completed), but stay defensive in release builds.
        while let Some(job) = self.acquire_local() {
            if job == ptr {
                if run_if_reacquired {
                    self.execute(job);
                    return;
                }
                // Reclaimed unrun: caller owns it again. The happy case for
                // the panic path — nobody else ever saw it.
                return;
            }
            debug_assert!(
                false,
                "join invariant violated: foreign job at deque bottom"
            );
            self.execute(job);
        }
        // The job was stolen: help along by stealing elsewhere until its
        // `done` flag (set with Release by the executor) becomes visible.
        // Fruitless helping escalates spin → yield → park; before parking we
        // register for the executor's targeted completion wake, with the
        // (longer) timed backstop covering the residual registration race
        // (see `crate::sleep` module docs for the pairing argument).
        let mut backoff = IdleBackoff::new(self.pool().idle);
        loop {
            // Safety: `ptr` refers to a StackJob frame that outlives this
            // loop by construction of `join`.
            if unsafe { (*ptr).is_done() } {
                return;
            }
            match self.steal_once() {
                StealAttempt::Taken(job) => {
                    self.execute(job);
                    backoff.reset();
                }
                StealAttempt::Contended => {
                    // Work exists; stay hot (see `work_until`).
                    metrics::bump(Counter::IdleIter);
                    backoff.reset();
                    std::hint::spin_loop();
                }
                StealAttempt::NoWork => {
                    metrics::bump(Counter::IdleIter);
                    match backoff.next() {
                        IdleAction::Park => {
                            // Safety (both accesses): the StackJob frame
                            // outlives `join`, and we have not observed
                            // `done` yet, so the header is alive.
                            unsafe { (*ptr).set_waiter(self.index as u32) };
                            self.pool().sleep.park_with_backstop(
                                self.index,
                                WAITER_PARK_TIMEOUT,
                                || {
                                    let done = unsafe { (*ptr).is_done() };
                                    done || self.any_work_visible()
                                },
                            );
                            unsafe { (*ptr).clear_waiter() };
                        }
                        action => IdleBackoff::relax(action),
                    }
                }
            }
        }
    }

    /// Park this worker until `done` reports completion, work appears, or
    /// the timed backstop fires. For drain loops that registered for a
    /// targeted completion wake (the scope waiter slot): the longer
    /// backstop applies because a real wake is now expected, turning the
    /// 1ms poll into a rare fallback instead of the primary wake source.
    pub(crate) fn park_waiter(&self, done: impl Fn() -> bool) {
        self.pool()
            .sleep
            .park_with_backstop(self.index, WAITER_PARK_TIMEOUT, || {
                done() || self.any_work_visible()
            });
    }

    /// The pool's idle escalation policy (for idle loops outside this
    /// module).
    pub(crate) fn idle_policy(&self) -> crate::sleep::IdlePolicy {
        self.pool().idle
    }
}

/// Map a full-width random word to a victim index in
/// `[0, num_workers) \ {self_index}`, without modulo bias: the
/// widening-multiply trick (`(z * n) >> 64`) maps the uniform 64-bit word
/// to `[0, n)` with per-value probability error below 2⁻⁶⁴⁺ˡᵒᵍ²⁽ⁿ⁾,
/// whereas `z % n` overweights small residues by up to `n / 2⁶⁴` — a real
/// skew at the 2⁶⁴-period scale of xorshift64* streams. The candidate is
/// drawn from `n − 1` slots and indices ≥ `self_index` shift up by one,
/// which preserves uniformity over the remaining workers and never
/// selects self.
#[inline]
pub(crate) fn victim_from_random(z: u64, num_workers: usize, self_index: usize) -> usize {
    debug_assert!(num_workers >= 2 && self_index < num_workers);
    let n = (num_workers - 1) as u64;
    let r = ((z as u128 * n as u128) >> 64) as usize;
    if r >= self_index {
        r + 1
    } else {
        r
    }
}

/// Near-first probe order ([`VictimSelection::NearFirst`]): probe `step`
/// of a drought maps to the victim at index distance `step + 1` from self
/// (mod `num_workers`), so one ring of `num_workers − 1` probes covers
/// every other worker exactly once, nearest first. Returns `None` once the
/// ring is exhausted — the caller falls back to the uniform draw, one
/// random probe per subsequent step, keeping long droughts bias-free.
#[inline]
pub(crate) fn victim_near_first(step: u64, num_workers: usize, self_index: usize) -> Option<usize> {
    debug_assert!(num_workers >= 2 && self_index < num_workers);
    let phase = step % num_workers as u64;
    if phase < (num_workers - 1) as u64 {
        Some((self_index + phase as usize + 1) % num_workers)
    } else {
        None
    }
}

/// TLS installation guard; restores a clean slate on drop (including during
/// panics) so stray signals after a run find a disarmed handler.
pub(crate) struct CtxGuard<'a> {
    ctx: &'a WorkerCtx,
}

impl Drop for CtxGuard<'_> {
    fn drop(&mut self) {
        if self.ctx.policies().uses_signals() {
            unsafe { signal::set_handler_ctx(ptr::null()) };
        }
        // Disarm after the handler ctx, mirroring install order.
        #[cfg(feature = "trace")]
        unsafe {
            trace::set_ring(ptr::null())
        };
        CURRENT.with(|c| c.set(ptr::null()));
    }
}

#[cfg(test)]
mod tests {
    use super::{victim_from_random, victim_near_first};

    /// The xorshift64* step used by `random_victim`, extracted for
    /// distribution testing.
    fn xorshift_star(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn victim_never_self_and_in_range() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for num_workers in 2..=9usize {
            for self_index in 0..num_workers {
                for _ in 0..1_000 {
                    let z = xorshift_star(&mut state);
                    let v = victim_from_random(z, num_workers, self_index);
                    assert!(v < num_workers, "victim out of range");
                    assert_ne!(v, self_index, "picked self as victim");
                }
            }
        }
    }

    #[test]
    fn victim_distribution_is_near_uniform() {
        // With the old `z % (n-1)` reduction, a worker count of the form
        // where 2^64 % (n-1) != 0 skews low indices; the widening multiply
        // keeps every victim within a tight band of the expected count.
        const DRAWS: usize = 1_000_000;
        for (num_workers, self_index) in [(3usize, 0usize), (5, 2), (7, 6), (48, 17)] {
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (num_workers as u64) << 8;
            let mut counts = vec![0u64; num_workers];
            for _ in 0..DRAWS {
                let z = xorshift_star(&mut state);
                counts[victim_from_random(z, num_workers, self_index)] += 1;
            }
            assert_eq!(counts[self_index], 0);
            let expected = DRAWS as f64 / (num_workers - 1) as f64;
            for (i, &c) in counts.iter().enumerate() {
                if i == self_index {
                    continue;
                }
                let dev = (c as f64 - expected).abs() / expected;
                assert!(
                    dev < 0.02,
                    "victim {i} of {num_workers} (self {self_index}): count {c} deviates \
                     {:.2}% from expected {expected:.0}",
                    dev * 100.0
                );
            }
        }
    }

    #[test]
    fn near_first_ring_covers_every_victim_once_nearest_first() {
        for num_workers in 2..=8usize {
            for self_index in 0..num_workers {
                let mut order = Vec::new();
                for step in 0..(num_workers - 1) as u64 {
                    let v = victim_near_first(step, num_workers, self_index)
                        .expect("ring steps must all yield a victim");
                    assert!(v < num_workers, "victim out of range");
                    assert_ne!(v, self_index, "picked self as victim");
                    // Nearest-first: step k probes index distance k + 1.
                    assert_eq!(
                        v,
                        (self_index + step as usize + 1) % num_workers,
                        "probe order must walk outward by index distance"
                    );
                    order.push(v);
                }
                // One full ring covers every other worker exactly once.
                let mut sorted = order.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), num_workers - 1, "coverage hole in ring");
                // The exhausted ring hands over to the uniform fallback.
                assert_eq!(
                    victim_near_first((num_workers - 1) as u64, num_workers, self_index),
                    None,
                    "ring end must fall back to the uniform draw"
                );
            }
        }
    }

    #[test]
    fn near_first_degenerates_to_single_neighbour_at_two_workers() {
        // With two workers the "ring" is the one other worker, then the
        // fallback slot — from either seat.
        assert_eq!(victim_near_first(0, 2, 0), Some(1));
        assert_eq!(victim_near_first(1, 2, 0), None);
        assert_eq!(victim_near_first(0, 2, 1), Some(0));
        assert_eq!(victim_near_first(1, 2, 1), None);
        // Steps past the ring keep cycling ring-then-fallback.
        assert_eq!(victim_near_first(2, 2, 0), Some(1));
        assert_eq!(victim_near_first(3, 2, 0), None);
    }

    #[test]
    fn victim_covers_all_other_workers() {
        let mut state = 42u64;
        let num_workers = 6;
        for self_index in 0..num_workers {
            let mut seen = vec![false; num_workers];
            for _ in 0..10_000 {
                let z = xorshift_star(&mut state);
                seen[victim_from_random(z, num_workers, self_index)] = true;
            }
            for (i, &s) in seen.iter().enumerate() {
                assert_eq!(s, i != self_index, "coverage hole at worker {i}");
            }
        }
    }
}
