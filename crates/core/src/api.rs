//! The public fork-join API: [`join`], [`par_for`], and [`scope`].
//!
//! All three are *ambient*: inside a [`crate::ThreadPool::run`] they
//! schedule onto the pool's deques; outside one they degrade to sequential
//! execution with identical semantics, so library code (e.g. `parlay-rs`)
//! can be written once and tested without a pool.

use std::any::Any;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use lcws_metrics as metrics;
use lcws_metrics::Counter;
use parking_lot::Mutex;

use crate::job::HeapJob;
use crate::sleep::{IdleAction, IdleBackoff, IdlePolicy};
use crate::worker::{current_ctx, StealAttempt, WorkerCtx};

/// Run `a` and `b` potentially in parallel, returning both results.
///
/// `b` is pushed onto the current worker's deque where thieves can take it
/// (after exposure, for the LCWS variants); `a` runs immediately. If `b` is
/// not stolen the worker reclaims and runs it inline — the common,
/// synchronization-free case that LCWS optimizes.
///
/// Outside a pool run, executes `a` then `b` sequentially.
///
/// Panics in either closure propagate after both have completed (the
/// surviving closure is never abandoned mid-flight).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ctx = current_ctx();
    if ctx.is_null() {
        return (a(), b());
    }
    // Safety: non-null ctx pointers installed via CtxGuard remain valid for
    // the guard's (and hence this call's) extent on this thread.
    unsafe { (*ctx).join(a, b) }
}

/// Is the current thread participating in a pool run?
pub fn in_pool() -> bool {
    !current_ctx().is_null()
}

/// Number of workers in the ambient pool (1 when outside a pool run).
pub fn num_workers() -> usize {
    let ctx = current_ctx();
    if ctx.is_null() {
        1
    } else {
        unsafe { (*ctx).pool().workers.len() }
    }
}

/// Index of the current worker within the ambient pool, if any.
pub fn worker_index() -> Option<usize> {
    let ctx = current_ctx();
    if ctx.is_null() {
        None
    } else {
        Some(unsafe { (*ctx).index() })
    }
}

/// Default grain size for [`par_for`]: split until roughly `8 P` leaves of
/// at least `MIN_GRAIN` iterations each (Parlay's blocked heuristic).
pub fn default_grain(n: usize) -> usize {
    const MIN_GRAIN: usize = 64;
    let p = num_workers();
    (n / (8 * p).max(1)).max(MIN_GRAIN).max(1)
}

/// Parallel loop over `range`, calling `f(i)` for every index, recursively
/// halving the range down to blocks of at most `grain` iterations.
pub fn par_for_grain<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let grain = grain.max(1);
    par_for_rec(range, grain, &f);
}

/// Parallel loop over `range` with the [`default_grain`] heuristic.
pub fn par_for<F>(range: Range<usize>, f: F)
where
    F: Fn(usize) + Sync,
{
    let grain = default_grain(range.end.saturating_sub(range.start));
    par_for_rec(range, grain, &f);
}

fn par_for_rec<F>(range: Range<usize>, grain: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len <= grain {
        for i in range {
            f(i);
        }
        return;
    }
    let mid = range.start + len / 2;
    let (start, end) = (range.start, range.end);
    join(
        || par_for_rec(start..mid, grain, f),
        || par_for_rec(mid..end, grain, f),
    );
}

/// A spawn scope: dynamically many fire-and-forget tasks that are all
/// guaranteed complete when [`scope`] returns.
pub struct Scope<'scope> {
    pending: AtomicUsize,
    /// Worker index of the drain loop parked awaiting `pending == 0` (or
    /// `crate::job::NO_WAITER`): the task that performs the last decrement
    /// delivers a targeted wake instead of leaving the sleeper to its
    /// timed backstop. Same read-before-the-releasing-store discipline as
    /// `Job::mark_done` — after the final decrement lands, `scope` may
    /// return and free this struct.
    waiter: AtomicU32,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    // Invariant lifetime, rayon-style: spawned closures may borrow anything
    // that strictly outlives the `scope` call.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

/// Raw pointer wrapper that asserts cross-thread transferability; the scope
/// protocol (wait-for-pending-zero) upholds the referent's liveness.
struct SendPtr<T>(*const T);
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send` wrapper under edition-2021 disjoint capture.
    fn get(&self) -> *const T {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `f` as an independent task. It may run on any worker, any time
    /// before the enclosing [`scope`] returns.
    ///
    /// Outside a pool run the task executes immediately inline.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let ctx = current_ctx();
        if ctx.is_null() {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                self.record_panic(payload);
            }
            return;
        }
        self.pending.fetch_add(1, Ordering::AcqRel);
        let scope_ptr = SendPtr(self as *const Scope<'scope>);
        let job = HeapJob::push_new(move || {
            // Safety: `scope` blocks until `pending` drops to zero, which
            // happens strictly after this closure finishes.
            let sc = unsafe { &*scope_ptr.get() };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                sc.record_panic(payload);
            }
            // Waiter load strictly before the decrement: the scope may be
            // freed the instant the drain loop observes zero.
            let waiter = sc.waiter.load(Ordering::SeqCst);
            if sc.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                crate::worker::wake_waiter(waiter);
            }
        });
        // Deque overflow degrades gracefully: spawn semantics allow the
        // task to run any time before the scope closes, so "immediately,
        // inline on the spawner" is always a valid schedule. The job's own
        // closure performs the panic bookkeeping and `pending` decrement,
        // and the heap job frees itself — nothing leaks, nothing aborts.
        // With growable rings this path is unreachable except under a
        // faultpoints-forced failure or at MAX_DEQUE_CAPACITY (see
        // WorkerCtx::join).
        if unsafe { (*ctx).try_push_job(job) }.is_err() {
            debug_assert!(
                cfg!(feature = "faultpoints"),
                "deque overflow without fault injection: growable rings \
                 only report DequeFull when forced or at MAX_DEQUE_CAPACITY"
            );
            metrics::bump(Counter::OverflowInline);
            crate::trace::record(crate::trace::EventKind::OverflowInline, 0);
            // Safety: the failed push left us sole owner of the job.
            unsafe { (*ctx).execute(job) };
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock();
        // Keep the first panic, like rayon / std::thread::scope.
        slot.get_or_insert(payload);
    }
}

/// Create a scope in which tasks can be [`Scope::spawn`]ed; returns only
/// after every spawned task (transitively) finished. The first panic from
/// the body or any task is resumed on the caller.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let sc = Scope {
        pending: AtomicUsize::new(0),
        waiter: AtomicU32::new(crate::job::NO_WAITER),
        panic: Mutex::new(None),
        _marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&sc)));
    // Drain: help run work until every spawned task has completed. Spawned
    // jobs sit in deques and cannot be abandoned even if `f` panicked.
    // Fruitless helping escalates spin → yield → park; before parking the
    // drain registers in the scope's waiter slot so the task performing the
    // last `pending` decrement delivers a targeted wake (the timed backstop
    // covers the residual registration race — see `crate::sleep`).
    let ctx = current_ctx();
    let mut backoff = IdleBackoff::new(if ctx.is_null() {
        IdlePolicy::SpinOnly
    } else {
        unsafe { (*ctx).idle_policy() }
    });
    while sc.pending.load(Ordering::Acquire) != 0 {
        debug_assert!(!ctx.is_null(), "pending scope tasks require a pool");
        match unsafe { help_one(&*ctx) } {
            HelpOutcome::Ran => backoff.reset(),
            HelpOutcome::Contended => {
                // A steal lost its race on a non-empty victim: work exists,
                // so stay hot instead of escalating toward a park.
                metrics::bump(Counter::IdleIter);
                backoff.reset();
                std::hint::spin_loop();
            }
            HelpOutcome::Idle => {
                metrics::bump(Counter::IdleIter);
                match backoff.next() {
                    IdleAction::Park => unsafe {
                        sc.waiter.store((*ctx).index() as u32, Ordering::SeqCst);
                        (*ctx).park_waiter(|| sc.pending.load(Ordering::Acquire) == 0);
                        sc.waiter.store(crate::job::NO_WAITER, Ordering::SeqCst);
                    },
                    action => IdleBackoff::relax(action),
                }
            }
        }
    }
    let task_panic = sc.panic.lock().take();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = task_panic {
                panic::resume_unwind(payload);
            }
            value
        }
    }
}

/// What one round of helping accomplished.
enum HelpOutcome {
    /// A task ran to completion.
    Ran,
    /// Nothing ran, but a steal aborted on a non-empty victim — work exists.
    Contended,
    /// Nothing visible anywhere.
    Idle,
}

/// Try to acquire and run one task (local first, then steal).
unsafe fn help_one(ctx: &WorkerCtx) -> HelpOutcome {
    if let Some(job) = ctx.acquire_local() {
        ctx.execute(job);
        return HelpOutcome::Ran;
    }
    match ctx.steal_once() {
        StealAttempt::Taken(job) => {
            ctx.execute(job);
            HelpOutcome::Ran
        }
        StealAttempt::Contended => HelpOutcome::Contended,
        StealAttempt::NoWork => HelpOutcome::Idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Ambient-free behaviour (no pool): everything runs sequentially but
    // with identical results. Pool-backed behaviour is tested in the crate
    // integration tests.

    #[test]
    fn join_without_pool_is_sequential() {
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert!(!in_pool());
        assert_eq!(num_workers(), 1);
        assert_eq!(worker_index(), None);
    }

    #[test]
    fn par_for_without_pool_covers_all_indices() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_grain(0..n, 16, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_range() {
        par_for(0..0, |_| panic!("must not be called"));
        #[allow(clippy::reversed_empty_ranges)]
        par_for(5..3, |_| panic!("must not be called"));
    }

    #[test]
    fn scope_without_pool_runs_inline() {
        let mut data = vec![0u32; 8];
        {
            let slots: Vec<_> = data.iter_mut().collect();
            scope(|s| {
                for (i, slot) in slots.into_iter().enumerate() {
                    s.spawn(move || *slot = i as u32);
                }
            });
        }
        assert_eq!(data, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn scope_propagates_task_panic() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("task panic"));
            });
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn join_propagates_left_panic_after_right_completes() {
        let right_ran = AtomicUsize::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            join(
                || panic!("left"),
                || {
                    right_ran.fetch_add(1, Ordering::SeqCst);
                },
            );
        }));
        assert!(caught.is_err());
        // Outside a pool, sequential semantics run `a` first and panic
        // before `b`; inside a pool `b` may or may not run. Either is
        // acceptable; the invariant is no use-after-free, which the pool
        // integration tests stress.
    }

    #[test]
    fn default_grain_reasonable() {
        assert!(default_grain(0) >= 1);
        assert!(default_grain(1_000_000) >= 64);
    }
}
