//! Async-signal-safe scheduling trace (the `lcws-trace` layer, opt-in via
//! the `trace` cargo feature).
//!
//! Synchronization *counts* (the [`crate::Snapshot`] profile) reproduce the
//! paper's Figures 3 and 8, but they cannot show the §4 headline property —
//! work exposure in **constant time, up to OS signal-delivery latency** —
//! nor explain a steal/park interleaving the chaos suite provokes. This
//! module records a per-worker timeline instead: every scheduling event of
//! interest is appended to the worker's fixed-capacity ring buffer as a
//! 16-byte `(CLOCK_MONOTONIC timestamp, worker, kind, payload)` record, and
//! the rings are drained at run close into a merged, time-ordered
//! [`Trace`] that can be exported as Chrome trace-event JSON
//! (chrome://tracing, Perfetto) or reduced to a signal-delivery latency
//! distribution (thief-side [`EventKind::SignalSend`] paired with the
//! victim's [`EventKind::HandlerEntry`]).
//!
//! ## Async-signal-safety
//!
//! [`EventKind::HandlerEntry`] and [`EventKind::HandlerExpose`] are
//! recorded *inside* the `SIGUSR1` handler, so the recording path is held
//! to the same standard as the handler itself (see `crate::signal`):
//!
//! * the ring pointer lives in a const-initialized `thread_local!` `Cell`,
//!   installed by the worker prologue before the thread can be signalled —
//!   no lazy TLS initialization can run in the handler;
//! * a record is two Relaxed atomic ops on the ring head plus a plain
//!   16-byte slot store — no allocation, no locks, no formatting;
//! * the timestamp comes from `clock_gettime(CLOCK_MONOTONIC)`, which
//!   POSIX.1-2008 lists as async-signal-safe.
//!
//! The ring head is reserved *before* the slot is written, so a handler
//! interrupting its own thread's in-flight record appends to the next slot
//! and at most **one** event (the interrupted one, overwritten on resume)
//! can be lost per interruption — the timeline never tears beyond that.
//!
//! ## Zero cost when disabled
//!
//! Without the `trace` feature, [`record`] is an empty `#[inline(always)]`
//! stub the compiler folds away — the default build contains no trace code,
//! exactly like the `faultpoints` layer (CI asserts both).
//!
//! ## Drain points
//!
//! Rings are owner-written during a run and drained by `ThreadPool::run`
//! after quiescence: helpers leave the work loop with an `AcqRel`
//! handshake on `active`, which orders every Relaxed ring write before the
//! drain's reads. The merged trace of the last run is then available from
//! `ThreadPool::take_trace`.

#[cfg(feature = "trace")]
use std::cell::{Cell, UnsafeCell};
#[cfg(feature = "trace")]
use std::sync::atomic::Ordering;

#[cfg(feature = "trace")]
use crate::hb::{self, shim::AtomicU64};

/// What happened. The set spans the whole scheduling stack: deque
/// transitions, the signal path, flag polls, the sleeper, and the run
/// lifecycle. The numeric values are the on-ring encoding; they are
/// append-only across versions so archived traces stay decodable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A pool run opened (worker 0; payload = number of workers).
    RunStart = 0,
    /// A pool run closed after quiescence (worker 0; payload = 0).
    RunClose = 1,
    /// Owner pushed a task (payload = deque depth after the push).
    Push = 2,
    /// Owner popped a private/bottom task (payload = depth after the pop).
    LocalPop = 3,
    /// Owner popped from the public part (payload = new public boundary).
    PublicPop = 4,
    /// Thief stole a task; recorded on the thief (payload = victim index).
    StealOk = 5,
    /// Thief found only private work; recorded on the thief
    /// (payload = victim index) — the trigger of an exposure request.
    StealPrivate = 6,
    /// Tasks moved private → public (payload = how many).
    Expose = 7,
    /// Thief sent (or began sending) `SIGUSR1` to a victim
    /// (payload = victim index). Recorded *before* `pthread_kill`, so the
    /// victim's [`EventKind::HandlerEntry`] minus this timestamp is the
    /// true delivery latency.
    SignalSend = 8,
    /// The send failed after retries (payload = victim index); cancels the
    /// pending latency pairing and reroutes via the fallback flag.
    SignalSendFailed = 9,
    /// `SIGUSR1` handler entered on the victim (payload = 0). Recorded in
    /// signal context.
    HandlerEntry = 10,
    /// Handler finished its exposure (payload = tasks exposed, possibly 0).
    /// Recorded in signal context.
    HandlerExpose = 11,
    /// Owner served an exposure request at a task boundary (payload = 0
    /// for the USLCWS `targeted` flag, 1 for the degraded-signal
    /// `fallback_expose` flag).
    TargetedPoll = 12,
    /// Thief rerouted a failed signal through the fallback flag
    /// (payload = victim index).
    FallbackReroute = 13,
    /// Worker blocked on its sleeper slot (payload = 0).
    Park = 14,
    /// A producer delivered a wakeup; recorded on the *waker*
    /// (payload = index of the woken worker).
    Unpark = 15,
    /// A park returned without a wakeup (timed backstop or spurious
    /// condvar return; payload = 0).
    SpuriousWake = 16,
    /// A fork degraded to inline execution on deque overflow (payload = 0).
    OverflowInline = 17,
    /// `push_bottom` doubled its ring buffer (payload = new capacity in
    /// slots).
    DequeGrow = 18,
    /// A panic escaped this worker's work loop and the dying-owner handler
    /// ran (payload = private tasks exposed for rescue). Recorded on the
    /// dying worker, before it leaves the run's `active` handshake.
    WorkerDeath = 19,
    /// The between-run self-healing pass spawned a replacement helper
    /// (payload = the respawned worker's index). Recorded on worker 0's
    /// ring at the start of the run that healed the pool.
    WorkerRespawn = 20,
    /// A task was submitted to the pool's global injector (payload = the
    /// injector's approximate length after the push). Only recorded when
    /// the submitting thread is a pool worker — external producer threads
    /// have no trace ring, so their pushes appear only in the
    /// `injector_pushes` counter.
    Inject = 21,
    /// A worker's between-steals injector fallback took a batch (payload =
    /// number of jobs taken in the batch).
    InjectorPop = 22,
    /// A thief's batch steal transferred more than one task with a single
    /// validating CAS (steal-half policy; payload = total tasks taken,
    /// including the one the steal returned directly).
    StealBatch = 23,
}

impl EventKind {
    /// Stable snake_case name, used for Chrome JSON and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RunStart => "run_start",
            EventKind::RunClose => "run_close",
            EventKind::Push => "push",
            EventKind::LocalPop => "local_pop",
            EventKind::PublicPop => "public_pop",
            EventKind::StealOk => "steal_ok",
            EventKind::StealPrivate => "steal_private",
            EventKind::Expose => "expose",
            EventKind::SignalSend => "signal_send",
            EventKind::SignalSendFailed => "signal_send_failed",
            EventKind::HandlerEntry => "handler_entry",
            EventKind::HandlerExpose => "handler_expose",
            EventKind::TargetedPoll => "targeted_poll",
            EventKind::FallbackReroute => "fallback_reroute",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::SpuriousWake => "spurious_wake",
            EventKind::OverflowInline => "overflow_inline",
            EventKind::DequeGrow => "deque_grow",
            EventKind::WorkerDeath => "worker_death",
            EventKind::WorkerRespawn => "worker_respawn",
            EventKind::Inject => "inject",
            EventKind::InjectorPop => "injector_pop",
            EventKind::StealBatch => "steal_batch",
        }
    }

    /// Decode the on-ring representation (`None` for values this build
    /// does not know, e.g. a torn slot from the bounded-loss window).
    pub fn from_u16(v: u16) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::RunStart,
            1 => EventKind::RunClose,
            2 => EventKind::Push,
            3 => EventKind::LocalPop,
            4 => EventKind::PublicPop,
            5 => EventKind::StealOk,
            6 => EventKind::StealPrivate,
            7 => EventKind::Expose,
            8 => EventKind::SignalSend,
            9 => EventKind::SignalSendFailed,
            10 => EventKind::HandlerEntry,
            11 => EventKind::HandlerExpose,
            12 => EventKind::TargetedPoll,
            13 => EventKind::FallbackReroute,
            14 => EventKind::Park,
            15 => EventKind::Unpark,
            16 => EventKind::SpuriousWake,
            17 => EventKind::OverflowInline,
            18 => EventKind::DequeGrow,
            19 => EventKind::WorkerDeath,
            20 => EventKind::WorkerRespawn,
            21 => EventKind::Inject,
            22 => EventKind::InjectorPop,
            23 => EventKind::StealBatch,
            _ => return None,
        })
    }
}

/// One decoded trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// `CLOCK_MONOTONIC` nanoseconds (comparable within one process run).
    pub ts_ns: u64,
    /// Worker that recorded the event.
    pub worker: u16,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub payload: u32,
}

/// Default per-worker ring capacity in events (16 bytes each → 1 MiB per
/// worker). Override with `PoolBuilder::trace_capacity`.
#[cfg(feature = "trace")]
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// On-ring record layout: 16 bytes, plain-copyable from signal context.
#[cfg(feature = "trace")]
#[derive(Clone, Copy)]
struct RawEvent {
    ts_ns: u64,
    kind: u16,
    worker: u16,
    payload: u32,
}

/// `CLOCK_MONOTONIC` in nanoseconds. Async-signal-safe.
#[cfg(feature = "trace")]
#[inline]
fn now_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // Safety: plain out-pointer syscall wrapper; CLOCK_MONOTONIC always
    // exists on Linux, so the result is ignored (a failure would leave the
    // zeroed timespec, which only misorders trace output, never UB).
    unsafe { libc::clock_gettime(libc::CLOCK_MONOTONIC, &mut ts) };
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// A single worker's event ring. Written only by its owner thread
/// (including from that thread's signal handler); read by the pool at
/// quiescence, after the run-close handshake established happens-before.
#[cfg(feature = "trace")]
pub(crate) struct TraceRing {
    worker: u16,
    /// Total events ever recorded (monotonic); slot = `head % capacity`.
    /// Owner-only Relaxed ops — the cross-thread ordering comes from the
    /// pool's quiescence handshake, not from this field.
    head: AtomicU64,
    slots: Box<[UnsafeCell<RawEvent>]>,
}

// Safety: slots are written only by the owner thread and read by the pool
// only at quiescence, where the `active` AcqRel handshake orders every
// owner write before the reader's loads — no concurrent access exists.
#[cfg(feature = "trace")]
unsafe impl Send for TraceRing {}
#[cfg(feature = "trace")]
unsafe impl Sync for TraceRing {}

#[cfg(feature = "trace")]
impl TraceRing {
    pub(crate) fn new(worker: u16, capacity: usize) -> TraceRing {
        assert!(capacity > 0, "trace ring needs at least one slot");
        TraceRing {
            worker,
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| {
                    UnsafeCell::new(RawEvent {
                        ts_ns: 0,
                        kind: u16::MAX,
                        worker: 0,
                        payload: 0,
                    })
                })
                .collect(),
        }
    }

    /// Record an event now. Owner thread (or its signal handler) only.
    ///
    /// Reserve-head-first ordering: the head is advanced *before* the slot
    /// store, so a signal handler interrupting between the two appends to
    /// the next slot and the interrupted event is the only one at risk
    /// (overwritten when the owner resumes) — bounded loss of one event
    /// per interruption, never a corrupted ring structure.
    #[inline]
    pub(crate) fn record_now(&self, kind: EventKind, payload: u32) {
        let h = self.head.load(Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Relaxed);
        let idx = (h % self.slots.len() as u64) as usize;
        hb::on_write(self.slots[idx].get() as usize, "trace slot (record_now)");
        // Safety: owner-only write discipline (see the Sync rationale); the
        // handler runs on the owning thread so this is never concurrent.
        unsafe {
            *self.slots[idx].get() = RawEvent {
                ts_ns: now_ns(),
                kind: kind as u16,
                worker: self.worker,
                payload,
            };
        }
    }

    /// Forget all recorded events (between runs, owner quiesced).
    /// Which worker slot this ring belongs to.
    pub(crate) fn worker_index(&self) -> u16 {
        self.worker
    }

    pub(crate) fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
    }

    /// Decode the ring's surviving events in record order, plus how many
    /// older events the ring capacity overwrote. Caller must hold the
    /// quiescence happens-before (see the Sync rationale).
    pub(crate) fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let h = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let kept = h.min(cap);
        let dropped = h - kept;
        let mut out = Vec::with_capacity(kept as usize);
        for i in (h - kept)..h {
            hb::on_read(
                self.slots[(i % cap) as usize].get() as usize,
                "trace slot (drain)",
            );
            // Safety: quiescent read; see above.
            let raw = unsafe { *self.slots[(i % cap) as usize].get() };
            if let Some(kind) = EventKind::from_u16(raw.kind) {
                out.push(TraceEvent {
                    ts_ns: raw.ts_ns,
                    worker: raw.worker,
                    kind,
                    payload: raw.payload,
                });
            }
        }
        (out, dropped)
    }

    /// Best-effort snapshot of the newest `n` events for the stall
    /// watchdog's diagnostic report. Unlike [`TraceRing::drain`], this may
    /// run while the owner is still recording: slots are read with volatile
    /// loads and a record torn by a concurrent write decodes to an unknown
    /// kind (`from_u16` → `None`) and is skipped. Diagnostics only — never
    /// used for the merged run trace.
    pub(crate) fn peek_tail(&self, n: usize) -> Vec<TraceEvent> {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let kept = h.min(cap).min(n as u64);
        let mut out = Vec::with_capacity(kept as usize);
        for i in (h - kept)..h {
            // Racy-by-design read (see above); volatile keeps the compiler
            // from caching or tearing the copy further.
            // Deliberately NOT hb-instrumented: this read races the owner
            // by design and tolerates torn records; filing it would turn
            // every watchdog report into a false positive.
            let raw = unsafe { std::ptr::read_volatile(self.slots[(i % cap) as usize].get()) };
            if let Some(kind) = EventKind::from_u16(raw.kind) {
                out.push(TraceEvent {
                    ts_ns: raw.ts_ns,
                    worker: raw.worker,
                    kind,
                    payload: raw.payload,
                });
            }
        }
        out
    }
}

#[cfg(feature = "trace")]
impl Drop for TraceRing {
    fn drop(&mut self) {
        // The slot array's addresses may be recycled by a later ring (or
        // any other allocation); drop the checker's history for them.
        hb::forget_range(
            self.slots.as_ptr() as usize,
            std::mem::size_of_val(&*self.slots),
        );
    }
}

#[cfg(feature = "trace")]
thread_local! {
    /// The current thread's ring; null outside pool participation. Const-
    /// initialized so the signal handler never triggers lazy TLS init.
    static RING: Cell<*const TraceRing> = const { Cell::new(std::ptr::null()) };
}

/// Point the current thread's [`record`] calls at `ring` (null to disarm).
///
/// # Safety
/// `ring`, when non-null, must stay valid until replaced or cleared, and
/// the calling thread must be the ring's sole writer while installed.
#[cfg(feature = "trace")]
pub(crate) unsafe fn set_ring(ring: *const TraceRing) {
    RING.with(|c| c.set(ring));
}

/// Append an event to the current thread's ring, if one is installed.
/// Async-signal-safe (see the module docs); a no-op outside pool runs.
#[cfg(feature = "trace")]
#[inline]
pub(crate) fn record(kind: EventKind, payload: u32) {
    let r = RING.with(|c| c.get());
    if r.is_null() {
        return;
    }
    // Safety: non-null pointers are installed by the worker prologue and
    // cleared before the referent is dropped (CtxGuard in worker.rs).
    unsafe { (*r).record_now(kind, payload) };
}

/// With `trace` disabled, recording is an empty function the compiler
/// removes entirely — the hook sites compile to nothing.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub(crate) fn record(_kind: EventKind, _payload: u32) {}

/// The merged, time-ordered trace of one pool run.
#[cfg(feature = "trace")]
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All surviving events, sorted by timestamp (ties keep worker order).
    pub events: Vec<TraceEvent>,
    /// Number of workers the run used.
    pub workers: usize,
    /// Events lost to ring-capacity overwrites (raise
    /// `PoolBuilder::trace_capacity` if non-zero).
    pub dropped: u64,
}

#[cfg(feature = "trace")]
impl Trace {
    /// Merge per-ring drains into one time-ordered trace.
    pub(crate) fn merge(per_ring: Vec<(Vec<TraceEvent>, u64)>) -> Trace {
        let workers = per_ring.len();
        let mut dropped = 0;
        let mut events = Vec::with_capacity(per_ring.iter().map(|(v, _)| v.len()).sum());
        for (evs, d) in per_ring {
            dropped += d;
            events.extend(evs);
        }
        // Stable: same-timestamp events keep per-worker record order.
        events.sort_by_key(|e| e.ts_ns);
        Trace {
            events,
            workers,
            dropped,
        }
    }

    /// Render as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// object form), loadable in chrome://tracing and Perfetto. Every
    /// record becomes a thread-scoped instant event on `tid = worker`;
    /// timestamps are microseconds relative to the first event.
    pub fn to_chrome_json(&self) -> String {
        let t0 = self.events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rel = e.ts_ns - t0;
            // Microseconds with nanosecond precision, as Perfetto expects.
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\
                 \"ts\":{}.{:03},\"args\":{{\"payload\":{}}}}}",
                e.kind.name(),
                e.worker,
                rel / 1_000,
                rel % 1_000,
                e.payload,
            ));
        }
        out.push_str("]}");
        out
    }

    /// True signal-delivery latencies: each thief-side
    /// [`EventKind::SignalSend`] paired with the victim's next
    /// [`EventKind::HandlerEntry`], in nanoseconds.
    ///
    /// Pairing walks the time-ordered stream keeping a FIFO of unmatched
    /// sends per victim: a [`EventKind::SignalSendFailed`] cancels that
    /// thief's pending send (the retry loop is synchronous, so a thief has
    /// at most one in flight), and a handler entry consumes the oldest
    /// pending send. Sends left unmatched at the end are coalesced signals
    /// (the OS merges a `SIGUSR1` sent while one is already pending) and
    /// produce no sample.
    pub fn signal_latencies_ns(&self) -> Vec<u64> {
        let mut pending: std::collections::HashMap<u32, Vec<(u64, u16)>> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::SignalSend => {
                    pending
                        .entry(e.payload)
                        .or_default()
                        .push((e.ts_ns, e.worker));
                }
                EventKind::SignalSendFailed => {
                    if let Some(q) = pending.get_mut(&e.payload) {
                        if let Some(pos) = q.iter().rposition(|&(_, t)| t == e.worker) {
                            q.remove(pos);
                        }
                    }
                }
                EventKind::HandlerEntry => {
                    if let Some(q) = pending.get_mut(&(e.worker as u32)) {
                        if !q.is_empty() {
                            let (sent, _) = q.remove(0);
                            out.push(e.ts_ns.saturating_sub(sent));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Events of one kind, in time order (convenience for tests/tools).
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, worker: u16, kind: EventKind, payload: u32) -> TraceEvent {
        TraceEvent {
            ts_ns,
            worker,
            kind,
            payload,
        }
    }

    #[test]
    fn ring_records_and_drains_in_order() {
        let ring = TraceRing::new(3, 8);
        // Safety: single-threaded test — we are the owner.
        unsafe { set_ring(&ring) };
        for i in 0..5u32 {
            record(EventKind::Push, i);
        }
        unsafe { set_ring(std::ptr::null()) };
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.worker, 3);
            assert_eq!(e.kind, EventKind::Push);
            assert_eq!(e.payload, i as u32);
        }
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_wrap_keeps_newest_and_counts_dropped() {
        let ring = TraceRing::new(0, 4);
        for i in 0..10u32 {
            ring.record_now(EventKind::LocalPop, i);
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 6);
        let payloads: Vec<u32> = events.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, [6, 7, 8, 9]);
        ring.reset();
        let (events, dropped) = ring.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn record_without_ring_is_a_noop() {
        record(EventKind::Park, 0); // must not crash
    }

    #[test]
    fn kind_roundtrip() {
        for v in 0..32u16 {
            if let Some(k) = EventKind::from_u16(v) {
                assert_eq!(k as u16, v);
                assert!(!k.name().is_empty());
            }
        }
        assert_eq!(EventKind::from_u16(u16::MAX), None, "fresh-slot marker");
    }

    #[test]
    fn latency_pairing_matches_send_to_handler_entry() {
        // Thief 1 signals victim 0 twice; the second send coalesces (only
        // one handler entry). Thief 2's failed send must not pair.
        let t = Trace {
            events: vec![
                ev(100, 1, EventKind::SignalSend, 0),
                ev(150, 2, EventKind::SignalSend, 0),
                ev(160, 2, EventKind::SignalSendFailed, 0),
                ev(400, 0, EventKind::HandlerEntry, 0),
                ev(500, 1, EventKind::SignalSend, 0),
                ev(900, 0, EventKind::HandlerEntry, 0),
                ev(950, 1, EventKind::SignalSend, 0), // coalesced: unmatched
            ],
            workers: 3,
            dropped: 0,
        };
        assert_eq!(t.signal_latencies_ns(), vec![300, 400]);
    }

    #[test]
    fn chrome_json_is_well_formed_and_relative() {
        let t = Trace {
            events: vec![
                ev(1_000_000, 0, EventKind::RunStart, 2),
                ev(1_002_500, 1, EventKind::StealOk, 0),
            ],
            workers: 2,
            dropped: 0,
        };
        let json = t.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"run_start\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(
            json.contains("\"ts\":2.500"),
            "µs with ns precision: {json}"
        );
        assert!(json.contains("\"tid\":1"));
        assert_eq!(
            json.matches("{\"name\":").count(),
            2,
            "one object per event"
        );
    }
}
