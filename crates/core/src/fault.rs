//! Deterministic fault injection for the scheduler's synchronization-critical
//! transitions (the `lcws-faultpoints` layer).
//!
//! The paper's correctness argument (§3–§4, after Rito & Paulino's LCWS
//! proof) holds under *any* interleaving of owner pops, thief steals, and
//! handler exposures — but ordinary stress tests only ever sample a thin
//! slice of those interleavings. This module lets tests *force* the rare
//! ones: a named [`Site`] is compiled into every critical transition
//! (`push_bottom`/`pop_bottom`/`pop_top` in both deques, exposure, signal
//! send and handler entry, `targeted`-flag polls, sleeper park/unpark,
//! worker-thread spawn, the helper work loop), and a seeded [`FaultPlan`]
//! decides, per site and
//! deterministically in hit order, whether to perturb the schedule (busy
//! delay, yield storm) or to force the site's failure outcome (deque
//! overflow, `pthread_kill` error, spawn error).
//!
//! ## Zero cost when disabled
//!
//! Everything here is gated on the `faultpoints` cargo feature. Without it,
//! [`point`] and [`fail_at`] are empty `#[inline(always)]` stubs that the
//! compiler folds away entirely — the default build contains no faultpoint
//! code, which CI asserts and the `fork_join` / `deque_ops` benches guard
//! (±3% vs. the pre-faultpoint baseline).
//!
//! ## Determinism
//!
//! Each site keeps a hit counter; whether hit `n` of site `s` fires is a
//! pure function `splitmix64(seed ⊕ mix(s, n))` of the plan's seed. Thread
//! interleaving still decides which thread performs hit `n`, but the
//! *pattern* of perturbation per site is reproducible from the seed alone,
//! which is what makes a chaos-run failure replayable (see EXPERIMENTS.md,
//! "Reproducing a chaos run").
//!
//! ## Async-signal-safety
//!
//! [`Site::HandlerEntry`] and [`Site::UpdatePublicBottom`] fire inside the
//! `SIGUSR1` handler. The firing path touches only atomics, TLS counter
//! cells, and `spin_loop` — configure those sites with `delay_spins`, not
//! `yields` (a `sched_yield` storm inside a handler is harmless on Linux
//! but not formally async-signal-safe).
//!
//! ## Usage
//!
//! ```ignore
//! use lcws_core::fault::{FaultPlan, Site, SiteAction};
//!
//! let plan = FaultPlan::new(0xC0FFEE)
//!     .with(Site::SignalSend, SiteAction::fail_always())
//!     .with(Site::PopBottom, SiteAction::delay(200).one_in(7));
//! let guard = lcws_core::fault::install(plan);
//! // ... run the workload under the plan ...
//! assert!(guard.fires(Site::SignalSend) > 0);
//! drop(guard); // disarms the plan
//! ```

#[cfg(feature = "faultpoints")]
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// A named injection site: one synchronization-critical transition of the
/// scheduler. The set mirrors the transitions the paper's interleaving
/// argument quantifies over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// Owner push onto a deque bottom (both deques). Failable: a forced
    /// fire reports the deque full, exercising the overflow fallback.
    PushBottom = 0,
    /// Owner `pop_bottom`, fired again between the `bot` decrement and the
    /// `public_bot` comparison of the `SignalSafe` flavour — the exact
    /// window of the §4 owner-vs-handler race.
    PopBottom = 1,
    /// Owner `pop_public_bottom`, fired again between the paper's two
    /// seq-cst fences where thieves race the owner for the last task.
    PopPublicBottom = 2,
    /// Thief `pop_top`, fired again between the `age` read and the CAS.
    /// Failable at that second site: a forced fire makes the thief lose
    /// the CAS race outright (`Steal::Abort`), so chaos tests can exercise
    /// the contention path deterministically.
    PopTop = 3,
    /// `update_public_bottom` exposure (possibly in signal-handler
    /// context: spin delays only).
    UpdatePublicBottom = 4,
    /// Thief-side `pthread_kill` notification. Failable: a forced fire
    /// simulates ESRCH from a victim racing with thread teardown.
    SignalSend = 5,
    /// `SIGUSR1` handler entry (signal-handler context: spin delays only).
    HandlerEntry = 6,
    /// Owner-side poll of the `targeted` / fallback-exposure flags.
    TargetedPoll = 7,
    /// Sleeper park entry, before the worker announces itself — delays
    /// here stretch the announce-then-sleep race window.
    SleeperPark = 8,
    /// Sleeper wake delivery, between choosing a sleeper and pinging it.
    SleeperUnpark = 9,
    /// Worker-thread spawn in `PoolBuilder::build`. Failable: a forced
    /// fire makes the spawn report an OS error, exercising the
    /// partial-build teardown.
    ThreadSpawn = 10,
    /// Deque ring-buffer growth in `push_bottom`: probed once at grow
    /// entry (failable: a forced fire vetoes the doubling so the push
    /// reports `DequeFull`, exercising the legacy overflow fallback) and
    /// again between the slot copy and the new-buffer publish — delays at
    /// that second hit stretch the resize window thieves race against.
    DequeResize = 11,
    /// Top of each helper's `work_until` iteration. Failable: a forced
    /// fire panics the helper thread, killing it mid-run — the
    /// deterministic worker-death injector behind the supervision chaos
    /// tests. The probe sits *before* local acquisition, where the helper
    /// provably holds no task in hand, so an injected death can strand
    /// tasks only in the deque (where the dying-owner expose-all rescues
    /// them), never a task mid-transfer.
    WorkerLoop = 12,
    /// External submission into the global injector
    /// (`ThreadPool::spawn`/`spawn_batch`). *Failable*: a forced fire
    /// rejects the enqueue and the producer runs the task inline on its
    /// own thread — the injector's graceful-degradation path, mirroring
    /// the deque-overflow inline fallback.
    InjectorPush = 13,
    /// Worker-side injector consumption (the batch pop between steal
    /// attempts). A forced fire makes the pop round come back empty
    /// (contention-storm simulation); delay/yield storms stretch the
    /// Treiber-swap → ready-list window while producers keep pushing.
    InjectorPop = 14,
}

/// Number of distinct [`Site`]s.
pub const NUM_SITES: usize = 15;

/// What a site does when it fires, and how often it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteAction {
    /// Busy-spin rounds (`spin_loop` hints) on fire. Safe in handlers.
    pub delay_spins: u32,
    /// `yield_now` calls on fire (a yield storm hands the core to a racing
    /// thread at exactly the perturbed transition). Avoid in handler sites.
    pub yields: u32,
    /// Force the site's failure outcome on fire (only meaningful at the
    /// failable sites: `PushBottom`, `SignalSend`, `ThreadSpawn`,
    /// `DequeResize`).
    pub fail: bool,
    /// Fire on roughly 1 in `one_in` hits, chosen by the seeded hash
    /// (`1` = every hit, `0` = never).
    pub one_in: u32,
    /// Stop firing after this many fires (`u64::MAX` = unbounded).
    pub max_fires: u64,
    /// Skip the first `after` hits before the pattern may fire (lets a
    /// test target e.g. "the third worker spawn" precisely).
    pub after: u64,
}

impl Default for SiteAction {
    fn default() -> SiteAction {
        SiteAction {
            delay_spins: 0,
            yields: 0,
            fail: false,
            one_in: 0,
            max_fires: u64::MAX,
            after: 0,
        }
    }
}

impl SiteAction {
    /// Fire on every hit, forcing the failure outcome.
    pub fn fail_always() -> SiteAction {
        SiteAction {
            fail: true,
            one_in: 1,
            ..SiteAction::default()
        }
    }

    /// Fire on every hit with a busy delay of `spins` rounds.
    pub fn delay(spins: u32) -> SiteAction {
        SiteAction {
            delay_spins: spins,
            one_in: 1,
            ..SiteAction::default()
        }
    }

    /// Fire on every hit with a storm of `n` `yield_now` calls.
    pub fn yield_storm(n: u32) -> SiteAction {
        SiteAction {
            yields: n,
            one_in: 1,
            ..SiteAction::default()
        }
    }

    /// Dilute the action to roughly 1 in `n` hits (seed-deterministic).
    pub fn one_in(mut self, n: u32) -> SiteAction {
        self.one_in = n;
        self
    }

    /// Cap the number of fires.
    pub fn max_fires(mut self, n: u64) -> SiteAction {
        self.max_fires = n;
        self
    }

    /// Skip the first `n` hits before the pattern may fire.
    pub fn after(mut self, n: u64) -> SiteAction {
        self.after = n;
        self
    }
}

/// A seeded, per-site fault schedule. Build with [`FaultPlan::new`] +
/// [`FaultPlan::with`], activate with [`install`].
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the deterministic fire pattern. The same seed and site
    /// configuration reproduce the same per-site fire sequence.
    pub seed: u64,
    sites: [SiteAction; NUM_SITES],
}

impl FaultPlan {
    /// A plan with every site disarmed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: [SiteAction::default(); NUM_SITES],
        }
    }

    /// Arm `site` with `action` (builder style).
    pub fn with(mut self, site: Site, action: SiteAction) -> FaultPlan {
        self.sites[site as usize] = action;
        self
    }

    /// The action configured for `site`.
    pub fn action(&self, site: Site) -> SiteAction {
        self.sites[site as usize]
    }
}

/// SplitMix64 — the fire-pattern hash (also used for worker RNG seeding).
#[cfg(feature = "faultpoints")]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(feature = "faultpoints")]
mod active {
    use super::*;

    /// Live state of an installed plan: the plan plus per-site hit/fire
    /// counters (atomics — read from any thread and from signal handlers).
    pub struct PlanState {
        pub(super) plan: FaultPlan,
        pub(super) hits: [AtomicU64; NUM_SITES],
        pub(super) fires: [AtomicU64; NUM_SITES],
    }

    /// The currently installed plan (null = disarmed). A leaked `Box` so a
    /// handler-context reader can never observe a freed plan; tests install
    /// a handful of plans per process, so the leak is bounded and
    /// intentional.
    pub(super) static ACTIVE: AtomicPtr<PlanState> = AtomicPtr::new(std::ptr::null_mut());

    impl PlanState {
        /// Decide whether hit `n` of `site` fires, and perturb if so.
        /// Returns whether the site's failure outcome is forced.
        #[inline]
        pub(super) fn hit(&self, site: Site) -> bool {
            let s = site as usize;
            let cfg = &self.plan.sites[s];
            if cfg.one_in == 0 {
                return false;
            }
            let n = self.hits[s].fetch_add(1, Ordering::Relaxed);
            if n < cfg.after {
                return false;
            }
            let fires = if cfg.one_in == 1 {
                true
            } else {
                // Seeded pattern: pure in (seed, site, hit index).
                splitmix64(self.plan.seed ^ ((s as u64) << 56) ^ n)
                    .is_multiple_of(cfg.one_in as u64)
            };
            if !fires {
                return false;
            }
            // Cap check-then-add may overshoot by a hit or two under
            // contention; the cap is a test convenience, not an invariant.
            if self.fires[s].load(Ordering::Relaxed) >= cfg.max_fires {
                return false;
            }
            self.fires[s].fetch_add(1, Ordering::Relaxed);
            lcws_metrics::bump(lcws_metrics::Counter::FaultInjected);
            for _ in 0..cfg.delay_spins {
                std::hint::spin_loop();
            }
            for _ in 0..cfg.yields {
                std::thread::yield_now();
            }
            cfg.fail
        }
    }
}

/// Guard for an installed [`FaultPlan`]; disarms the plan on drop and gives
/// tests access to the per-site fire counts.
#[cfg(feature = "faultpoints")]
pub struct PlanGuard {
    state: &'static active::PlanState,
}

#[cfg(feature = "faultpoints")]
impl PlanGuard {
    /// How many times `site` fired so far under this plan.
    pub fn fires(&self, site: Site) -> u64 {
        self.state.fires[site as usize].load(Ordering::Relaxed)
    }

    /// How many times `site` was reached (fired or not) under this plan.
    pub fn hits(&self, site: Site) -> u64 {
        self.state.hits[site as usize].load(Ordering::Relaxed)
    }
}

#[cfg(feature = "faultpoints")]
impl Drop for PlanGuard {
    fn drop(&mut self) {
        // Disarm. The state itself stays leaked (handler-safe; see ACTIVE).
        // Release suffices: no fence or SC argument references ACTIVE, the
        // store only has to order the guard's final counter traffic before
        // the null publish (docs/ordering_contract.md).
        active::ACTIVE.store(std::ptr::null_mut(), Ordering::Release);
    }
}

/// Install `plan` process-wide until the returned guard drops.
///
/// Panics if a plan is already installed — concurrent plans cannot be
/// meaningfully composed, so chaos tests must serialize (the `chaos` test
/// suite shares one lock).
#[cfg(feature = "faultpoints")]
pub fn install(plan: FaultPlan) -> PlanGuard {
    let state = Box::leak(Box::new(active::PlanState {
        plan,
        hits: [const { AtomicU64::new(0) }; NUM_SITES],
        fires: [const { AtomicU64::new(0) }; NUM_SITES],
    }));
    // AcqRel, not SeqCst: Release publishes the leaked PlanState to probing
    // threads, Acquire sees a prior guard's disarm for the assert below —
    // nothing orders ACTIVE against other SC operations.
    let prev = active::ACTIVE.swap(state as *mut _, Ordering::AcqRel);
    assert!(prev.is_null(), "a FaultPlan is already installed");
    PlanGuard { state }
}

#[cfg(feature = "faultpoints")]
#[inline]
fn current() -> Option<&'static active::PlanState> {
    let p = active::ACTIVE.load(Ordering::Relaxed);
    // Safety: non-null pointers are leaked boxes, valid forever.
    unsafe { p.as_ref() }
}

/// Test-facing probe: hit `site` exactly as the scheduler's internal
/// callsites do, returning whether the failure outcome was forced. Lets
/// the chaos suite replay a plan's seeded pattern directly.
#[cfg(feature = "faultpoints")]
pub fn probe(site: Site) -> bool {
    fail_at(site)
}

/// Perturbation-only injection site (schedule delays / yield storms).
///
/// With `faultpoints` disabled this is an empty function the compiler
/// removes entirely.
#[cfg(feature = "faultpoints")]
#[inline]
pub(crate) fn point(site: Site) {
    if let Some(st) = current() {
        let _ = st.hit(site);
    }
}

/// Failable injection site: perturbs like [`point`] and reports whether the
/// site must take its failure path (deque full, `pthread_kill` error,
/// spawn error).
///
/// With `faultpoints` disabled this is a constant `false` the compiler
/// folds away, so the failure branches compile to the plain success path.
#[cfg(feature = "faultpoints")]
#[inline]
pub(crate) fn fail_at(site: Site) -> bool {
    match current() {
        Some(st) => st.hit(site),
        None => false,
    }
}

#[cfg(not(feature = "faultpoints"))]
#[inline(always)]
pub(crate) fn point(_site: Site) {}

#[cfg(not(feature = "faultpoints"))]
#[inline(always)]
pub(crate) fn fail_at(_site: Site) -> bool {
    false
}

#[cfg(all(test, feature = "faultpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes plan installation across this module's tests.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_site_never_fires() {
        let _g = LOCK.lock().unwrap();
        let guard = install(FaultPlan::new(1));
        for _ in 0..100 {
            assert!(!fail_at(Site::SignalSend));
        }
        assert_eq!(guard.fires(Site::SignalSend), 0);
        assert_eq!(guard.hits(Site::SignalSend), 0, "one_in=0 skips counting");
    }

    #[test]
    fn fail_always_fires_every_hit() {
        let _g = LOCK.lock().unwrap();
        let guard = install(FaultPlan::new(2).with(Site::PushBottom, SiteAction::fail_always()));
        for _ in 0..10 {
            assert!(fail_at(Site::PushBottom));
        }
        assert_eq!(guard.fires(Site::PushBottom), 10);
    }

    #[test]
    fn seeded_pattern_is_reproducible_and_diluted() {
        let _g = LOCK.lock().unwrap();
        let collect = |seed: u64| {
            let guard =
                install(FaultPlan::new(seed).with(Site::PopTop, SiteAction::delay(1).one_in(4)));
            let pattern: Vec<bool> = (0..256).map(|_| fail_at(Site::PopTop)).collect();
            let fires = guard.fires(Site::PopTop);
            drop(guard);
            // delay-only actions never force failure...
            assert!(pattern.iter().all(|&f| !f));
            fires
        };
        let a = collect(42);
        let b = collect(42);
        let c = collect(43);
        assert_eq!(a, b, "same seed, same fire count");
        // ~1/4 of 256 hits; the hash is uniform enough for a loose band.
        assert!(a > 16 && a < 128, "dilution out of band: {a}");
        // Different seeds almost surely differ somewhere in 256 draws;
        // equality of *counts* alone is possible, so only sanity-check c.
        assert!(c < 256);
    }

    #[test]
    fn after_skips_leading_hits() {
        let _g = LOCK.lock().unwrap();
        let guard =
            install(FaultPlan::new(5).with(Site::ThreadSpawn, SiteAction::fail_always().after(2)));
        let pattern: Vec<bool> = (0..5).map(|_| fail_at(Site::ThreadSpawn)).collect();
        assert_eq!(pattern, [false, false, true, true, true]);
        assert_eq!(guard.hits(Site::ThreadSpawn), 5);
        assert_eq!(guard.fires(Site::ThreadSpawn), 3);
    }

    #[test]
    fn max_fires_caps_the_schedule() {
        let _g = LOCK.lock().unwrap();
        let guard = install(
            FaultPlan::new(3).with(Site::SignalSend, SiteAction::fail_always().max_fires(3)),
        );
        let forced = (0..10).filter(|_| fail_at(Site::SignalSend)).count();
        assert_eq!(forced, 3);
        drop(guard);
        // Disarmed after drop.
        assert!(!fail_at(Site::SignalSend));
    }
}
