//! The scheduler thread pool: one deque per worker, epoch-based run
//! lifecycle, and metrics collection at quiescence.
//!
//! Execution model (mirrors Parlay): the pool owns `P − 1` helper threads;
//! the thread calling [`ThreadPool::run`] becomes worker 0 for the duration
//! of the call. Helpers park between runs and spin-steal (with yields)
//! during them. A run finishes when the root closure returns — fork-join
//! semantics guarantee every transitively spawned task has completed by
//! then — after which helpers flush their synchronization counters and
//! quiesce before `run` returns, so [`ThreadPool::metrics`] is exact.
//!
//! A second, open-ended mode serves **external ingress**: between
//! [`ThreadPool::serve`] and [`ThreadPool::shutdown`] the helpers run a
//! long-lived generation with no worker 0, and *any* thread may submit
//! tasks through [`ThreadPool::spawn`] / [`ThreadPool::spawn_batch`], which
//! route through the pool-global [`crate::injector`] and return joinable
//! handles. `shutdown` drains the outstanding-task count to zero, closes
//! the generation with the same quiescence handshake as `run`, and returns
//! the serve window's metrics snapshot. The two modes share one exclusion
//! (`run` blocks while a serve window is open, and vice versa).

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle as ThreadJoinHandle;
use std::time::Duration;

use crossbeam_utils::CachePadded;
use lcws_metrics::{Collector, Counter, Snapshot};
use parking_lot::{Condvar, Mutex};

use crate::deque::{AbpDeque, SplitDeque, DEFAULT_DEQUE_CAPACITY};
use crate::hb::{self, shim::AtomicBool, shim::AtomicU64, shim::AtomicUsize};
use crate::injector::{Injector, JoinHandle, TaskState};
use crate::job::{HeapJob, Job};
use crate::policy::Policies;
use crate::signal;
use crate::sleep::{IdlePolicy, Sleep};
#[cfg(feature = "trace")]
use crate::trace;
use crate::variant::Variant;
use crate::worker::{current_ctx, WorkerCtx};

/// A worker's deque: ABP for the WS baseline, split for every LCWS variant.
pub(crate) enum AnyDeque {
    Abp(AbpDeque),
    Split(SplitDeque),
}

impl AnyDeque {
    /// Free ring buffers retired by growth during the closing run.
    ///
    /// # Safety
    /// Quiescence only: every helper must have left its work loop (the
    /// run-close `active` handshake), so no thread still holds a captured
    /// buffer pointer. Parked helpers do not touch deques between epochs,
    /// and the SIGUSR1 handler only moves `public_bot` — a late signal
    /// cannot reach a retired ring either.
    unsafe fn release_retired(&self) -> usize {
        match self {
            AnyDeque::Abp(d) => d.release_retired(),
            AnyDeque::Split(d) => d.release_retired(),
        }
    }

    /// Racy `(private, public)` depth snapshot for the stall report. The
    /// ABP deque has no private part: every task is stealable.
    fn depths(&self) -> (u32, u32) {
        match self {
            AnyDeque::Abp(d) => {
                let (bot, age) = d.raw_state();
                (0, bot.saturating_sub(age.top))
            }
            AnyDeque::Split(d) => (d.private_len(), d.public_len()),
        }
    }

    /// Restore the canonical empty state before a replacement worker takes
    /// over this slot. Caller must hold quiescence (between runs, under the
    /// run lock).
    fn reset_for_respawn(&self) {
        match self {
            AnyDeque::Abp(d) => d.reset_for_respawn(),
            AnyDeque::Split(d) => d.reset_for_respawn(),
        }
    }
}

/// Shared, cross-thread-visible state of one worker slot.
pub(crate) struct WorkerShared {
    pub(crate) deque: AnyDeque,
    /// The paper's `targeted` flag (one per processor).
    pub(crate) targeted: CachePadded<AtomicBool>,
    /// pthread handle for `pthread_kill` notifications; registered before
    /// the worker can be targeted.
    pub(crate) pthread: AtomicU64,
    /// Set by this worker's `SIGUSR1` handler after it exposes work, in
    /// lieu of waking sleepers directly (condvar notify is not
    /// async-signal-safe). The owner drains it on its next deque access
    /// and performs the wake then.
    pub(crate) wake_pending: CachePadded<AtomicBool>,
    /// Set by a thief whose `pthread_kill` notification failed: the steal
    /// request is rerouted through this user-space flag, which the owner
    /// polls at its task boundaries (the USLCWS path) — a failed signal
    /// degrades exposure latency, never loses the request.
    pub(crate) fallback_expose: CachePadded<AtomicBool>,
    /// Set by the worker's own unwind path after a panic escaped its work
    /// loop (see `handle_worker_death`); cleared by the between-runs healer
    /// once a replacement thread owns this slot. While set, the slot is
    /// excluded from the generation's `active` count and its zeroed
    /// `pthread` reroutes signal notifications to `fallback_expose`.
    pub(crate) dead: AtomicBool,
    /// This worker's scheduling-event ring (owner-written, drained at run
    /// close; see `crate::trace`).
    #[cfg(feature = "trace")]
    pub(crate) trace: trace::TraceRing,
}

impl WorkerShared {
    fn new(
        policies: &Policies,
        capacity: usize,
        #[cfg(feature = "trace")] index: usize,
        #[cfg(feature = "trace")] trace_capacity: usize,
    ) -> WorkerShared {
        let deque = if policies.uses_split_deque() {
            AnyDeque::Split(SplitDeque::new(capacity))
        } else {
            AnyDeque::Abp(AbpDeque::new(capacity))
        };
        WorkerShared {
            deque,
            targeted: CachePadded::new(AtomicBool::new(false)),
            pthread: AtomicU64::new(0),
            wake_pending: CachePadded::new(AtomicBool::new(false)),
            fallback_expose: CachePadded::new(AtomicBool::new(false)),
            dead: AtomicBool::new(false),
            #[cfg(feature = "trace")]
            trace: trace::TraceRing::new(index as u16, trace_capacity),
        }
    }
}

/// State shared between the pool handle and its worker threads.
pub(crate) struct PoolInner {
    pub(crate) variant: Variant,
    /// The resolved policy bundle every worker consults. Equal to
    /// `variant.policies()` unless [`PoolBuilder::policies`] overrode it;
    /// `variant` stays as the display/compatibility label.
    pub(crate) policies: Policies,
    pub(crate) workers: Box<[WorkerShared]>,
    pub(crate) collector: Arc<Collector>,
    /// Sleeper subsystem for idle workers (spin → yield → park).
    pub(crate) sleep: Sleep,
    /// Idle escalation policy the workers run with.
    pub(crate) idle: IdlePolicy,
    /// Global ingress queue for externally-submitted tasks (`spawn`).
    /// Workers fall back to it after a fruitless steal round.
    pub(crate) injector: Injector,
    /// Spawned-but-not-completed task count of the current serve window;
    /// `shutdown` drains it to zero before closing the generation.
    outstanding: AtomicUsize,
    /// A serve window is open: `spawn` is accepted.
    serving: AtomicBool,
    /// `shutdown` has begun draining; new `spawn`s are rejected so
    /// `outstanding` can only fall.
    draining: AtomicBool,
    /// Signalled (under `sync`) when `outstanding` hits zero mid-drain.
    drain_cv: Condvar,
    /// Run generation; bumped (under `sync`) to start a run.
    epoch: AtomicU64,
    /// Last completed generation; helpers exit their work loop when it
    /// reaches their current generation.
    done_epoch: AtomicU64,
    /// Helpers still inside the work loop of the current generation.
    active: AtomicUsize,
    /// Helpers that finished their prologue (pthread registration).
    ready: AtomicUsize,
    shutdown: AtomicBool,
    sync: Mutex<()>,
    start_cv: Condvar,
    quiesce_cv: Condvar,
    /// First panic payload that escaped a helper's work loop this run;
    /// `run` resumes it on the caller after quiescence (first death wins,
    /// matching how fork-join propagates the first of two sibling panics).
    death: Mutex<Option<Box<dyn Any + Send>>>,
    /// Opt-in watchdog period ([`PoolBuilder::stall_timeout`]): when set,
    /// the quiescence and generation-open waits are timed, and an expired
    /// quiescence wait emits a stall report to stderr and keeps waiting.
    stall_timeout: Option<Duration>,
    /// How many stall reports this pool has emitted (diagnostics/tests).
    stall_reports: AtomicU64,
    /// Merged trace of the most recent completed run (drained at run
    /// close), handed out by `ThreadPool::take_trace`.
    #[cfg(feature = "trace")]
    trace_last: Mutex<Option<trace::Trace>>,
}

impl PoolInner {
    /// Completion side of the serve window's outstanding count, called by
    /// every spawned task's wrapper (and by `spawn`'s validation undo).
    ///
    /// SeqCst pairing with `shutdown`: in the single total order, either
    /// this decrement precedes `draining.store(true)` — then `shutdown`'s
    /// subsequent `outstanding` read sees it — or it follows, in which case
    /// the `draining` load here reads `true` and the notification is taken.
    /// The notify happens under `sync`, the same lock `shutdown` holds
    /// across its check-then-wait, so the signal cannot fall into that gap.
    pub(crate) fn task_done(&self) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1
            && self.draining.load(Ordering::SeqCst)
        {
            let _g = self.sync.lock();
            self.drain_cv.notify_all();
        }
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    variant: Variant,
    /// Explicit policy-bundle override; `None` means "the variant's own
    /// composition".
    policies: Option<Policies>,
    threads: Option<usize>,
    deque_capacity: usize,
    /// Explicit idle-policy override; `None` defers to the bundle's choice.
    idle: Option<IdlePolicy>,
    stall_timeout: Option<Duration>,
    #[cfg(feature = "trace")]
    trace_capacity: usize,
}

impl PoolBuilder {
    /// Start building a pool for the given scheduler variant.
    pub fn new(variant: Variant) -> PoolBuilder {
        PoolBuilder {
            variant,
            policies: None,
            threads: None,
            deque_capacity: DEFAULT_DEQUE_CAPACITY,
            idle: None,
            stall_timeout: None,
            #[cfg(feature = "trace")]
            trace_capacity: trace::DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Override the full policy bundle the workers run with (see
    /// [`crate::Policies`]). Without this, the pool runs the variant's own
    /// composition — `PoolBuilder::new(v)` and
    /// `PoolBuilder::new(v).policies(v.policies())` build identical pools.
    /// The variant remains the pool's label (thread names, CSV rows).
    ///
    /// `build` panics on a bundle [`crate::Policies::validate`] rejects.
    pub fn policies(mut self, policies: Policies) -> PoolBuilder {
        self.policies = Some(policies);
        self
    }

    /// Total number of workers, including the caller of `run` (≥ 1).
    /// Defaults to the machine's available parallelism.
    pub fn threads(mut self, threads: usize) -> PoolBuilder {
        assert!(threads >= 1, "a pool needs at least one worker");
        self.threads = Some(threads);
        self
    }

    /// Per-worker *initial* deque capacity in slots (rounded up to a power
    /// of two). Deques grow by doubling whenever a push finds the ring
    /// full, so this only tunes how many early doublings a deep workload
    /// pays — it is no longer a hard limit.
    pub fn deque_capacity(mut self, capacity: usize) -> PoolBuilder {
        self.deque_capacity = capacity;
        self
    }

    /// How idle workers behave: [`IdlePolicy::Adaptive`] (default) parks
    /// fully-escalated idlers; [`IdlePolicy::SpinOnly`] reproduces the
    /// old always-runnable busy-wait for idle-cost comparisons.
    pub fn idle_policy(mut self, idle: IdlePolicy) -> PoolBuilder {
        self.idle = Some(idle);
        self
    }

    /// Opt-in stall watchdog: when a run's quiescence wait (or a helper's
    /// wait for the next generation) exceeds `timeout`, the wait becomes a
    /// timed re-check instead of an unbounded block, and an expired
    /// quiescence wait prints a structured stall report to stderr — per
    /// worker parked/dead state, deque depths, counter snapshot, and (with
    /// the `trace` feature) the tail of each trace ring — then keeps
    /// waiting. Off by default: without it the waits are plain untimed
    /// condvar blocks and the supervision layer adds nothing to the close
    /// path.
    pub fn stall_timeout(mut self, timeout: Duration) -> PoolBuilder {
        assert!(!timeout.is_zero(), "stall timeout must be non-zero");
        self.stall_timeout = Some(timeout);
        self
    }

    /// Per-worker trace-ring capacity in events (16 bytes each). When a
    /// run records more, the ring keeps the newest events and
    /// [`crate::trace::Trace::dropped`] reports the overwritten count.
    #[cfg(feature = "trace")]
    pub fn trace_capacity(mut self, events: usize) -> PoolBuilder {
        assert!(events > 0, "trace ring needs at least one slot");
        self.trace_capacity = events;
        self
    }

    /// Spawn the helper threads and return the pool.
    pub fn build(self) -> ThreadPool {
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        // Resolve the policy bundle: explicit override, else the variant's
        // composition; the idle override folds in so workers consult one
        // place. An unsound bundle never reaches a worker.
        let mut policies = self.policies.unwrap_or_else(|| self.variant.policies());
        if let Some(idle) = self.idle {
            policies.idle = idle;
        }
        if let Err(e) = policies.validate() {
            panic!("invalid policy bundle for {} pool: {e}", self.variant);
        }
        if policies.uses_signals() {
            signal::install_handler();
        }
        #[cfg(not(feature = "trace"))]
        let workers = (0..threads)
            .map(|_| WorkerShared::new(&policies, self.deque_capacity))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        #[cfg(feature = "trace")]
        let workers = (0..threads)
            .map(|i| WorkerShared::new(&policies, self.deque_capacity, i, self.trace_capacity))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(PoolInner {
            variant: self.variant,
            policies,
            sleep: Sleep::new(threads),
            idle: policies.idle,
            injector: Injector::new(),
            outstanding: AtomicUsize::new(0),
            serving: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            drain_cv: Condvar::new(),
            workers,
            collector: Collector::new(),
            epoch: AtomicU64::new(0),
            done_epoch: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            ready: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sync: Mutex::new(()),
            start_cv: Condvar::new(),
            quiesce_cv: Condvar::new(),
            death: Mutex::new(None),
            stall_timeout: self.stall_timeout,
            stall_reports: AtomicU64::new(0),
            #[cfg(feature = "trace")]
            trace_last: Mutex::new(None),
        });
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for index in 1..threads {
            let worker_inner = Arc::clone(&inner);
            let builder =
                std::thread::Builder::new().name(format!("lcws-{}-{index}", self.variant.name()));
            let spawned = if crate::fault::fail_at(crate::fault::Site::ThreadSpawn) {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "injected worker-spawn failure",
                ))
            } else {
                let fork = hb::fork_token();
                builder.spawn(move || {
                    hb::join_token(fork);
                    worker_main(worker_inner, index, 0)
                })
            };
            match spawned {
                Ok(h) => handles.push(Some(h)),
                Err(e) => {
                    // Partial-build cleanup: the workers spawned so far are
                    // waiting for (or racing towards) the start condvar.
                    // Flip shutdown under the lock and join every one of
                    // them before surfacing the error — a panic with
                    // context is acceptable, leaked threads are not.
                    {
                        let _g = inner.sync.lock();
                        inner.shutdown.store(true, Ordering::Release);
                        inner.start_cv.notify_all();
                    }
                    let mut panicked = 0usize;
                    for h in handles.into_iter().flatten() {
                        if let Err(payload) = h.join() {
                            // A helper that died before the teardown would
                            // silently vanish here; surface it instead.
                            panicked += 1;
                            inner.collector.add(Counter::WorkerDeath, 1);
                            eprintln!(
                                "lcws: worker panicked during partial-build \
                                 teardown: {}",
                                payload_msg(payload.as_ref())
                            );
                        }
                    }
                    panic!(
                        "failed to spawn worker thread {index} of {threads} \
                         ({e}); {} already-spawned worker(s) joined \
                         ({panicked} of them panicked)",
                        index - 1
                    );
                }
            }
        }
        // Wait until every helper registered its pthread handle, so the
        // first run can already signal any victim safely.
        while inner.ready.load(Ordering::Acquire) != threads - 1 {
            std::thread::yield_now();
        }
        ThreadPool {
            inner,
            handles: Mutex::new(handles),
            run_state: Mutex::new(false),
            run_free: Condvar::new(),
        }
    }
}

/// A work-stealing thread pool running one of the paper's five schedulers.
///
/// ```
/// use lcws_core::{PoolBuilder, Variant};
///
/// let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
/// let total: u64 = pool.run(|| {
///     let (a, b) = lcws_core::join(|| (0..500u64).sum::<u64>(),
///                                  || (500..1000u64).sum::<u64>());
///     a + b
/// });
/// assert_eq!(total, (0..1000u64).sum());
/// ```
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    /// Slot `i` holds the join handle of helper `i + 1` (`None` while a
    /// dead helper awaits respawn, or after a failed respawn).
    handles: Mutex<Vec<Option<ThreadJoinHandle<()>>>>,
    /// `true` while a `run` call or an open serve window owns the pool's
    /// generation machinery. A plain `Mutex<()>` guard cannot express the
    /// serve case — the exclusion must span `serve()`'s return and be
    /// released by `shutdown()`, possibly on a different thread — so this
    /// is a hand-rolled lock: flag + condvar.
    run_state: Mutex<bool>,
    /// Signalled when `run_state` flips back to `false`.
    run_free: Condvar,
}

impl ThreadPool {
    /// Convenience constructor: `variant` scheduler with `threads` workers.
    pub fn new(variant: Variant, threads: usize) -> ThreadPool {
        PoolBuilder::new(variant).threads(threads).build()
    }

    /// The scheduler variant this pool runs.
    pub fn variant(&self) -> Variant {
        self.inner.variant
    }

    /// Number of workers (including the `run` caller).
    pub fn num_workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Execute `f` on the pool: the calling thread becomes worker 0 and
    /// `f` may freely use [`crate::join`], [`crate::par_for`] and
    /// [`crate::scope`]. Returns once every transitively spawned task has
    /// completed and all helpers have quiesced.
    ///
    /// Panics from `f` (or any spawned task, propagated through the
    /// fork-join structure) resume on the caller after quiescence.
    ///
    /// Resets the pool's metrics collector, so [`ThreadPool::metrics`]
    /// afterwards reflects exactly this run.
    pub fn run<F, T>(&self, f: F) -> T
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        assert!(
            current_ctx().is_null(),
            "ThreadPool::run may not be nested inside a pool run"
        );
        let _serial = self.acquire_run();
        // Self-heal: respawn any helper that died in a previous run before
        // this generation opens (must precede the collector reset below so
        // the respawn counts land in *this* run's metrics).
        let (respawned, stray_deaths) = self.heal_dead_workers();
        let pool = &*self.inner;
        lcws_metrics::touch();
        lcws_metrics::reset_local();
        pool.collector.reset();
        pool.collector
            .add(Counter::WorkerRespawn, respawned.len() as u64);
        pool.collector.add(Counter::WorkerDeath, stray_deaths);
        pool.workers[0]
            .pthread
            .store(signal::current_pthread() as u64, Ordering::Release);
        // Helpers are parked between runs and the caller has not installed
        // its ctx yet, so nobody records while the rings reset.
        #[cfg(feature = "trace")]
        {
            for w in pool.workers.iter() {
                w.trace.reset();
            }
            // Respawns are the healer's (i.e. the caller's) events; the
            // rings were just reset, so worker 0's is exclusively ours.
            for &index in &respawned {
                pool.workers[0]
                    .trace
                    .record_now(trace::EventKind::WorkerRespawn, index);
            }
        }
        // Open the generation (under the lock to avoid lost wakeups). Only
        // live helpers take part in the `active` handshake: a slot whose
        // respawn failed stays dead and must not be waited for.
        {
            let _g = pool.sync.lock();
            let live = pool
                .workers
                .iter()
                .skip(1)
                .filter(|w| !w.dead.load(Ordering::Acquire))
                .count();
            pool.active.store(live, Ordering::Release);
            pool.epoch.fetch_add(1, Ordering::AcqRel);
            pool.start_cv.notify_all();
        }

        let ctx = WorkerCtx::new(pool, 0);
        let result = {
            let _guard = ctx.install();
            crate::trace::record(crate::trace::EventKind::RunStart, pool.workers.len() as u32);
            panic::catch_unwind(AssertUnwindSafe(f))
        };

        // Close the generation and wait for helpers to drain out. Helpers
        // may be parked in the sleeper: wake them all so they can observe
        // the closed generation and quiesce promptly.
        pool.done_epoch
            .store(pool.epoch.load(Ordering::Acquire), Ordering::Release);
        pool.sleep.wake_all();
        lcws_metrics::flush_into(&pool.collector);
        {
            let mut g = pool.sync.lock();
            while pool.active.load(Ordering::Acquire) != 0 {
                match pool.stall_timeout {
                    None => pool.quiesce_cv.wait(&mut g),
                    Some(timeout) => {
                        let timed_out = pool.quiesce_cv.wait_for(&mut g, timeout).timed_out();
                        if timed_out && pool.active.load(Ordering::Acquire) != 0 {
                            pool.stall_reports.fetch_add(1, Ordering::Relaxed);
                            // Report outside the lock: formatting takes
                            // racy snapshots only, and a helper finishing
                            // meanwhile must not block on us.
                            drop(g);
                            eprintln!("{}", stall_report(pool, "run quiescence"));
                            g = pool.sync.lock();
                        }
                    }
                }
            }
        }
        // Quiescent: helpers left their work loop through the `active`
        // AcqRel handshake, so every deque and ring write happens-before
        // this point. This is the retirement list's epoch-free reclamation
        // moment: no thread can still hold a buffer captured before a grow.
        //
        // The caller's registration is withdrawn here, not at the next run
        // open: a signal raced against teardown (or sent by a thief of the
        // next, differently-stacked run) must fail fast to the fallback
        // flag rather than land on a thread that left the pool.
        pool.workers[0].pthread.store(0, Ordering::Release);
        for w in pool.workers.iter() {
            // Safety: quiescence established above.
            unsafe { w.deque.release_retired() };
        }
        // The caller's TLS ring was cleared with its ctx guard; worker 0's
        // ring is still exclusively ours, so the close marker goes in
        // directly.
        #[cfg(feature = "trace")]
        {
            pool.workers[0]
                .trace
                .record_now(trace::EventKind::RunClose, 0);
            let merged =
                trace::Trace::merge(pool.workers.iter().map(|w| w.trace.drain()).collect());
            *pool.trace_last.lock() = Some(merged);
        }
        // A panic from the root closure (which fork-join already funnels
        // sibling panics into) outranks a helper-death payload; an
        // unclaimed death payload must not leak into the next run either
        // way.
        let death = pool.death.lock().take();
        match result {
            Ok(v) => {
                if let Some(payload) = death {
                    panic::resume_unwind(payload);
                }
                v
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Block until no `run` call or serve window owns the pool, then claim
    /// it. Returns a guard for `run`'s scoped use; `serve` forgets the
    /// guard and `shutdown` releases manually.
    fn acquire_run(&self) -> RunToken<'_> {
        let mut busy = self.run_state.lock();
        while *busy {
            self.run_free.wait(&mut busy);
        }
        *busy = true;
        RunToken { pool: self }
    }

    fn release_run(&self) {
        let mut busy = self.run_state.lock();
        debug_assert!(*busy, "release_run without a claimed pool");
        *busy = false;
        // One waiter can make progress; the rest re-block behind it.
        self.run_free.notify_one();
    }

    /// Open a serve window: the helpers start a long-lived generation with
    /// no worker 0, and [`ThreadPool::spawn`] becomes available from any
    /// thread until [`ThreadPool::shutdown`] closes the window. Blocks
    /// while a `run` call (or another serve window) owns the pool.
    ///
    /// Like `run`, resets the metrics collector: the snapshot `shutdown`
    /// returns covers exactly this window.
    ///
    /// A window executes on helpers only (worker 0 is the seat `run`'s
    /// caller occupies), so a `threads = 1` pool serves with **zero**
    /// executors: submissions queue up and are drained inline by
    /// `shutdown`. On such a pool, `JoinHandle::join` from a non-worker
    /// thread before `shutdown` would wait on work nobody will run —
    /// join after shutdown, or give the pool at least two workers.
    pub fn serve(&self) {
        assert!(
            current_ctx().is_null(),
            "ThreadPool::serve may not be nested inside a pool run"
        );
        let token = self.acquire_run();
        // The exclusion now spans until shutdown(); drop the guard without
        // releasing.
        std::mem::forget(token);
        let pool = &*self.inner;
        let (respawned, stray_deaths) = self.heal_dead_workers();
        lcws_metrics::touch();
        lcws_metrics::reset_local();
        pool.collector.reset();
        pool.collector
            .add(Counter::WorkerRespawn, respawned.len() as u64);
        pool.collector.add(Counter::WorkerDeath, stray_deaths);
        #[cfg(feature = "trace")]
        {
            // Helpers are parked between generations; nobody records while
            // the rings reset (the serving thread installs no ctx at all).
            for w in pool.workers.iter() {
                w.trace.reset();
            }
            for &index in &respawned {
                pool.workers[0]
                    .trace
                    .record_now(trace::EventKind::WorkerRespawn, index);
            }
        }
        pool.draining.store(false, Ordering::SeqCst);
        pool.serving.store(true, Ordering::SeqCst);
        // Open the generation (under the lock to avoid lost wakeups).
        // Unlike `run`, worker 0 does not participate: its deque stays
        // empty and unregistered, thieves that pick it just find nothing.
        let _g = pool.sync.lock();
        let live = pool
            .workers
            .iter()
            .skip(1)
            .filter(|w| !w.dead.load(Ordering::Acquire))
            .count();
        pool.active.store(live, Ordering::Release);
        pool.epoch.fetch_add(1, Ordering::AcqRel);
        pool.start_cv.notify_all();
    }

    /// Submit `f` to the pool from any thread and get a [`JoinHandle`] to
    /// its result. Requires an open serve window (see [`ThreadPool::serve`]);
    /// panics otherwise.
    ///
    /// The task is pushed into the global injector, a parked worker is
    /// woken for it, and workers pull it (batched) after their next
    /// fruitless steal round. A `faultpoints`-forced injector-push failure
    /// degrades to running the task inline on the submitting thread —
    /// submissions are never lost.
    ///
    /// ```
    /// use lcws_core::{PoolBuilder, Variant};
    ///
    /// let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    /// pool.serve();
    /// let handle = pool.spawn(|| 6 * 7);
    /// assert_eq!(handle.join(), 42);
    /// pool.shutdown();
    /// ```
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let pool = &*self.inner;
        pool.outstanding.fetch_add(1, Ordering::SeqCst);
        // Validate *after* counting (and undo on failure): the increment
        // is what `shutdown`'s drain waits on, so counting first closes the
        // race where a spawn slips between the drain's last-zero check and
        // the generation close. See `task_done` for the SeqCst pairing.
        if !pool.serving.load(Ordering::SeqCst) || pool.draining.load(Ordering::SeqCst) {
            pool.task_done();
            panic!("ThreadPool::spawn requires an open serve window (call serve() first)");
        }
        let state = Arc::new(TaskState::new());
        let task_state = Arc::clone(&state);
        let inner = Arc::clone(&self.inner);
        let job = HeapJob::push_new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            // Publish the result (waking a blocked joiner) *before* the
            // outstanding decrement: once `shutdown` returns, every handle
            // must already be joinable without blocking.
            task_state.complete(result.map_err(|e| e as Box<dyn Any + Send>));
            inner.task_done();
        });
        self.submit_job(job);
        JoinHandle { state }
    }

    /// Submit a batch of tasks with a single injector publication (one CAS
    /// for the whole batch) and one wake per batch. Same contract as
    /// [`ThreadPool::spawn`], returning handles in submission order.
    pub fn spawn_batch<F, T, I>(&self, tasks: I) -> Vec<JoinHandle<T>>
    where
        I: IntoIterator<Item = F>,
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let pool = &*self.inner;
        let mut jobs: Vec<*mut Job> = Vec::new();
        let mut handles = Vec::new();
        for f in tasks {
            pool.outstanding.fetch_add(1, Ordering::SeqCst);
            if !pool.serving.load(Ordering::SeqCst) || pool.draining.load(Ordering::SeqCst) {
                pool.task_done();
                // The jobs wrapped so far are counted in `outstanding` and
                // must not leak — but the window that would drain them is
                // closing (or never opened), so injecting them could strand
                // them forever. Run them inline instead, then fail.
                for &job in &jobs {
                    // Safety: never published; sole ownership.
                    unsafe { Job::execute(job) };
                }
                panic!(
                    "ThreadPool::spawn_batch requires an open serve window (call serve() first)"
                );
            }
            let state = Arc::new(TaskState::new());
            let task_state = Arc::clone(&state);
            let inner = Arc::clone(&self.inner);
            jobs.push(HeapJob::push_new(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                task_state.complete(result.map_err(|e| e as Box<dyn Any + Send>));
                inner.task_done();
            }));
            handles.push(JoinHandle { state });
        }
        self.submit_batch(&jobs);
        handles
    }

    /// Publish one wrapped job to the injector (inline fallback on a
    /// forced push failure) and wake a worker for it.
    fn submit_job(&self, job: *mut Job) {
        let pool = &*self.inner;
        match pool.injector.push(job) {
            Ok(()) => {
                // External threads have no TLS metrics slot to flush, so
                // ingress counters go to the collector directly; `trace` is
                // a worker-ring no-op unless the submitter is itself a
                // worker thread.
                pool.collector.add(Counter::InjectorPush, 1);
                crate::trace::record(crate::trace::EventKind::Inject, 1);
                pool.sleep.wake_one();
            }
            Err(job) => {
                pool.collector.add(Counter::OverflowInline, 1);
                // Safety: the rejected job was never published; we are its
                // sole owner.
                unsafe { Job::execute(job) };
            }
        }
    }

    /// Batch analogue of `submit_job`.
    fn submit_batch(&self, jobs: &[*mut Job]) {
        if jobs.is_empty() {
            return;
        }
        let pool = &*self.inner;
        match pool.injector.push_batch(jobs) {
            Ok(()) => {
                pool.collector.add(Counter::InjectorPush, jobs.len() as u64);
                crate::trace::record(crate::trace::EventKind::Inject, jobs.len() as u32);
                pool.sleep.wake_one();
            }
            Err(()) => {
                pool.collector
                    .add(Counter::OverflowInline, jobs.len() as u64);
                for &job in jobs {
                    // Safety: rejected batch, sole ownership retained.
                    unsafe { Job::execute(job) };
                }
            }
        }
    }

    /// Close the serve window: reject further spawns, drain every
    /// outstanding task, quiesce the helpers exactly like `run`'s close
    /// path, and return the window's metrics snapshot. Panics if no serve
    /// window is open. A task panic (of a spawned task whose handle was
    /// dropped unjoined) does **not** resurface here — it lives in the
    /// dropped handle's state; helper *deaths* resurface like in `run`.
    pub fn shutdown(&self) -> Snapshot {
        let pool = &*self.inner;
        assert!(
            pool.serving.load(Ordering::SeqCst),
            "ThreadPool::shutdown without an open serve window"
        );
        pool.draining.store(true, Ordering::SeqCst);
        if pool.workers.len() == 1 {
            // No helpers exist to drain the injector: the shutting-down
            // thread becomes worker 0 and drains inline.
            let ctx = WorkerCtx::new(pool, 0);
            let _guard = ctx.install();
            while pool.outstanding.load(Ordering::SeqCst) != 0 {
                if ctx.try_injector() {
                    continue;
                }
                if let Some(job) = ctx.acquire_local() {
                    ctx.execute(job);
                    continue;
                }
                // Outstanding but not visible yet: a producer is between
                // its count and its push, or an inline fallback is running
                // elsewhere. Brief, bounded window.
                std::hint::spin_loop();
            }
        } else {
            let mut g = pool.sync.lock();
            while pool.outstanding.load(Ordering::SeqCst) != 0 {
                match pool.stall_timeout {
                    None => pool.drain_cv.wait(&mut g),
                    Some(timeout) => {
                        let timed_out = pool.drain_cv.wait_for(&mut g, timeout).timed_out();
                        if timed_out && pool.outstanding.load(Ordering::SeqCst) != 0 {
                            pool.stall_reports.fetch_add(1, Ordering::Relaxed);
                            drop(g);
                            eprintln!("{}", stall_report(pool, "shutdown drain"));
                            g = pool.sync.lock();
                        }
                    }
                }
            }
        }
        pool.serving.store(false, Ordering::SeqCst);
        // Close the generation; from here this is `run`'s close path.
        pool.done_epoch
            .store(pool.epoch.load(Ordering::Acquire), Ordering::Release);
        pool.sleep.wake_all();
        lcws_metrics::flush_into(&pool.collector);
        {
            let mut g = pool.sync.lock();
            while pool.active.load(Ordering::Acquire) != 0 {
                match pool.stall_timeout {
                    None => pool.quiesce_cv.wait(&mut g),
                    Some(timeout) => {
                        let timed_out = pool.quiesce_cv.wait_for(&mut g, timeout).timed_out();
                        if timed_out && pool.active.load(Ordering::Acquire) != 0 {
                            pool.stall_reports.fetch_add(1, Ordering::Relaxed);
                            drop(g);
                            eprintln!("{}", stall_report(pool, "shutdown quiescence"));
                            g = pool.sync.lock();
                        }
                    }
                }
            }
        }
        for w in pool.workers.iter() {
            // Safety: quiescence established above.
            unsafe { w.deque.release_retired() };
        }
        #[cfg(feature = "trace")]
        {
            pool.workers[0]
                .trace
                .record_now(trace::EventKind::RunClose, 0);
            let merged =
                trace::Trace::merge(pool.workers.iter().map(|w| w.trace.drain()).collect());
            *pool.trace_last.lock() = Some(merged);
        }
        let death = pool.death.lock().take();
        pool.draining.store(false, Ordering::SeqCst);
        let snapshot = pool.collector.snapshot();
        self.release_run();
        if let Some(payload) = death {
            panic::resume_unwind(payload);
        }
        snapshot
    }

    /// Run `f` and return its result together with the synchronization
    /// profile of the run (the paper's Figure 3/8 quantities).
    pub fn run_measured<F, T>(&self, f: F) -> (T, Snapshot)
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let value = self.run(f);
        (value, self.metrics())
    }

    /// Synchronization counters of the most recent completed run.
    pub fn metrics(&self) -> Snapshot {
        self.inner.collector.snapshot()
    }

    /// Take the merged scheduling trace of the most recent completed run
    /// (`None` if no run finished since the last take). See
    /// [`crate::trace`] for the event model and export helpers.
    #[cfg(feature = "trace")]
    pub fn take_trace(&self) -> Option<trace::Trace> {
        self.inner.trace_last.lock().take()
    }

    /// How many stall reports the watchdog has emitted over this pool's
    /// lifetime (0 unless [`PoolBuilder::stall_timeout`] was set). For
    /// tests and diagnostics; not part of the stable API.
    #[doc(hidden)]
    pub fn stall_reports(&self) -> u64 {
        self.inner.stall_reports.load(Ordering::Relaxed)
    }

    /// Between-runs self-healing: reap every helper whose death flag is
    /// set, restore its deque/flag state to the canonical empty slot, and
    /// spawn a replacement thread into the slot.
    ///
    /// Returns the respawned worker indices plus the number of *stray*
    /// deaths — join errors from panics that escaped the containment in
    /// `worker_main` (possible only for bugs outside the work loop, e.g.
    /// in the prologue) — so `run` can count both into the fresh metrics.
    ///
    /// A failed respawn (thread-spawn error, or a forced
    /// [`crate::fault::Site::ThreadSpawn`] fire) leaves the slot dead: the
    /// pool keeps running degraded — the slot is excluded from `active`,
    /// its deque is empty, and its zeroed pthread reroutes signals — and
    /// the next `run` retries the respawn.
    fn heal_dead_workers(&self) -> (Vec<u32>, u64) {
        let pool = &*self.inner;
        let mut respawned = Vec::new();
        let mut stray_deaths = 0u64;
        let mut handles = self.handles.lock();
        for index in 1..pool.workers.len() {
            let w = &pool.workers[index];
            if !w.dead.load(Ordering::Acquire) {
                continue;
            }
            // Reap the corpse. Containment makes a dying worker *return*
            // from `worker_main`, so the join normally succeeds; an Err is
            // a second, uncontained panic and counts as its own death.
            if let Some(h) = handles[index - 1].take() {
                if let Err(payload) = h.join() {
                    stray_deaths += 1;
                    eprintln!(
                        "lcws: worker {index} panicked outside its contained \
                         work loop: {}",
                        payload_msg(payload.as_ref())
                    );
                }
            }
            // The previous run quiesced, so the slot is ours: restore the
            // canonical deque state and clear every per-worker flag the
            // dead owner can no longer serve.
            w.deque.reset_for_respawn();
            w.targeted.store(false, Ordering::Relaxed);
            w.fallback_expose.store(false, Ordering::Relaxed);
            w.wake_pending.store(false, Ordering::Relaxed);
            // The replacement must not join a generation it never saw open:
            // it baselines at the *current* epoch (stable under the run
            // lock), so it first participates in the next opened run.
            let seen0 = pool.epoch.load(Ordering::Acquire);
            let worker_inner = Arc::clone(&self.inner);
            let builder =
                std::thread::Builder::new().name(format!("lcws-{}-{index}", pool.variant.name()));
            let spawned = if crate::fault::fail_at(crate::fault::Site::ThreadSpawn) {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "injected worker-respawn failure",
                ))
            } else {
                let fork = hb::fork_token();
                builder.spawn(move || {
                    hb::join_token(fork);
                    worker_main(worker_inner, index, seen0)
                })
            };
            match spawned {
                Ok(h) => {
                    handles[index - 1] = Some(h);
                    w.dead.store(false, Ordering::Release);
                    respawned.push(index as u32);
                }
                Err(e) => {
                    eprintln!(
                        "lcws: failed to respawn worker {index} ({e}); \
                         continuing degraded with the slot dead"
                    );
                }
            }
        }
        // Replacements must register their pthread handle before the run
        // opens, mirroring the build-time barrier: the first steal of the
        // new generation may already signal them.
        for &index in &respawned {
            let w = &pool.workers[index as usize];
            while w.pthread.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        }
        (respawned, stray_deaths)
    }
}

/// Scoped ownership of the pool's generation machinery (`run`'s use of
/// [`ThreadPool::acquire_run`]); releases on every exit path including the
/// panic-resume ones. `serve` forgets its token and `shutdown` releases by
/// hand, because their exclusion spans two calls (and possibly threads).
struct RunToken<'a> {
    pool: &'a ThreadPool,
}

impl Drop for RunToken<'_> {
    fn drop(&mut self) {
        self.pool.release_run();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // A serve window left open at drop would strand injected tasks and
        // leave helpers in a live generation; close it first. `shutdown`
        // re-panics helper deaths — contain that here, destructors must
        // not unwind.
        if self.inner.serving.load(Ordering::SeqCst)
            && panic::catch_unwind(AssertUnwindSafe(|| self.shutdown())).is_err()
        {
            eprintln!("lcws: shutdown during pool teardown resurfaced a worker death");
        }
        {
            let _g = self.inner.sync.lock();
            self.inner.shutdown.store(true, Ordering::Release);
            self.inner.start_cv.notify_all();
        }
        for handle in self.handles.get_mut().drain(..).flatten() {
            // Contained deaths return from `worker_main`, so an Err here is
            // a panic that escaped containment; surface it instead of
            // swallowing the payload.
            if let Err(payload) = handle.join() {
                self.inner.collector.add(Counter::WorkerDeath, 1);
                eprintln!(
                    "lcws: worker panicked during pool teardown: {}",
                    payload_msg(payload.as_ref())
                );
            }
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("variant", &self.inner.variant)
            .field("workers", &self.inner.workers.len())
            .finish()
    }
}

/// Leave-the-generation guard: flushes the worker's TLS counters and
/// performs the `active` handshake on **every** exit path of a generation —
/// normal drain-out and unwind alike — so `run`'s quiescence wait can never
/// hang on a dead helper.
struct ActiveGuard<'a> {
    pool: &'a PoolInner,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        // Flush first: on the death path the WorkerDeath bump and the
        // dying deque's exposure counts are still in TLS, and the caller
        // reads the collector right after quiescence.
        lcws_metrics::flush_into(&self.pool.collector);
        if self.pool.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.pool.sync.lock();
            self.pool.quiesce_cv.notify_all();
        }
    }
}

/// Best-effort text of a panic payload (the two shapes `panic!` produces).
fn payload_msg(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// Dying-owner protocol, run on the worker's own thread after a panic
/// escaped its work loop and before the `ActiveGuard` completes the
/// handshake (DESIGN.md §5e):
///
/// 1. **Expose everything.** The owner publishes its entire private region
///    (`public_bot ← bot`) so thieves rescue tasks that would otherwise be
///    stranded forever. This is safe precisely *because* a panic cannot
///    escape a task boundary (`StackJob::run_erased` catches, `join` funnels
///    sibling panics): an unwind reaching `worker_main` started in
///    scheduler code between tasks, so the deque holds only heap-allocated
///    scope jobs whose scopes are still alive, awaiting their `pending`
///    counts. The run's root cannot return until those jobs execute, and
///    the caller (worker 0) never dies this way, so a live thief always
///    exists to drain them.
/// 2. **Withdraw from the signal plane.** The pthread slot is zeroed before
///    the death flag rises, so a thief that still picks this victim fails
///    fast to `fallback_expose` and never `pthread_kill`s a corpse.
/// 3. **Publish the death.** Trace event, `worker_deaths` counter (flushed
///    by the guard), the first escaped payload stashed for `run` to resume
///    on the caller, and a `wake_all` so parked thieves re-poll the newly
///    exposed work.
fn handle_worker_death(pool: &PoolInner, index: usize, payload: Box<dyn Any + Send>) {
    let w = &pool.workers[index];
    let exposed = match &w.deque {
        // ABP: every queued task is already public to thieves.
        AnyDeque::Abp(_) => 0,
        AnyDeque::Split(d) => d.expose_all(),
    };
    w.pthread.store(0, Ordering::Release);
    w.dead.store(true, Ordering::Release);
    lcws_metrics::bump(Counter::WorkerDeath);
    crate::trace::record(crate::trace::EventKind::WorkerDeath, exposed);
    eprintln!(
        "lcws: worker {index} died mid-run ({} private task(s) exposed for \
         rescue): {}",
        exposed,
        payload_msg(payload.as_ref())
    );
    {
        let mut death = pool.death.lock();
        if death.is_none() {
            *death = Some(payload);
        }
    }
    pool.sleep.wake_all();
}

/// One line per worker plus pool-level state, for the stall watchdog. All
/// reads are racy snapshots — the stalled pool may be wedged, not stopped —
/// which is fine for a diagnostic aimed at a human.
fn stall_report(pool: &PoolInner, waiting_for: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lcws: stall watchdog: {waiting_for} exceeded {:?} \
         (variant={}, epoch={}, done_epoch={}, active={})",
        pool.stall_timeout.unwrap_or_default(),
        pool.variant.name(),
        pool.epoch.load(Ordering::Relaxed),
        pool.done_epoch.load(Ordering::Relaxed),
        pool.active.load(Ordering::Relaxed),
    );
    for (i, w) in pool.workers.iter().enumerate() {
        let (private, public) = w.deque.depths();
        let _ = writeln!(
            out,
            "  worker {i}: {}{}registered={} parked={} targeted={} \
             fallback_expose={} deque={{private: {private}, public: {public}}}",
            if i == 0 { "(caller) " } else { "" },
            if w.dead.load(Ordering::Relaxed) {
                "DEAD "
            } else {
                ""
            },
            w.pthread.load(Ordering::Relaxed) != 0,
            pool.sleep.is_sleeping(i),
            w.targeted.load(Ordering::Relaxed),
            w.fallback_expose.load(Ordering::Relaxed),
        );
    }
    // Flushed totals only: the stalled helpers' TLS counters are exactly
    // what has *not* reached the collector yet.
    let snap = pool.collector.snapshot();
    let _ = writeln!(
        out,
        "  counters (flushed): tasks_run={} steals_ok={} exposures={} \
         worker_deaths={} worker_respawns={}",
        snap.tasks_run(),
        snap.get(Counter::StealOk),
        snap.get(Counter::Exposure),
        snap.worker_deaths(),
        snap.worker_respawns(),
    );
    #[cfg(feature = "trace")]
    for w in pool.workers.iter() {
        let tail = w.trace.peek_tail(8);
        if tail.is_empty() {
            continue;
        }
        let _ = write!(out, "  trace tail worker {}:", w.trace.worker_index());
        for ev in tail {
            let _ = write!(out, " {}({})", ev.kind.name(), ev.payload);
        }
        let _ = writeln!(out);
    }
    out.pop(); // drop the trailing newline; eprintln! adds one
    out
}

fn worker_main(pool: Arc<PoolInner>, index: usize, seen0: u64) {
    lcws_metrics::touch();
    pool.workers[index]
        .pthread
        .store(signal::current_pthread() as u64, Ordering::Release);
    let ctx = WorkerCtx::new(&pool, index);
    let _guard = ctx.install();
    pool.ready.fetch_add(1, Ordering::AcqRel);

    // Respawned helpers baseline at the epoch their healer observed (the
    // original cohort at 0): reading `pool.epoch` here instead could see a
    // generation that opened with this slot excluded from `active`, and
    // joining it would break the quiescence handshake.
    let mut seen = seen0;
    loop {
        // Park until a new generation opens (or shutdown).
        {
            let mut g = pool.sync.lock();
            loop {
                if pool.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let e = pool.epoch.load(Ordering::Acquire);
                if e > seen {
                    seen = e;
                    break;
                }
                match pool.stall_timeout {
                    None => pool.start_cv.wait(&mut g),
                    // Watchdog mode: the generation-open wait is timed so a
                    // lost notification self-heals on the re-check above.
                    // No stall report from here — a helper idling between
                    // runs is the normal state, not a stall; the quiescence
                    // side owns the reporting.
                    Some(timeout) => {
                        let _ = pool.start_cv.wait_for(&mut g, timeout);
                    }
                }
            }
        }
        let generation = seen;
        // The guard owns this generation's `active` slot: constructed
        // before the work loop, dropped (flush + decrement + notify) on
        // every exit path below — including the unwind path, where it runs
        // *after* the death handler so the handler's counter bumps and
        // death flag are visible by the time the caller wakes.
        let active = ActiveGuard { pool: &pool };
        let unwind = panic::catch_unwind(AssertUnwindSafe(|| {
            ctx.work_until(&|| pool.done_epoch.load(Ordering::Acquire) >= generation);
        }));
        match unwind {
            Ok(()) => drop(active),
            Err(payload) => {
                handle_worker_death(&pool, index, payload);
                drop(active);
                // The thread exits *normally*: the corpse is reaped and the
                // slot respawned by the next run's healer.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_builds_and_drops_for_every_variant() {
        for v in Variant::ALL {
            let pool = ThreadPool::new(v, 3);
            assert_eq!(pool.num_workers(), 3);
            assert_eq!(pool.variant(), v);
        }
    }

    #[test]
    fn run_returns_value_single_worker() {
        let pool = ThreadPool::new(Variant::Ws, 1);
        assert_eq!(pool.run(|| 2 + 2), 4);
    }

    #[test]
    fn sequential_runs_reuse_workers() {
        let pool = ThreadPool::new(Variant::Signal, 4);
        for i in 0..20 {
            assert_eq!(pool.run(move || i * 2), i * 2);
        }
    }

    #[test]
    fn run_propagates_panic_and_pool_survives() {
        let pool = ThreadPool::new(Variant::UsLcws, 2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| panic!("root panic"));
        }));
        assert!(caught.is_err());
        // Pool still usable.
        assert_eq!(pool.run(|| 7), 7);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = PoolBuilder::new(Variant::Ws).threads(0).build();
    }

    #[test]
    fn metrics_reset_between_runs() {
        let pool = ThreadPool::new(Variant::Ws, 2);
        let (_, m1) = pool.run_measured(|| {
            crate::join(|| (), || ());
        });
        assert!(m1.tasks_run() >= 1, "the forked job counts as a task");
        let (_, m2) = pool.run_measured(|| 0);
        assert!(
            m2.tasks_run() <= m1.tasks_run(),
            "second run must not inherit first run's counters"
        );
    }

    /// Regression: §3's "`targeted` is reset when a task is removed from
    /// the deque's public part" applies to USLCWS too. The reset used to be
    /// gated on `uses_signals()`, leaving the flag stuck for USLCWS after a
    /// public pop — thieves would then skip this victim (Listing 1 line 21
    /// checks `!targeted`) even though it still had private work.
    #[test]
    fn uslcws_targeted_resets_on_public_pop() {
        let pool = PoolBuilder::new(Variant::UsLcws).threads(1).build();
        let ctx = WorkerCtx::new(&pool.inner, 0);
        let _guard = ctx.install();
        let w = &pool.inner.workers[0];
        let AnyDeque::Split(d) = &w.deque else {
            panic!("USLCWS uses the split deque");
        };
        // One task, made public (as if a poll served an exposure request),
        // with a thief's exposure request still pending.
        d.push_bottom(8 as *mut crate::job::Job);
        d.update_public_bottom(crate::deque::ExposurePolicy::One);
        w.targeted.store(true, Ordering::Relaxed);
        // Private part empty → acquire_local falls through to
        // pop_public_bottom.
        let job = ctx.acquire_local();
        assert_eq!(job, Some(8 as *mut crate::job::Job));
        assert!(
            !w.targeted.load(Ordering::Relaxed),
            "public-part removal must reset `targeted` for USLCWS"
        );
    }

    /// Satellite of the supervision issue: `run` used to leave the caller's
    /// pthread registered in slot 0 forever, so a signal racing the next
    /// run (whose caller may be a different thread) or pool teardown could
    /// target a thread that had left the pool.
    #[test]
    fn caller_pthread_cleared_after_run() {
        let pool = ThreadPool::new(Variant::Signal, 2);
        assert_eq!(pool.run(|| 5), 5);
        assert_eq!(
            pool.inner.workers[0].pthread.load(Ordering::Acquire),
            0,
            "run close must withdraw the caller's signal registration"
        );
    }

    #[test]
    fn stall_report_lists_pool_and_worker_state() {
        let pool = PoolBuilder::new(Variant::SignalConservative)
            .threads(3)
            .stall_timeout(Duration::from_millis(7))
            .build();
        let report = stall_report(&pool.inner, "unit-test wait");
        assert!(report.contains("stall watchdog"));
        assert!(report.contains("unit-test wait"));
        assert!(report.contains("7ms"));
        assert!(report.contains("worker 0: (caller)"));
        assert!(report.contains("worker 2:"));
        assert!(report.contains("counters (flushed)"));
        // Healthy pool between runs: nobody dead, reports not yet emitted
        // (this formats the report directly, bypassing the watchdog).
        assert!(!report.contains("DEAD"));
        assert_eq!(pool.stall_reports(), 0);
    }

    #[test]
    fn watchdog_defaults_off() {
        let pool = ThreadPool::new(Variant::Ws, 2);
        assert!(pool.inner.stall_timeout.is_none());
        for i in 0..10 {
            assert_eq!(pool.run(move || i), i);
        }
        assert_eq!(pool.stall_reports(), 0);
    }

    /// Regression: `try_injector` used to fire one `sleep.wake_one()` per
    /// re-queued tail task through `try_push_job` — 3 redundant wake
    /// attempts per `INJECTOR_BATCH = 4` drain. The tail becomes visible
    /// together, so one coalesced wake after the loop suffices.
    #[test]
    fn injector_drain_coalesces_tail_wakes_into_one() {
        let pool = PoolBuilder::new(Variant::Ws).threads(1).build();
        for _ in 0..crate::injector::INJECTOR_BATCH {
            pool.inner
                .injector
                .push(HeapJob::push_new(|| {}))
                .expect("no fault plan installed");
        }
        let ctx = WorkerCtx::new(&pool.inner, 0);
        let _guard = ctx.install();
        lcws_metrics::reset_local();
        assert!(ctx.try_injector(), "a queued batch must be drained");
        let c = Collector::new();
        lcws_metrics::flush_into(&c);
        let snap = c.snapshot();
        assert_eq!(
            snap.injector_pops(),
            crate::injector::INJECTOR_BATCH as u64,
            "the whole batch is taken in one visit"
        );
        assert_eq!(
            snap.wake_attempts(),
            1,
            "one coalesced wake for the re-queued tail, not one per task"
        );
        // Drain the re-queued tail so the heap jobs are freed.
        let mut drained = 0;
        while let Some(job) = ctx.acquire_local() {
            ctx.execute(job);
            drained += 1;
        }
        assert_eq!(drained, crate::injector::INJECTOR_BATCH - 1);
    }

    /// Regression: a thief that catches a victim slot before its worker
    /// thread registered a pthread handle (the pre-spawn zero) must not
    /// call `pthread_kill` on the sentinel — POSIX has no null pthread_t,
    /// so that is undefined behaviour. The request reroutes through the
    /// user-space `fallback_expose` flag instead.
    #[test]
    fn signal_to_unregistered_worker_reroutes_to_fallback() {
        let pool = PoolBuilder::new(Variant::Signal).threads(2).build();
        let victim = &pool.inner.workers[1];
        // Simulate the pre-registration window.
        victim.pthread.store(0, Ordering::Release);
        let ctx = WorkerCtx::new(&pool.inner, 0);
        let _guard = ctx.install();
        ctx.signal_or_flag(1, victim);
        assert!(
            victim.fallback_expose.load(Ordering::Relaxed),
            "zero-handle notification must set the fallback flag"
        );
        // The pool survives: the victim serves the flag at its next task
        // boundary once a run restores its handle and feeds it work.
        drop(_guard);
        assert_eq!(pool.run(|| 21 * 2), 42);
    }
}
