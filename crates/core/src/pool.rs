//! The scheduler thread pool: one deque per worker, epoch-based run
//! lifecycle, and metrics collection at quiescence.
//!
//! Execution model (mirrors Parlay): the pool owns `P − 1` helper threads;
//! the thread calling [`ThreadPool::run`] becomes worker 0 for the duration
//! of the call. Helpers park between runs and spin-steal (with yields)
//! during them. A run finishes when the root closure returns — fork-join
//! semantics guarantee every transitively spawned task has completed by
//! then — after which helpers flush their synchronization counters and
//! quiesce before `run` returns, so [`ThreadPool::metrics`] is exact.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_utils::CachePadded;
use lcws_metrics::{Collector, Snapshot};
use parking_lot::{Condvar, Mutex};

use crate::deque::{AbpDeque, SplitDeque, DEFAULT_DEQUE_CAPACITY};
use crate::signal;
use crate::sleep::{IdlePolicy, Sleep};
#[cfg(feature = "trace")]
use crate::trace;
use crate::variant::Variant;
use crate::worker::{current_ctx, WorkerCtx};

/// A worker's deque: ABP for the WS baseline, split for every LCWS variant.
pub(crate) enum AnyDeque {
    Abp(AbpDeque),
    Split(SplitDeque),
}

impl AnyDeque {
    /// Free ring buffers retired by growth during the closing run.
    ///
    /// # Safety
    /// Quiescence only: every helper must have left its work loop (the
    /// run-close `active` handshake), so no thread still holds a captured
    /// buffer pointer. Parked helpers do not touch deques between epochs,
    /// and the SIGUSR1 handler only moves `public_bot` — a late signal
    /// cannot reach a retired ring either.
    unsafe fn release_retired(&self) -> usize {
        match self {
            AnyDeque::Abp(d) => d.release_retired(),
            AnyDeque::Split(d) => d.release_retired(),
        }
    }
}

/// Shared, cross-thread-visible state of one worker slot.
pub(crate) struct WorkerShared {
    pub(crate) deque: AnyDeque,
    /// The paper's `targeted` flag (one per processor).
    pub(crate) targeted: CachePadded<AtomicBool>,
    /// pthread handle for `pthread_kill` notifications; registered before
    /// the worker can be targeted.
    pub(crate) pthread: AtomicU64,
    /// Set by this worker's `SIGUSR1` handler after it exposes work, in
    /// lieu of waking sleepers directly (condvar notify is not
    /// async-signal-safe). The owner drains it on its next deque access
    /// and performs the wake then.
    pub(crate) wake_pending: CachePadded<AtomicBool>,
    /// Set by a thief whose `pthread_kill` notification failed: the steal
    /// request is rerouted through this user-space flag, which the owner
    /// polls at its task boundaries (the USLCWS path) — a failed signal
    /// degrades exposure latency, never loses the request.
    pub(crate) fallback_expose: CachePadded<AtomicBool>,
    /// This worker's scheduling-event ring (owner-written, drained at run
    /// close; see `crate::trace`).
    #[cfg(feature = "trace")]
    pub(crate) trace: trace::TraceRing,
}

impl WorkerShared {
    fn new(
        variant: Variant,
        capacity: usize,
        #[cfg(feature = "trace")] index: usize,
        #[cfg(feature = "trace")] trace_capacity: usize,
    ) -> WorkerShared {
        let deque = if variant.uses_split_deque() {
            AnyDeque::Split(SplitDeque::new(capacity))
        } else {
            AnyDeque::Abp(AbpDeque::new(capacity))
        };
        WorkerShared {
            deque,
            targeted: CachePadded::new(AtomicBool::new(false)),
            pthread: AtomicU64::new(0),
            wake_pending: CachePadded::new(AtomicBool::new(false)),
            fallback_expose: CachePadded::new(AtomicBool::new(false)),
            #[cfg(feature = "trace")]
            trace: trace::TraceRing::new(index as u16, trace_capacity),
        }
    }
}

/// State shared between the pool handle and its worker threads.
pub(crate) struct PoolInner {
    pub(crate) variant: Variant,
    pub(crate) workers: Box<[WorkerShared]>,
    pub(crate) collector: Arc<Collector>,
    /// Sleeper subsystem for idle workers (spin → yield → park).
    pub(crate) sleep: Sleep,
    /// Idle escalation policy the workers run with.
    pub(crate) idle: IdlePolicy,
    /// Run generation; bumped (under `sync`) to start a run.
    epoch: AtomicU64,
    /// Last completed generation; helpers exit their work loop when it
    /// reaches their current generation.
    done_epoch: AtomicU64,
    /// Helpers still inside the work loop of the current generation.
    active: AtomicUsize,
    /// Helpers that finished their prologue (pthread registration).
    ready: AtomicUsize,
    shutdown: AtomicBool,
    sync: Mutex<()>,
    start_cv: Condvar,
    quiesce_cv: Condvar,
    /// Merged trace of the most recent completed run (drained at run
    /// close), handed out by `ThreadPool::take_trace`.
    #[cfg(feature = "trace")]
    trace_last: Mutex<Option<trace::Trace>>,
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    variant: Variant,
    threads: Option<usize>,
    deque_capacity: usize,
    idle: IdlePolicy,
    #[cfg(feature = "trace")]
    trace_capacity: usize,
}

impl PoolBuilder {
    /// Start building a pool for the given scheduler variant.
    pub fn new(variant: Variant) -> PoolBuilder {
        PoolBuilder {
            variant,
            threads: None,
            deque_capacity: DEFAULT_DEQUE_CAPACITY,
            idle: IdlePolicy::default(),
            #[cfg(feature = "trace")]
            trace_capacity: trace::DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Total number of workers, including the caller of `run` (≥ 1).
    /// Defaults to the machine's available parallelism.
    pub fn threads(mut self, threads: usize) -> PoolBuilder {
        assert!(threads >= 1, "a pool needs at least one worker");
        self.threads = Some(threads);
        self
    }

    /// Per-worker *initial* deque capacity in slots (rounded up to a power
    /// of two). Deques grow by doubling whenever a push finds the ring
    /// full, so this only tunes how many early doublings a deep workload
    /// pays — it is no longer a hard limit.
    pub fn deque_capacity(mut self, capacity: usize) -> PoolBuilder {
        self.deque_capacity = capacity;
        self
    }

    /// How idle workers behave: [`IdlePolicy::Adaptive`] (default) parks
    /// fully-escalated idlers; [`IdlePolicy::SpinOnly`] reproduces the
    /// old always-runnable busy-wait for idle-cost comparisons.
    pub fn idle_policy(mut self, idle: IdlePolicy) -> PoolBuilder {
        self.idle = idle;
        self
    }

    /// Per-worker trace-ring capacity in events (16 bytes each). When a
    /// run records more, the ring keeps the newest events and
    /// [`crate::trace::Trace::dropped`] reports the overwritten count.
    #[cfg(feature = "trace")]
    pub fn trace_capacity(mut self, events: usize) -> PoolBuilder {
        assert!(events > 0, "trace ring needs at least one slot");
        self.trace_capacity = events;
        self
    }

    /// Spawn the helper threads and return the pool.
    pub fn build(self) -> ThreadPool {
        let threads = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        if self.variant.uses_signals() {
            signal::install_handler();
        }
        #[cfg(not(feature = "trace"))]
        let workers = (0..threads)
            .map(|_| WorkerShared::new(self.variant, self.deque_capacity))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        #[cfg(feature = "trace")]
        let workers = (0..threads)
            .map(|i| WorkerShared::new(self.variant, self.deque_capacity, i, self.trace_capacity))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(PoolInner {
            variant: self.variant,
            sleep: Sleep::new(threads),
            idle: self.idle,
            workers,
            collector: Collector::new(),
            epoch: AtomicU64::new(0),
            done_epoch: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            ready: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sync: Mutex::new(()),
            start_cv: Condvar::new(),
            quiesce_cv: Condvar::new(),
            #[cfg(feature = "trace")]
            trace_last: Mutex::new(None),
        });
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for index in 1..threads {
            let worker_inner = Arc::clone(&inner);
            let builder =
                std::thread::Builder::new().name(format!("lcws-{}-{index}", self.variant.name()));
            let spawned = if crate::fault::fail_at(crate::fault::Site::ThreadSpawn) {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "injected worker-spawn failure",
                ))
            } else {
                builder.spawn(move || worker_main(worker_inner, index))
            };
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Partial-build cleanup: the workers spawned so far are
                    // waiting for (or racing towards) the start condvar.
                    // Flip shutdown under the lock and join every one of
                    // them before surfacing the error — a panic with
                    // context is acceptable, leaked threads are not.
                    {
                        let _g = inner.sync.lock();
                        inner.shutdown.store(true, Ordering::Release);
                        inner.start_cv.notify_all();
                    }
                    for h in handles {
                        let _ = h.join();
                    }
                    panic!(
                        "failed to spawn worker thread {index} of {threads} \
                         ({e}); {} already-spawned worker(s) joined cleanly",
                        index - 1
                    );
                }
            }
        }
        // Wait until every helper registered its pthread handle, so the
        // first run can already signal any victim safely.
        while inner.ready.load(Ordering::Acquire) != threads - 1 {
            std::thread::yield_now();
        }
        ThreadPool {
            inner,
            handles,
            run_lock: Mutex::new(()),
        }
    }
}

/// A work-stealing thread pool running one of the paper's five schedulers.
///
/// ```
/// use lcws_core::{PoolBuilder, Variant};
///
/// let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
/// let total: u64 = pool.run(|| {
///     let (a, b) = lcws_core::join(|| (0..500u64).sum::<u64>(),
///                                  || (500..1000u64).sum::<u64>());
///     a + b
/// });
/// assert_eq!(total, (0..1000u64).sum());
/// ```
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes `run` calls from different threads.
    run_lock: Mutex<()>,
}

impl ThreadPool {
    /// Convenience constructor: `variant` scheduler with `threads` workers.
    pub fn new(variant: Variant, threads: usize) -> ThreadPool {
        PoolBuilder::new(variant).threads(threads).build()
    }

    /// The scheduler variant this pool runs.
    pub fn variant(&self) -> Variant {
        self.inner.variant
    }

    /// Number of workers (including the `run` caller).
    pub fn num_workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Execute `f` on the pool: the calling thread becomes worker 0 and
    /// `f` may freely use [`crate::join`], [`crate::par_for`] and
    /// [`crate::scope`]. Returns once every transitively spawned task has
    /// completed and all helpers have quiesced.
    ///
    /// Panics from `f` (or any spawned task, propagated through the
    /// fork-join structure) resume on the caller after quiescence.
    ///
    /// Resets the pool's metrics collector, so [`ThreadPool::metrics`]
    /// afterwards reflects exactly this run.
    pub fn run<F, T>(&self, f: F) -> T
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        assert!(
            current_ctx().is_null(),
            "ThreadPool::run may not be nested inside a pool run"
        );
        let _serial = self.run_lock.lock();
        let pool = &*self.inner;
        lcws_metrics::touch();
        lcws_metrics::reset_local();
        pool.collector.reset();
        pool.workers[0]
            .pthread
            .store(signal::current_pthread() as u64, Ordering::Release);
        // Helpers are parked between runs and the caller has not installed
        // its ctx yet, so nobody records while the rings reset.
        #[cfg(feature = "trace")]
        for w in pool.workers.iter() {
            w.trace.reset();
        }

        // Open the generation (under the lock to avoid lost wakeups).
        {
            let _g = pool.sync.lock();
            pool.active.store(pool.workers.len() - 1, Ordering::Release);
            pool.epoch.fetch_add(1, Ordering::AcqRel);
            pool.start_cv.notify_all();
        }

        let ctx = WorkerCtx::new(pool, 0);
        let result = {
            let _guard = ctx.install();
            crate::trace::record(crate::trace::EventKind::RunStart, pool.workers.len() as u32);
            panic::catch_unwind(AssertUnwindSafe(f))
        };

        // Close the generation and wait for helpers to drain out. Helpers
        // may be parked in the sleeper: wake them all so they can observe
        // the closed generation and quiesce promptly.
        pool.done_epoch
            .store(pool.epoch.load(Ordering::Acquire), Ordering::Release);
        pool.sleep.wake_all();
        lcws_metrics::flush_into(&pool.collector);
        {
            let mut g = pool.sync.lock();
            while pool.active.load(Ordering::Acquire) != 0 {
                pool.quiesce_cv.wait(&mut g);
            }
        }
        // Quiescent: helpers left their work loop through the `active`
        // AcqRel handshake, so every deque and ring write happens-before
        // this point. This is the retirement list's epoch-free reclamation
        // moment: no thread can still hold a buffer captured before a grow.
        for w in pool.workers.iter() {
            // Safety: quiescence established above.
            unsafe { w.deque.release_retired() };
        }
        // The caller's TLS ring was cleared with its ctx guard; worker 0's
        // ring is still exclusively ours, so the close marker goes in
        // directly.
        #[cfg(feature = "trace")]
        {
            pool.workers[0]
                .trace
                .record_now(trace::EventKind::RunClose, 0);
            let merged =
                trace::Trace::merge(pool.workers.iter().map(|w| w.trace.drain()).collect());
            *pool.trace_last.lock() = Some(merged);
        }
        match result {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Run `f` and return its result together with the synchronization
    /// profile of the run (the paper's Figure 3/8 quantities).
    pub fn run_measured<F, T>(&self, f: F) -> (T, Snapshot)
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let value = self.run(f);
        (value, self.metrics())
    }

    /// Synchronization counters of the most recent completed run.
    pub fn metrics(&self) -> Snapshot {
        self.inner.collector.snapshot()
    }

    /// Take the merged scheduling trace of the most recent completed run
    /// (`None` if no run finished since the last take). See
    /// [`crate::trace`] for the event model and export helpers.
    #[cfg(feature = "trace")]
    pub fn take_trace(&self) -> Option<trace::Trace> {
        self.inner.trace_last.lock().take()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let _g = self.inner.sync.lock();
            self.inner.shutdown.store(true, Ordering::Release);
            self.inner.start_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("variant", &self.inner.variant)
            .field("workers", &self.inner.workers.len())
            .finish()
    }
}

fn worker_main(pool: Arc<PoolInner>, index: usize) {
    lcws_metrics::touch();
    pool.workers[index]
        .pthread
        .store(signal::current_pthread() as u64, Ordering::Release);
    let ctx = WorkerCtx::new(&pool, index);
    let _guard = ctx.install();
    pool.ready.fetch_add(1, Ordering::AcqRel);

    let mut seen = 0u64;
    loop {
        // Park until a new generation opens (or shutdown).
        {
            let mut g = pool.sync.lock();
            loop {
                if pool.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let e = pool.epoch.load(Ordering::Acquire);
                if e > seen {
                    seen = e;
                    break;
                }
                pool.start_cv.wait(&mut g);
            }
        }
        let generation = seen;
        ctx.work_until(&|| pool.done_epoch.load(Ordering::Acquire) >= generation);
        lcws_metrics::flush_into(&pool.collector);
        if pool.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = pool.sync.lock();
            pool.quiesce_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_builds_and_drops_for_every_variant() {
        for v in Variant::ALL {
            let pool = ThreadPool::new(v, 3);
            assert_eq!(pool.num_workers(), 3);
            assert_eq!(pool.variant(), v);
        }
    }

    #[test]
    fn run_returns_value_single_worker() {
        let pool = ThreadPool::new(Variant::Ws, 1);
        assert_eq!(pool.run(|| 2 + 2), 4);
    }

    #[test]
    fn sequential_runs_reuse_workers() {
        let pool = ThreadPool::new(Variant::Signal, 4);
        for i in 0..20 {
            assert_eq!(pool.run(move || i * 2), i * 2);
        }
    }

    #[test]
    fn run_propagates_panic_and_pool_survives() {
        let pool = ThreadPool::new(Variant::UsLcws, 2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| panic!("root panic"));
        }));
        assert!(caught.is_err());
        // Pool still usable.
        assert_eq!(pool.run(|| 7), 7);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = PoolBuilder::new(Variant::Ws).threads(0).build();
    }

    #[test]
    fn metrics_reset_between_runs() {
        let pool = ThreadPool::new(Variant::Ws, 2);
        let (_, m1) = pool.run_measured(|| {
            crate::join(|| (), || ());
        });
        assert!(m1.tasks_run() >= 1, "the forked job counts as a task");
        let (_, m2) = pool.run_measured(|| 0);
        assert!(
            m2.tasks_run() <= m1.tasks_run(),
            "second run must not inherit first run's counters"
        );
    }

    /// Regression: §3's "`targeted` is reset when a task is removed from
    /// the deque's public part" applies to USLCWS too. The reset used to be
    /// gated on `uses_signals()`, leaving the flag stuck for USLCWS after a
    /// public pop — thieves would then skip this victim (Listing 1 line 21
    /// checks `!targeted`) even though it still had private work.
    #[test]
    fn uslcws_targeted_resets_on_public_pop() {
        let pool = PoolBuilder::new(Variant::UsLcws).threads(1).build();
        let ctx = WorkerCtx::new(&pool.inner, 0);
        let _guard = ctx.install();
        let w = &pool.inner.workers[0];
        let AnyDeque::Split(d) = &w.deque else {
            panic!("USLCWS uses the split deque");
        };
        // One task, made public (as if a poll served an exposure request),
        // with a thief's exposure request still pending.
        d.push_bottom(8 as *mut crate::job::Job);
        d.update_public_bottom(crate::deque::ExposurePolicy::One);
        w.targeted.store(true, Ordering::Relaxed);
        // Private part empty → acquire_local falls through to
        // pop_public_bottom.
        let job = ctx.acquire_local();
        assert_eq!(job, Some(8 as *mut crate::job::Job));
        assert!(
            !w.targeted.load(Ordering::Relaxed),
            "public-part removal must reset `targeted` for USLCWS"
        );
    }

    /// Regression: a thief that catches a victim slot before its worker
    /// thread registered a pthread handle (the pre-spawn zero) must not
    /// call `pthread_kill` on the sentinel — POSIX has no null pthread_t,
    /// so that is undefined behaviour. The request reroutes through the
    /// user-space `fallback_expose` flag instead.
    #[test]
    fn signal_to_unregistered_worker_reroutes_to_fallback() {
        let pool = PoolBuilder::new(Variant::Signal).threads(2).build();
        let victim = &pool.inner.workers[1];
        // Simulate the pre-registration window.
        victim.pthread.store(0, Ordering::Release);
        let ctx = WorkerCtx::new(&pool.inner, 0);
        let _guard = ctx.install();
        ctx.signal_or_flag(1, victim);
        assert!(
            victim.fallback_expose.load(Ordering::Relaxed),
            "zero-handle notification must set the fallback flag"
        );
        // The pool survives: the victim serves the flag at its next task
        // boundary once a run restores its handle and feeds it work.
        drop(_guard);
        assert_eq!(pool.run(|| 21 * 2), 42);
    }
}
