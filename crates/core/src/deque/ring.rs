//! Generation-tagged growable ring buffer shared by both deques.
//!
//! The Chase–Lev lineage (Chase & Lev 2005; Le, Pop, Cohen & Zappa Nardelli
//! 2013) replaces the paper's fixed slot arrays: slot indices stay
//! *absolute* (monotonically increasing between empty-resets) and map onto a
//! power-of-two ring as `index & mask`. When `push_bottom` finds the ring
//! full it allocates a double-size ring, copies the old ring's slots to the
//! same absolute indices, and publishes the new buffer pointer with a
//! Release store ([`crate::model::shim::SchedPtr`]). Cross-thread readers
//! capture the pointer **once per operation** with an Acquire load and index
//! modulo the captured ring's own capacity.
//!
//! ## Why stale captures are safe
//!
//! A retired ring is never written again, so a thief still holding it reads
//! frozen slot values. The thief's `age` CAS validates the read: the slot at
//! absolute index `t` (with `t = age.top` at CAS time) can only have been
//! *overwritten* in the captured ring by a push at `t + capacity` or later,
//! which the full check forbids until `top > t` — and `top > t` (or an
//! owner reset, which bumps the ABA tag) makes the CAS fail, discarding the
//! stale read. The capture therefore has to happen **after** the `age`
//! load; both `pop_top` implementations do exactly that.
//!
//! ## Reclamation (epoch-free, no GC)
//!
//! Retired rings go on an owner-only retirement list. They are freed at the
//! pool's run-close quiescence point — after the `active` handshake proves
//! every helper left its work loop (parked helpers do not touch deques
//! between epochs, and the SIGUSR1 handler only moves `public_bot`, never
//! the buffer) — and on `Drop` for standalone deques.
//!
//! ## Index-width bound
//!
//! Absolute indices are `u32`, like the paper's. Because every capacity is
//! a power of two (and so divides 2³²), slot addressing stays consistent
//! even across index wrap-around, and the protocols' ordering comparisons
//! go through the wrap-safe signed distance (`crate::deque::sdist`), which
//! is exact while every live extent stays below 2³¹ — guaranteed by the
//! [`MAX_DEQUE_CAPACITY`] = 2³⁰ cap. A deque on a long-lived `serve` pool
//! can therefore push straight through the 2³² wrap mid-era; no empty-reset
//! is required for correctness (the wraparound tests in `split.rs`/`abp.rs`
//! start their indices at `u32::MAX - ε` and cross the boundary live).
//! Growth is capped at [`MAX_DEQUE_CAPACITY`] slots; a push that would need
//! more reports [`DequeFull`] and the scheduler degrades to the legacy
//! inline fallback.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::Ordering;

use lcws_metrics as metrics;

use crate::deque::{sdist, DequeFull};
use crate::fault::{self, Site};
use crate::hb;
use crate::job::Job;
use crate::model::shim::{AtomicPtr, SchedPtr};
use crate::trace;

/// Hard ceiling on a ring's slot count: 2³⁰ slots (8 GiB of task pointers).
/// Far past any real workload, comfortably inside the `u32` index space,
/// and the point where growth degrades to the inline-execution fallback
/// instead of doubling further.
pub const MAX_DEQUE_CAPACITY: usize = 1 << 30;

/// One immutable-capacity ring: a power-of-two slot array plus the
/// generation tag (how many doublings produced it).
pub(crate) struct RingBuffer {
    gen: u32,
    mask: u32,
    slots: Box<[AtomicPtr<Job>]>,
}

impl RingBuffer {
    fn alloc(capacity: usize, gen: u32) -> *mut RingBuffer {
        debug_assert!(capacity.is_power_of_two() && capacity <= MAX_DEQUE_CAPACITY);
        let slots = (0..capacity)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Box::into_raw(Box::new(RingBuffer {
            gen,
            mask: (capacity - 1) as u32,
            slots,
        }))
    }

    /// Slot holding absolute index `index`.
    #[inline(always)]
    pub(crate) fn slot(&self, index: u32) -> &AtomicPtr<Job> {
        // Safety: `mask + 1 == slots.len()`, so the masked index is in
        // range by construction.
        unsafe { self.slots.get_unchecked((index & self.mask) as usize) }
    }

    /// Slot count (a power of two).
    #[inline(always)]
    pub(crate) fn capacity(&self) -> u32 {
        self.mask + 1
    }

    /// Doublings since the deque's initial ring (0 = initial).
    #[inline(always)]
    pub(crate) fn generation(&self) -> u32 {
        self.gen
    }
}

/// The growable half of a deque: current-buffer pointer, the owner's
/// cached lower bound on `top` (keeps the full check off the contended
/// `age` line), and the retirement list.
///
/// Thread roles mirror the deques': exactly one owner calls
/// [`GrowableRing::for_push`] / [`GrowableRing::owner`] /
/// [`GrowableRing::reset_top_bound`]; any thread may call
/// [`GrowableRing::capture`].
pub(crate) struct GrowableRing {
    /// Current ring. Owner publishes (Release) on grow; cross-thread
    /// readers capture with Acquire, once per operation.
    buffer: SchedPtr<RingBuffer>,
    /// Owner-local lower bound on `age.top`, refreshed only when the cheap
    /// check fails. Invariant: `cached_top ≤ top` at all times within the
    /// current tag era (every reset path calls `reset_top_bound`), so a
    /// passing fast check soundly proves the ring is not full.
    cached_top: Cell<u32>,
    /// Rings retired by grows; owner-only appends, freed at run-close
    /// quiescence or drop.
    retired: UnsafeCell<Vec<*mut RingBuffer>>,
}

impl GrowableRing {
    /// Ring with `capacity` rounded up to a power of two.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0 && capacity <= MAX_DEQUE_CAPACITY,
            "deque capacity must be in 1..={MAX_DEQUE_CAPACITY}, got {capacity}"
        );
        GrowableRing {
            buffer: SchedPtr::new(RingBuffer::alloc(capacity.next_power_of_two(), 0), "buffer"),
            cached_top: Cell::new(0),
            retired: UnsafeCell::new(Vec::new()),
        }
    }

    /// Owner-side view of the current ring. Unscheduled under `model` and
    /// Relaxed: the owner is the pointer's only writer, so its own reads
    /// need no ordering and commute with every concurrent access.
    #[inline(always)]
    pub(crate) fn owner(&self) -> &RingBuffer {
        unsafe { &*self.buffer.load_owner(Ordering::Relaxed) }
    }

    /// Cross-thread capture of the current ring, **once per operation**.
    /// Acquire pairs with the grow's Release publish, making the copied
    /// slots (and the ring header) visible. Must be called *after* the
    /// operation's `age` load — see the module docs for why the `age` CAS
    /// then validates any stale capture.
    #[inline(always)]
    pub(crate) fn capture(&self) -> &RingBuffer {
        unsafe { &*self.buffer.load(Ordering::Acquire) }
    }

    /// Owner: the ring to push absolute index `b` into, doubling first when
    /// full. `load_top` reads the deque's current `age.top`; it is only
    /// invoked when the cached bound cannot prove a free slot.
    #[inline(always)]
    pub(crate) fn for_push(
        &self,
        b: u32,
        load_top: impl FnOnce() -> u32,
    ) -> Result<&RingBuffer, DequeFull> {
        let buf = self.owner();
        // `cached_top ≤ top` ⟹ `b - top ≤ b - cached_top < capacity`:
        // the live range has a free slot, no shared access needed.
        if b.wrapping_sub(self.cached_top.get()) < buf.capacity() {
            return Ok(buf);
        }
        self.refresh_or_grow(b, buf, load_top)
    }

    #[cold]
    fn refresh_or_grow<'a>(
        &'a self,
        b: u32,
        buf: &'a RingBuffer,
        load_top: impl FnOnce() -> u32,
    ) -> Result<&'a RingBuffer, DequeFull> {
        let top = load_top();
        self.cached_top.set(top);
        // `b` behind `top` is the split deque's transient SignalSafe-miss
        // state (`bot` decremented below `public_bot`); not a full ring.
        // Signed distance, not `<`: either index may have wrapped.
        if sdist(b, top) < 0 || b.wrapping_sub(top) < buf.capacity() {
            return Ok(buf);
        }
        self.grow(b, buf)
    }

    /// Double the ring. `b - top == capacity` here (the live range is
    /// exactly the whole old ring, possibly conservatively: a concurrent
    /// steal may already have advanced `top`, which only shrinks the range
    /// actually alive inside the copied window).
    #[cold]
    fn grow<'a>(&'a self, b: u32, old: &RingBuffer) -> Result<&'a RingBuffer, DequeFull> {
        let old_cap = old.capacity();
        if old_cap as usize >= MAX_DEQUE_CAPACITY || fault::fail_at(Site::DequeResize) {
            return Err(DequeFull);
        }
        let new_ptr = RingBuffer::alloc(old_cap as usize * 2, old.generation() + 1);
        let new_buf = unsafe { &*new_ptr };
        // Copy the whole old ring to the same absolute indices. Plain
        // (Relaxed) copies: the publish below releases them, and the old
        // ring is the owner's own data.
        for i in 0..old_cap {
            // Wrapping: the live window `[b - old_cap, b)` may straddle the
            // u32 boundary on a long-lived (never-reset) deque.
            let idx = b.wrapping_sub(old_cap).wrapping_add(i);
            hb::on_write(
                new_buf.slot(idx) as *const _ as usize,
                "ring slot (grow copy)",
            );
            new_buf
                .slot(idx)
                .store(old.slot(idx).load(Ordering::Relaxed), Ordering::Relaxed);
        }
        // The resize window: everything is copied but thieves still run on
        // the old ring until the publish below. Delay storms here stretch
        // the window the chaos tests race steals against.
        fault::point(Site::DequeResize);
        // `grow_publish_order()` is a compile-time `Release` unless an hb
        // negative test deliberately weakens it to demonstrate the checker
        // catches the severed copied-slots edge.
        self.buffer
            .store(new_ptr, hb::negative::grow_publish_order());
        // Retired rings stay readable (never written) until quiescence.
        unsafe { (*self.retired.get()).push(old as *const RingBuffer as *mut RingBuffer) };
        metrics::bump(metrics::Counter::DequeGrow);
        trace::record(trace::EventKind::DequeGrow, new_buf.capacity());
        Ok(new_buf)
    }

    /// Owner: reset the cached `top` bound to the fresh era's 0. Must be
    /// called on every `age` reset path — the cache is only a valid lower
    /// bound within one tag era.
    #[inline(always)]
    pub(crate) fn reset_top_bound(&self) {
        self.cached_top.set(0);
    }

    /// Owner (test hook): seed the cached `top` bound at an arbitrary
    /// absolute index. Used by the deques' `#[doc(hidden)]`
    /// `set_start_index` hooks, which start an era near `u32::MAX` to
    /// exercise index wraparound.
    pub(crate) fn set_top_bound(&self, bound: u32) {
        self.cached_top.set(bound);
    }

    /// Free every retired ring; returns how many were freed.
    ///
    /// # Safety
    /// The caller must guarantee no thread still holds a
    /// [`GrowableRing::capture`]d reference to a retired ring — the pool
    /// calls this at run-close quiescence, after the `active` handshake.
    pub(crate) unsafe fn release_retired(&self) -> usize {
        let retired = &mut *self.retired.get();
        let n = retired.len();
        for p in retired.drain(..) {
            forget_ring_slots(p);
            drop(Box::from_raw(p));
        }
        n
    }
}

/// Drop the checker's access history for a ring's slot array before the
/// allocation is freed — a later ring reusing the addresses must not be
/// misread as racing the dead one.
fn forget_ring_slots(p: *mut RingBuffer) {
    // Safety: the caller owns `p` and is about to free it.
    unsafe {
        let slots: &[AtomicPtr<Job>] = &(*p).slots;
        hb::forget_range(slots.as_ptr() as usize, std::mem::size_of_val(slots));
    }
}

impl Drop for GrowableRing {
    fn drop(&mut self) {
        // Safety: `&mut self` proves exclusive access.
        unsafe {
            self.release_retired();
            let current = self.buffer.load_owner(Ordering::Relaxed);
            forget_ring_slots(current);
            drop(Box::from_raw(current));
        }
    }
}
