//! The fully-concurrent ABP-style work-stealing deque used by the WS
//! baseline (the deque Parlay's stock scheduler uses).
//!
//! Unlike the split deque, *every* slot can be taken by a thief at any time,
//! which forces the owner to pay a sequentially-consistent fence on **every**
//! `pop_bottom` (and to publish every `push_bottom` with a fence) — this is
//! the `O(W)`-fences synchronization cost LCWS eliminates, and exactly what
//! Figures 3a/8a of the paper ratio against.
//!
//! The implementation mirrors Parlay's `work_stealing_deque` (itself the
//! bounded-array deque of Arora–Blumofe–Plaxton with a tagged `age` word),
//! with the fence/CAS placement preserved so the counted operations match.

use std::sync::atomic::Ordering;

use crossbeam_utils::CachePadded;
use lcws_metrics as metrics;

use crate::age::{Age, AtomicAge};
use crate::deque::ring::GrowableRing;
// Aliased locally: the ABP outcome type has no `PrivateWork` (there is no
// private part), and the alias keeps the paper-mirroring internals readable.
use crate::deque::{sdist, AbpSteal as Steal, DequeFull};
use crate::fault::{self, Site};
use crate::hb;
use crate::job::Job;
// Index/age words go through the shim atomics: plain std atomics in normal
// builds, DFS scheduling points under the opt-in `model` feature.
use crate::model::shim::{self, AtomicU32};
use crate::trace;

/// ABP deque: `age = {tag, top}` at the top, `bot` at the bottom, slots in
/// a generation-tagged growable ring (see [`crate::deque::ring`]) instead
/// of the classic bounded array — `push_bottom` doubles on full, with the
/// fence/CAS placement of every operation unchanged from the bounded
/// version.
pub struct AbpDeque {
    age: CachePadded<AtomicAge>,
    bot: CachePadded<AtomicU32>,
    ring: CachePadded<GrowableRing>,
}

unsafe impl Send for AbpDeque {}
unsafe impl Sync for AbpDeque {}

impl AbpDeque {
    /// Create a deque whose ring starts at `capacity` slots (rounded up to
    /// a power of two) and doubles on demand up to
    /// [`crate::deque::ring::MAX_DEQUE_CAPACITY`].
    pub fn new(capacity: usize) -> Self {
        AbpDeque {
            age: CachePadded::new(AtomicAge::new()),
            bot: CachePadded::new(shim::named_u32(0, "bot")),
            ring: CachePadded::new(GrowableRing::new(capacity)),
        }
    }

    /// Current slot capacity of the ring (racy for non-owners).
    pub fn capacity(&self) -> usize {
        self.ring.capture().capacity() as usize
    }

    /// Number of ring doublings since construction (0 = still the initial
    /// buffer). Racy for non-owners, exact for the owner.
    pub fn generation(&self) -> u32 {
        self.ring.capture().generation()
    }

    /// Owner: push at the bottom, doubling the ring when full. Publishes
    /// with a seq-cst fence so concurrent thieves observe the slot before
    /// the new `bot`. [`DequeFull`] remains only for a `faultpoints`-forced
    /// failure or a ring at maximum capacity, and leaves the deque
    /// untouched.
    #[inline]
    pub fn try_push_bottom(&self, task: *mut Job) -> Result<(), DequeFull> {
        let b = self.bot.load(Ordering::Relaxed);
        if fault::fail_at(Site::PushBottom) {
            return Err(DequeFull);
        }
        let buf = self
            .ring
            .for_push(b, || self.age.load(Ordering::Relaxed).top)?;
        // Unlike the split deque (plain-array slot semantics, ordering
        // carried by `public_bot`/the grow publish), the ABP slot handoff
        // is itself Release/Acquire — so the checker models the slot as an
        // *atomic*, carrying the job-content edge to the thief, and leaves
        // race detection to the tracked job cells downstream.
        hb::atomic_store(buf.slot(b) as *const _ as usize, Ordering::Release, || {
            buf.slot(b).store(task, Ordering::Release)
        });
        self.bot.store(b.wrapping_add(1), Ordering::Release);
        shim::fence_seq_cst();
        metrics::bump(metrics::Counter::Push);
        trace::record(trace::EventKind::Push, b.wrapping_add(1));
        Ok(())
    }

    /// Owner: push at the bottom, growing the ring as needed; panics only
    /// when growth itself is impossible (ring at maximum capacity, or a
    /// forced `DequeResize` fault under `faultpoints`). The scheduler goes
    /// through [`AbpDeque::try_push_bottom`] instead.
    #[inline]
    pub fn push_bottom(&self, task: *mut Job) {
        assert!(
            self.try_push_bottom(task).is_ok(),
            "ABP deque overflow (capacity {}): ring growth failed \
             (maximum capacity or forced DequeResize fault)",
            self.capacity()
        );
    }

    /// Owner: pop from the bottom. Always pays a seq-cst fence; pays a CAS
    /// too when racing thieves for the last task.
    pub fn pop_bottom(&self) -> Option<*mut Job> {
        fault::point(Site::PopBottom);
        let b = self.bot.load(Ordering::Relaxed);
        // `b == 0` alone is not proof of emptiness on a wrapped era (a
        // long-lived deque's indices pass through 0 with `top` near
        // `u32::MAX`); only `b == top == 0` — the canonical era base — is.
        if b == 0 && self.age.load(Ordering::Relaxed).top == 0 {
            return None;
        }
        let b1 = b.wrapping_sub(1);
        self.bot.store(b1, Ordering::Relaxed);
        // The expensive fence WS pays on every local pop (cf. Attiya et
        // al.'s lower bound, discussed in the paper's introduction).
        shim::fence_seq_cst();
        let task = self.ring.owner().slot(b1).load(Ordering::Relaxed);
        let old_age = self.age.load(Ordering::Relaxed);
        if sdist(b1, old_age.top) > 0 {
            metrics::bump(metrics::Counter::LocalPop);
            trace::record(trace::EventKind::LocalPop, b1);
            return Some(task);
        }
        // Zero or one task left: reset and possibly race thieves for it.
        self.bot.store(0, Ordering::Relaxed);
        // The reset opens a fresh tag era with `top = 0`; the push fast
        // path's cached bound must not carry over from the old era.
        self.ring.reset_top_bound();
        let new_age = old_age.reset();
        if b1 == old_age.top {
            metrics::record_cas();
            // Failure ordering Relaxed: the loaded-on-failure value is
            // discarded (only `is_ok` is tested), so it synchronizes
            // nothing. Success stays SeqCst — the ABP argument orders this
            // CAS against the owner fence/thief CAS in the SC total order.
            if self
                .age
                .compare_exchange(old_age, new_age, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                metrics::bump(metrics::Counter::LocalPop);
                trace::record(trace::EventKind::LocalPop, 0);
                return Some(task);
            }
        }
        self.age.store(new_age, Ordering::Release);
        None
    }

    /// Thief: steal the top-most task.
    pub fn pop_top(&self) -> Steal {
        fault::point(Site::PopTop);
        metrics::bump(metrics::Counter::StealAttempt);
        let old_age = self.age.load(Ordering::Acquire);
        let b = self.bot.load(Ordering::Acquire);
        if sdist(b, old_age.top) > 0 {
            // Single buffer capture per steal, *after* the `age` load: the
            // CAS below fails whenever `top` moved, which is the only way
            // this ring's slot at `top` could have been overwritten or the
            // ring retired-and-superseded mid-steal (see `deque::ring`).
            let slot = self.ring.capture().slot(old_age.top);
            // Atomic-modeled (see `try_push_bottom`): the Acquire joins the
            // pushing owner's release clock, which is the edge the stolen
            // job's content reads rely on.
            let task = hb::atomic_load(slot as *const _ as usize, Ordering::Acquire, || {
                slot.load(Ordering::Acquire)
            });
            let new_age = old_age.with_top_incremented();
            // Forced fire: lose the CAS race outright (chaos tests use this
            // to exercise the Abort path deterministically).
            if fault::fail_at(Site::PopTop) {
                metrics::bump(metrics::Counter::StealAbort);
                return Steal::Abort;
            }
            metrics::record_cas();
            // Failure ordering Relaxed: a failed steal returns Abort without
            // touching the loaded value (see pop_bottom's CAS).
            if self
                .age
                .compare_exchange(old_age, new_age, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                metrics::bump(metrics::Counter::StealOk);
                return Steal::Ok(task);
            }
            metrics::bump(metrics::Counter::StealAbort);
            return Steal::Abort;
        }
        Steal::Empty
    }

    /// Pool (at quiescence): restore the canonical `(bot, age) =
    /// (0, {tag+1, 0})` empty state before handing this deque to a
    /// respawned worker. The tag bump invalidates stale thief `age`
    /// snapshots from the dead worker's era; see
    /// `SplitDeque::reset_for_respawn` for the safety contract (quiescent,
    /// under the run lock).
    pub(crate) fn reset_for_respawn(&self) {
        self.bot.store(0, Ordering::Relaxed);
        self.ring.reset_top_bound();
        let new_age = self.age.load(Ordering::Relaxed).reset();
        self.age.store(new_age, Ordering::Relaxed);
    }

    /// Raw `(bot, age)` snapshot. For tests and the model checker, which
    /// assert the canonical reset to `(0, top = 0)`; not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn raw_state(&self) -> (u32, Age) {
        (
            self.bot.load(Ordering::Relaxed),
            self.age.load(Ordering::Relaxed),
        )
    }

    /// Is the deque observably empty (racy)?
    pub fn is_empty(&self) -> bool {
        let b = self.bot.load(Ordering::Relaxed);
        let top = self.age.load(Ordering::Relaxed).top;
        sdist(b, top) <= 0
    }

    /// Test hook: restart the (empty, otherwise-idle) deque's era at
    /// absolute index `start`. Owner-only; exists so the wraparound tests
    /// can start `bot`/`top`/the cached push bound near `u32::MAX` and
    /// drive the protocol across the index boundary. Not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn set_start_index(&self, start: u32) {
        let tag = self.age.load(Ordering::Relaxed).tag;
        self.bot.store(start, Ordering::Relaxed);
        self.age.store(
            Age {
                tag: tag.wrapping_add(1),
                top: start,
            },
            Ordering::Relaxed,
        );
        self.ring.set_top_bound(start);
    }

    /// Free rings retired by growth.
    ///
    /// # Safety
    /// Callable only at quiescence: no thread may still hold a buffer
    /// captured before the grow that retired it (the pool calls this after
    /// the run-close `active` handshake).
    pub(crate) unsafe fn release_retired(&self) -> usize {
        self.ring.release_retired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(n: usize) -> *mut Job {
        n as *mut Job
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = AbpDeque::new(16);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        d.push_bottom(job(3));
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        assert_eq!(d.pop_bottom(), Some(job(3)));
        assert_eq!(d.pop_bottom(), Some(job(2)));
        assert_eq!(d.pop_bottom(), None);
        assert_eq!(d.pop_top(), Steal::Empty);
    }

    #[test]
    fn reset_reuses_slots() {
        let d = AbpDeque::new(4);
        for round in 0..10 {
            d.push_bottom(job(round * 2 + 1));
            d.push_bottom(job(round * 2 + 2));
            assert!(d.pop_bottom().is_some());
            assert!(d.pop_bottom().is_some());
            assert_eq!(d.pop_bottom(), None);
        }
    }

    #[test]
    fn reset_for_respawn_restores_canonical_state() {
        let d = AbpDeque::new(16);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        let tag_before = d.raw_state().1.tag;
        d.reset_for_respawn();
        let (bot, age) = d.raw_state();
        assert_eq!((bot, age.top), (0, 0));
        assert!(
            age.tag > tag_before,
            "respawn reset must open a new tag era"
        );
        d.push_bottom(job(3));
        assert_eq!(d.pop_bottom(), Some(job(3)));
    }

    #[test]
    fn push_past_capacity_grows_the_ring() {
        let d = AbpDeque::new(2);
        assert_eq!(d.capacity(), 2);
        for i in 1..=35 {
            d.push_bottom(job(i));
        }
        assert_eq!(d.capacity(), 64);
        assert_eq!(d.generation(), 5, "2 -> 4 -> 8 -> 16 -> 32 -> 64");
        for i in (1..=35).rev() {
            assert_eq!(d.pop_bottom(), Some(job(i)));
        }
        assert_eq!(d.pop_bottom(), None);
        let (bot, age) = d.raw_state();
        assert_eq!((bot, age.top), (0, 0));
    }

    #[test]
    fn growth_preserves_stolen_prefix_and_lifo_suffix() {
        let d = AbpDeque::new(2);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        // b = 2, top = 1: the next push recycles the stolen physical slot
        // (ring indexing, no grow); the one after finds the ring genuinely
        // full and doubles it, copying live indices 1 and 2.
        d.push_bottom(job(3));
        d.push_bottom(job(4)); // grows 2 -> 4
        assert_eq!(d.generation(), 1);
        assert_eq!(d.pop_top(), Steal::Ok(job(2)));
        assert_eq!(d.pop_bottom(), Some(job(4)));
        assert_eq!(d.pop_bottom(), Some(job(3)));
        assert_eq!(d.pop_bottom(), None);
        assert_eq!(d.pop_top(), Steal::Empty);
    }

    #[test]
    fn fences_counted_per_local_op() {
        lcws_metrics::reset_local();
        let c = lcws_metrics::Collector::new();
        let d = AbpDeque::new(16);
        d.push_bottom(job(1));
        d.pop_bottom();
        lcws_metrics::flush_into(&c);
        let s = c.snapshot();
        assert_eq!(s.fences(), 2, "one fence per push + one per pop");
    }

    #[test]
    fn wraparound_push_pop_steal_and_grow() {
        // Start the era 8 indices before the u32 boundary: the pushes
        // below carry `bot` through the wrap while `top` is still on the
        // far side, and the capacity-4 ring doubles twice mid-wrap.
        let d = AbpDeque::new(4);
        let start = u32::MAX - 7;
        d.set_start_index(start);
        for i in 1..=16 {
            d.push_bottom(job(i));
        }
        assert_eq!(d.capacity(), 16, "4 -> 8 -> 16 across the boundary");
        let (bot, age) = d.raw_state();
        assert_eq!(bot, start.wrapping_add(16), "bot wrapped past zero");
        assert!(bot < age.top, "raw compare is inverted across the wrap");
        // Thief consumes pre-wrap indices, owner post-wrap indices.
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        assert_eq!(d.pop_top(), Steal::Ok(job(2)));
        for i in (4..=16).rev() {
            assert_eq!(d.pop_bottom(), Some(job(i)));
        }
        assert_eq!(d.pop_bottom(), Some(job(3)));
        assert_eq!(d.pop_bottom(), None);
        let (bot, age) = d.raw_state();
        assert_eq!((bot, age.top), (0, 0), "drain re-anchors the 0 era");
        // The deque keeps working in the fresh era.
        d.push_bottom(job(99));
        assert_eq!(d.pop_bottom(), Some(job(99)));
    }

    #[test]
    fn wraparound_concurrent_stress_no_loss_no_duplication() {
        use std::collections::HashSet;
        use std::sync::atomic::AtomicBool;
        use std::sync::Mutex;

        // Same owner-vs-thieves storm as below, but the era starts close
        // enough to u32::MAX that the working indices cross the boundary
        // while thieves are live.
        const N: usize = 2000;
        let d = AbpDeque::new(64);
        d.set_start_index(u32::MAX - 500);
        let taken = Mutex::new(Vec::<usize>::new());
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            Steal::Abort => continue,
                            _ => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            let mut local = Vec::new();
            for i in 1..=N {
                d.push_bottom(job(i));
                if i % 3 == 0 {
                    if let Some(j) = d.pop_bottom() {
                        local.push(j as usize);
                    }
                }
            }
            while let Some(j) = d.pop_bottom() {
                local.push(j as usize);
            }
            done.store(true, Ordering::Release);
            taken.lock().unwrap().extend(local);
        });

        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "a task was executed twice");
        assert_eq!(set.len(), N, "a task was lost");
    }

    #[test]
    fn concurrent_stress_no_loss_no_duplication() {
        use std::collections::HashSet;
        use std::sync::atomic::AtomicBool;
        use std::sync::Mutex;

        const N: usize = 2000;
        let d = AbpDeque::new(N + 1);
        let taken = Mutex::new(Vec::<usize>::new());
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            Steal::Abort => continue,
                            _ => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            let mut local = Vec::new();
            for i in 1..=N {
                d.push_bottom(job(i));
                if i % 2 == 0 {
                    if let Some(j) = d.pop_bottom() {
                        local.push(j as usize);
                    }
                }
            }
            while let Some(j) = d.pop_bottom() {
                local.push(j as usize);
            }
            done.store(true, Ordering::Release);
            taken.lock().unwrap().extend(local);
        });

        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "a task was executed twice");
        assert_eq!(set.len(), N, "a task was lost");
    }
}
