//! The split deque of Listing 2, with the paper's §4 signal-safe
//! `pop_bottom` variant and the §4.1 exposure policies.
//!
//! Layout invariant (see Figure 1): slots `[0, bot)` hold tasks;
//! `[age.top, public_bot)` is the **public part** (stealable), and
//! `[public_bot, bot)` is the **private part**, touched only by the owner
//! with plain (Relaxed) operations — no fences, no CAS.
//!
//! ## Memory-model notes (deviations from the C++ listing, all justified)
//!
//! * The C++ fields `bot`/`public_bot` are plain `unsigned int` and the task
//!   array is non-atomic; cross-thread plain accesses are UB in Rust, so all
//!   fields are atomics accessed with `Relaxed` (which compiles to the same
//!   plain loads/stores the C++ emits) and the paper's two explicit
//!   `atomic_thread_fence(seq_cst)` calls are kept verbatim.
//! * `update_public_bottom` stores `public_bot` with **Release** and thieves
//!   load it with **Acquire**. The listing uses plain accesses and relies on
//!   x86-TSO to order the slot write before the boundary publication; on
//!   x86 Release/Acquire are exactly those plain accesses, so the observable
//!   synchronization cost is unchanged, and the code stays correct on
//!   weakly-ordered ISAs. The paper itself counts exposure as a
//!   synchronization event (Figure 3d discussion), consistent with this.
//! * In `pop_top`, `age` is loaded with Acquire so the subsequent
//!   `public_bot` load cannot be hoisted above it on weak ISAs (free on
//!   x86). None of these strengthen the *fence/CAS counts* the evaluation
//!   measures.
//!
//! ## The §4 owner-vs-handler race
//!
//! With signals, `update_public_bottom` runs inside a `SIGUSR1` handler that
//! can interrupt the owner *between any two instructions* of `pop_bottom`.
//! [`PopBottomMode::SignalSafe`] implements the paper's fix: decrement `bot`
//! first, then compare with `public_bot` (`--bot < public_bot`), with
//! `pop_public_bottom` resetting `bot ← 0` when it finds the deque at an
//! empty era base. One extra guard not spelled out in the listing: when
//! `bot == 0` **and** `public_bot == 0` the private part is provably empty
//! (`public_bot == bot`), so we return `None` before decrementing, which no
//! handler interleaving can invalidate because the handler never modifies
//! `bot` and never exposes past it. `bot == 0` alone is *not* proof of
//! emptiness: absolute indices wrap modulo 2³² on a long-lived `serve`
//! deque, so every ordering comparison below goes through the wrap-safe
//! signed distance ([`crate::deque::sdist`]) and every increment/decrement
//! is wrapping.
//!
//! ## Growable storage
//!
//! Slots live in a generation-tagged growable ring ([`crate::deque::ring`])
//! rather than a fixed array: `push_bottom` doubles the ring when full
//! instead of reporting [`DequeFull`], thieves capture the buffer pointer
//! once per `pop_top` (after the `age` load, which validates stale
//! captures), and the handler's `update_public_bottom` never touches the
//! buffer at all — it only moves `public_bot` — so the §4 argument is
//! untouched by resizes. The fence/CAS placement of every operation is
//! unchanged from the fixed-array version (asserted by the fence-counting
//! tests): growth adds no synchronization to the fast path.

use std::sync::atomic::Ordering;

use crossbeam_utils::CachePadded;
use lcws_metrics as metrics;

use crate::age::{Age, AtomicAge};
use crate::deque::ring::GrowableRing;
use crate::deque::{sdist, DequeFull, Steal};
use crate::fault::{self, Site};
use crate::hb;
use crate::job::Job;
// All index/age words go through the shim atomics: plain std atomics in
// normal builds, DFS scheduling points under the opt-in `model` feature.
use crate::model::shim::{self, AtomicU32};
use crate::trace;

/// How the owner's `pop_bottom` guards against concurrent exposure from a
/// signal handler (paper §4, "A Subtlety in the Signal-Based
/// Implementation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopBottomMode {
    /// Listing 2 line 7: compare *then* decrement. Correct when exposures
    /// only happen at the owner's own scheduling points (WS-style polling,
    /// USLCWS) or when exposure always leaves the bottom task private
    /// (Conservative Exposure, §4.1.1).
    Standard,
    /// §4: decrement *then* compare (`--bot < public_bot`). Required when a
    /// signal handler may expose the task `pop_bottom` is about to take
    /// (base signal implementation and Expose Half).
    SignalSafe,
}

/// How many private tasks `update_public_bottom` transfers to the public
/// part when a work-exposure request is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExposurePolicy {
    /// Expose the top-most private task (Listing 2 line 41; base LCWS).
    One,
    /// §4.1.1: expose one task only while **two or more** private tasks
    /// remain (`public_bot + 1 < bot`), so the bottom-most task can never
    /// become public under the owner's feet and `Standard` pop stays safe.
    Conservative,
    /// §4.1.2: with `r ≥ 3` private tasks expose `round(r/2)` of them,
    /// otherwise at most one. Rounding uses the Lua-inspired
    /// [`double2int`] bit trick the paper adopted after `std::round`
    /// proved an order of magnitude too slow.
    Half,
}

/// The Lua `lua_number2int`-style float-to-int conversion used by the
/// Expose Half variant (§4.1.2, "Implementation Details").
///
/// Adding `1.5 * 2^52` forces the value into the mantissa range where the
/// low 32 bits of the IEEE-754 representation *are* the rounded integer
/// (round-to-nearest-even, like the hardware default mode the paper runs
/// under). Valid for `0 ≤ r < 2^31`, far beyond any deque size — outside
/// that domain the truncated bits are garbage, so debug builds assert the
/// range instead of returning it silently.
#[inline]
pub fn double2int(r: f64) -> i32 {
    // The edge is 2^31 - 0.5, not 2^31: anything at or above it *rounds*
    // to 2^31, whose low 32 bits read back as `i32::MIN`.
    debug_assert!(
        (0.0..2147483647.5).contains(&r),
        "double2int is only defined for 0 <= round(r) < 2^31, got {r}"
    );
    const MAGIC: f64 = 6755399441055744.0; // 1.5 * 2^52
    (r + MAGIC).to_bits() as i32
}

/// Upper bound on tasks a single [`SplitDeque::pop_top_batch`] call can
/// transfer (the first returned task plus up to `STEAL_BATCH_MAX - 1`
/// extras). Bounds the thief-side stack buffers; the protocol itself caps
/// the take at half the public part, so this only bites on very full
/// deques.
pub const STEAL_BATCH_MAX: usize = 16;

/// The split deque (Listing 2). One per worker; the worker is the only
/// caller of `push_bottom` / `pop_bottom` / `pop_public_bottom` /
/// `update_public_bottom`, while any thief may call `pop_top` /
/// `has_two_tasks` / `is_public_empty`.
pub struct SplitDeque {
    /// Packed `{tag, top}` guarding the public part's top end.
    age: CachePadded<AtomicAge>,
    /// One past the bottom-most public task; the private part starts here.
    public_bot: CachePadded<AtomicU32>,
    /// One past the bottom-most task overall (owner-local).
    bot: CachePadded<AtomicU32>,
    /// Growable slot ring (current buffer, cached top bound, retirement
    /// list).
    ring: CachePadded<GrowableRing>,
}

// Job pointers are handed off between threads with deque ownership-transfer
// discipline; the deque itself contains only atomics.
unsafe impl Send for SplitDeque {}
unsafe impl Sync for SplitDeque {}

impl SplitDeque {
    /// Create a deque whose ring starts at `capacity` slots (rounded up to
    /// a power of two) and doubles on demand up to
    /// [`crate::deque::ring::MAX_DEQUE_CAPACITY`].
    pub fn new(capacity: usize) -> Self {
        SplitDeque {
            age: CachePadded::new(AtomicAge::new()),
            public_bot: CachePadded::new(shim::named_u32(0, "public_bot")),
            bot: CachePadded::new(shim::named_u32(0, "bot")),
            ring: CachePadded::new(GrowableRing::new(capacity)),
        }
    }

    /// Current slot capacity of the ring (racy for non-owners: a grow may
    /// be publishing concurrently).
    pub fn capacity(&self) -> usize {
        self.ring.capture().capacity() as usize
    }

    /// Number of ring doublings since construction (0 = still the initial
    /// buffer). Racy for non-owners, exact for the owner.
    pub fn generation(&self) -> u32 {
        self.ring.capture().generation()
    }

    /// Owner: push a task at the bottom. Synchronization-free (Listing 2
    /// line 5) on the fast path: one plain store of the slot, one plain
    /// store of `bot`. A full ring is doubled in place (amortized O(1));
    /// [`DequeFull`] remains only for a `faultpoints`-forced
    /// [`Site::DequeResize`] failure or a ring already at its maximum
    /// capacity, and leaves the deque untouched and the task with the
    /// caller so the scheduler can degrade to running it inline.
    #[inline]
    pub fn try_push_bottom(&self, task: *mut Job) -> Result<(), DequeFull> {
        let b = self.bot.load(Ordering::Relaxed);
        if fault::fail_at(Site::PushBottom) {
            return Err(DequeFull);
        }
        let buf = self
            .ring
            .for_push(b, || self.age.load(Ordering::Relaxed).top)?;
        hb::on_write(buf.slot(b) as *const _ as usize, "split slot (push_bottom)");
        buf.slot(b).store(task, Ordering::Relaxed);
        self.bot.store(b.wrapping_add(1), Ordering::Relaxed);
        metrics::bump(metrics::Counter::Push);
        trace::record(trace::EventKind::Push, b.wrapping_add(1));
        Ok(())
    }

    /// Owner: push a task at the bottom, growing the ring as needed;
    /// panics only when growth itself is impossible (ring at maximum
    /// capacity, or a forced `DequeResize` fault under `faultpoints`). The
    /// scheduler goes through [`SplitDeque::try_push_bottom`] and degrades
    /// gracefully instead.
    #[inline]
    pub fn push_bottom(&self, task: *mut Job) {
        assert!(
            self.try_push_bottom(task).is_ok(),
            "split deque overflow (capacity {}): ring growth failed \
             (maximum capacity or forced DequeResize fault)",
            self.capacity()
        );
    }

    /// Owner: pop the bottom-most **private** task. Synchronization-free.
    ///
    /// Returns `None` when the private part is empty; the caller should then
    /// try [`SplitDeque::pop_public_bottom`].
    #[inline]
    pub fn pop_bottom(&self, mode: PopBottomMode) -> Option<*mut Job> {
        fault::point(Site::PopBottom);
        match mode {
            PopBottomMode::Standard => {
                // Listing 2 line 7: `bot == public_bot ? nullptr : deq[--bot]`.
                let b = self.bot.load(Ordering::Relaxed);
                let pb = self.public_bot.load(Ordering::Relaxed);
                if b == pb {
                    return None;
                }
                let b1 = b.wrapping_sub(1);
                self.bot.store(b1, Ordering::Relaxed);
                let task = self.ring.owner().slot(b1).load(Ordering::Relaxed);
                metrics::bump(metrics::Counter::LocalPop);
                trace::record(trace::EventKind::LocalPop, b1);
                Some(task)
            }
            PopBottomMode::SignalSafe => {
                // §4: `--bot < public_bot ? nullptr : deq[bot]`, plus the
                // empty-private-part guard discussed in the module docs
                // (`bot == 0` alone is not proof on a wrapped era).
                let b = self.bot.load(Ordering::Relaxed);
                if b == 0 && self.public_bot.load(Ordering::Relaxed) == 0 {
                    return None;
                }
                let b1 = b.wrapping_sub(1);
                self.bot.store(b1, Ordering::Relaxed);
                // The §4 race window: a handler exposure landing between
                // the decrement above and the comparison below.
                fault::point(Site::PopBottom);
                if sdist(b1, self.public_bot.load(Ordering::Relaxed)) < 0 {
                    // A handler exposed the task under us; it is now public
                    // and must be taken via pop_public_bottom (which also
                    // repairs `bot`).
                    return None;
                }
                let task = self.ring.owner().slot(b1).load(Ordering::Relaxed);
                metrics::bump(metrics::Counter::LocalPop);
                trace::record(trace::EventKind::LocalPop, b1);
                Some(task)
            }
        }
    }

    /// Owner: pop the bottom-most task of the **public** part (Listing 2
    /// lines 9–29, with the §4 `bot ← 0` reset when `public_bot == 0`).
    ///
    /// Pays the paper's two seq-cst fences, and a CAS when racing thieves
    /// for the last public task.
    pub fn pop_public_bottom(&self) -> Option<*mut Job> {
        fault::point(Site::PopPublicBottom);
        let pb0 = self.public_bot.load(Ordering::Relaxed);
        if pb0 == 0 && self.age.load(Ordering::Relaxed).top == 0 {
            // §4 modification: repair `bot` (the SignalSafe pop_bottom may
            // have left it decremented below a now-empty deque). The guard
            // requires `top == 0` too: on a wrapped era `public_bot == 0`
            // with `top` just below the boundary is a *live* public part
            // `[top, 0)`, handled by the wrapping decrement below.
            self.bot.store(0, Ordering::Relaxed);
            return None;
        }
        let pb = pb0.wrapping_sub(1);
        // Release, not Relaxed: a plain store would *break the release
        // sequence* headed by the exposure's Release store (C++20), so a
        // thief acquire-loading the decremented value would lose the edge
        // covering the still-public slots `[top, pb)` — the hb checker
        // catches this as slot races under the SignalSafe variants. (The
        // paper's Listing 2 uses seq-cst stores here, which release too.)
        self.public_bot.store(pb, Ordering::Release);
        // Fence #1 (Listing 2 line 12): publish the decrement to thieves and
        // read an up-to-date `age`.
        shim::fence_seq_cst();
        let task = self.ring.owner().slot(pb).load(Ordering::Relaxed);
        let old_age = self.age.load(Ordering::Relaxed);
        if sdist(pb, old_age.top) > 0 {
            // More than one public task remained: the bottom-most one is
            // ours without contention. Private part is empty here (this
            // method is only called when pop_bottom failed), so `bot`
            // follows the boundary.
            self.bot.store(pb, Ordering::Relaxed);
            metrics::bump(metrics::Counter::OwnerPublicPop);
            trace::record(trace::EventKind::PublicPop, pb);
            return Some(task);
        }
        // At most one public task remains and thieves may be racing for it:
        // reset the deque and fight for the task with a CAS. A delay here
        // (between the two fences) widens the owner-vs-thief CAS race.
        fault::point(Site::PopPublicBottom);
        self.bot.store(0, Ordering::Relaxed);
        // The reset opens a fresh tag era with `top = 0`; the push fast
        // path's cached bound must not carry over from the old era.
        self.ring.reset_top_bound();
        let new_age = old_age.reset();
        let local_bot = pb;
        // Release (sequence continuation, as above) — and ordered before
        // the era-opening `age` publishes below: a thief that observes the
        // fresh era must also observe `public_bot = 0`, or it could pair
        // the new `age` with a stale (larger) `public_bot` and steal a
        // *private* new-era slot. The SC fences don't close that window
        // for thieves (they carry no fence); the Release/Acquire chain
        // through `age` does, by write-read coherence.
        self.public_bot.store(0, Ordering::Release);
        let won = if local_bot == old_age.top {
            metrics::record_cas();
            self.age
                .compare_exchange(old_age, new_age, Ordering::Release, Ordering::Relaxed)
                .is_ok()
        } else {
            false
        };
        let result = if won {
            metrics::bump(metrics::Counter::OwnerPublicPop);
            trace::record(trace::EventKind::PublicPop, 0);
            Some(task)
        } else {
            // A thief took it (or top had already moved past us): make the
            // reset visible and report empty. Release for the same
            // era-vs-`public_bot` coherence argument as the CAS above.
            self.age.store(new_age, Ordering::Release);
            None
        };
        // Fence #2 (Listing 2 line 27): thieves must not observe the new
        // `age` together with the old `public_bot`, which could double-run
        // a task.
        shim::fence_seq_cst();
        result
    }

    /// Thief: try to steal the top-most public task (Listing 2 lines 30–40).
    ///
    /// Note: the listing's final line reads
    /// `(public_bot < bot) ? nullptr : PRIVATE_WORK`, which inverts the
    /// semantics §3.2 specifies ("if only the public part is empty it
    /// returns PRIVATE_WORK"); we implement the specified semantics.
    pub fn pop_top(&self) -> Steal {
        fault::point(Site::PopTop);
        metrics::bump(metrics::Counter::StealAttempt);
        let old_age = self.age.load(Ordering::Acquire);
        let pb = self.public_bot.load(Ordering::Acquire);
        if sdist(pb, old_age.top) > 0 {
            // Single buffer capture per steal, *after* the `age` load: the
            // CAS below fails whenever `top` moved, which is the only way
            // this ring's slot at `top` could have been overwritten or the
            // ring retired-and-superseded mid-steal (see `deque::ring`).
            let slot = self.ring.capture().slot(old_age.top);
            // Speculative for the checker: this read only counts (and only
            // races) if the validating CAS below commits it.
            let pending = hb::speculative_read(slot as *const _ as usize, "split slot (pop_top)");
            let task = slot.load(Ordering::Relaxed);
            let new_age = old_age.with_top_incremented();
            // Stretch the read-age → CAS window thieves race within; a
            // forced fire models losing the race outright (the chaos tests
            // use it to exercise the Abort path deterministically).
            if fault::fail_at(Site::PopTop) {
                metrics::bump(metrics::Counter::StealAbort);
                return Steal::Abort;
            }
            metrics::record_cas();
            if self
                .age
                .compare_exchange(old_age, new_age, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                hb::commit_read(pending);
                metrics::bump(metrics::Counter::StealOk);
                return Steal::Ok(task);
            }
            metrics::bump(metrics::Counter::StealAbort);
            return Steal::Abort;
        }
        // Public part empty: report whether private work exists so the thief
        // can request exposure. `bot` is an owner-local field read racily —
        // a stale value only costs a wasted notification or a retry.
        if sdist(pb, self.bot.load(Ordering::Relaxed)) < 0 {
            metrics::bump(metrics::Counter::StealPrivate);
            Steal::PrivateWork
        } else {
            Steal::Empty
        }
    }

    /// Thief: steal up to `⌈public/2⌉` tasks with **one** validating `age`
    /// CAS (the steal-half policy, [`crate::StealAmount::Half`]).
    ///
    /// Returns the top-most stolen task exactly like
    /// [`SplitDeque::pop_top`]; any *additional* tasks (at most `max_extra`,
    /// itself capped by [`STEAL_BATCH_MAX`]` - 1`) are appended to `extras`
    /// in top-to-bottom order for the thief to requeue locally. Empty /
    /// private-work / abort outcomes are identical to the scalar steal, and
    /// with `max_extra == 0` this *is* the scalar steal.
    ///
    /// ## Why one CAS over `k` slots is safe (§4 signal-window argument)
    ///
    /// The scalar proof: a thief reads slot `top`, then CASes
    /// `age: {tag, top} → {tag, top+1}`; the CAS succeeding proves `top`
    /// never moved between the read and the commit, so the slot could not
    /// have been overwritten (overwrite requires the owner to reclaim the
    /// index, which requires the era reset that bumps `tag`) nor taken by
    /// another thief (which requires advancing `top`).
    ///
    /// The multi-slot extension takes `k ≤ ⌈sdist(public_bot, top)/2⌉`
    /// slots `[top, top+k)`. Every index is strictly below the
    /// `public_bot` value loaded *after* `age`, so every slot was written
    /// before the exposure's Release store and the Acquire load here — the
    /// per-slot publication edge is the scalar one, `k` times. The single
    /// CAS `{tag, top} → {tag, top+k}` validates all `k` reads at once: if
    /// any other taker (thief CAS, owner reset) touched the range first,
    /// `top` or `tag` changed and the CAS fails, taking nothing. An owner
    /// `pop_public_bottom` racing on the *last* public task CASes the same
    /// word, so the two-fence reset protocol is undisturbed: the batch
    /// either wins wholly before the reset (owner sees `top` advanced,
    /// resigns) or loses wholly. Signal-handler exposures only move
    /// `public_bot` upward, which can only under-count `avail` here —
    /// never expose a slot to double-take. Taking at most *half* (the
    /// ceiling) leaves the remainder immediately re-stealable, preserving
    /// the paper's steal-half fairness argument on the thief side.
    pub fn pop_top_batch(&self, extras: &mut Vec<*mut Job>, max_extra: usize) -> Steal {
        fault::point(Site::PopTop);
        metrics::bump(metrics::Counter::StealAttempt);
        let old_age = self.age.load(Ordering::Acquire);
        let pb = self.public_bot.load(Ordering::Acquire);
        let avail = sdist(pb, old_age.top);
        if avail > 0 {
            let avail = avail as u32;
            // Half of the public part, rounded up, capped by the caller's
            // budget and the stack-array bound; always at least the one
            // task a scalar steal would take.
            let k = (avail.div_ceil(2))
                .min(max_extra.min(STEAL_BATCH_MAX - 1) as u32 + 1)
                .max(1) as usize;
            // Single buffer capture per steal, after the `age` load, exactly
            // as in pop_top: the CAS below fails whenever `top` moved, which
            // is the only way any of the `k` slots could have been
            // overwritten or the ring retired mid-steal.
            let buf = self.ring.capture();
            let mut tasks = [std::ptr::null_mut::<Job>(); STEAL_BATCH_MAX];
            let mut pending: [Option<hb::PendingRead>; STEAL_BATCH_MAX] =
                std::array::from_fn(|_| None);
            for (i, (task, pend)) in tasks.iter_mut().zip(pending.iter_mut()).take(k).enumerate() {
                let slot = buf.slot(old_age.top.wrapping_add(i as u32));
                // Speculative for the checker: these reads only count (and
                // only race) if the validating CAS below commits them.
                *pend = Some(hb::speculative_read(
                    slot as *const _ as usize,
                    "split slot (pop_top_batch)",
                ));
                *task = slot.load(Ordering::Relaxed);
            }
            let new_age = old_age.with_top_advanced(k as u32);
            // Same stretchable read-age → CAS window as the scalar steal.
            if fault::fail_at(Site::PopTop) {
                metrics::bump(metrics::Counter::StealAbort);
                return Steal::Abort;
            }
            metrics::record_cas();
            if self
                .age
                .compare_exchange(old_age, new_age, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                for pend in pending.iter_mut().take(k) {
                    hb::commit_read(pend.take().expect("pending read recorded above"));
                }
                metrics::bump(metrics::Counter::StealOk);
                if k > 1 {
                    metrics::bump_by(metrics::Counter::StealBatchTask, (k - 1) as u64);
                    extras.extend_from_slice(&tasks[1..k]);
                }
                return Steal::Ok(tasks[0]);
            }
            metrics::bump(metrics::Counter::StealAbort);
            return Steal::Abort;
        }
        if sdist(pb, self.bot.load(Ordering::Relaxed)) < 0 {
            metrics::bump(metrics::Counter::StealPrivate);
            Steal::PrivateWork
        } else {
            Steal::Empty
        }
    }

    /// Owner (possibly from a signal handler): transfer private tasks to the
    /// public part according to `policy`. Returns how many were exposed.
    ///
    /// Async-signal-safe: relaxed/release atomics and TLS counter bumps
    /// only.
    pub fn update_public_bottom(&self, policy: ExposurePolicy) -> u32 {
        // May run in signal-handler context: spin-delay actions only.
        fault::point(Site::UpdatePublicBottom);
        let b = self.bot.load(Ordering::Relaxed);
        let pb = self.public_bot.load(Ordering::Relaxed);
        // Private-part length; sdist keeps it exact across index wrap (the
        // transient SignalSafe decrement can make it -1, clamped to 0).
        let r = sdist(b, pb).max(0) as u32;
        let exposed = match policy {
            ExposurePolicy::One => {
                if r >= 1 {
                    1
                } else {
                    0
                }
            }
            ExposurePolicy::Conservative => {
                // Expose only while ≥ 2 private tasks remain, so the task at
                // `bot - 1` can never become public (keeps Standard
                // pop_bottom race-free).
                if r >= 2 {
                    1
                } else {
                    0
                }
            }
            ExposurePolicy::Half => {
                if r >= 3 {
                    double2int(r as f64 / 2.0) as u32
                } else if r >= 1 {
                    1
                } else {
                    0
                }
            }
        };
        if exposed > 0 {
            debug_assert!(exposed <= r);
            // Release pairs with the Acquire in pop_top so thieves see the
            // slot contents before the moved boundary.
            self.public_bot
                .store(pb.wrapping_add(exposed), Ordering::Release);
            metrics::bump_by(metrics::Counter::Exposure, exposed as u64);
            // May run in signal-handler context; the trace record is
            // async-signal-safe by design (see `crate::trace`).
            trace::record(trace::EventKind::Expose, exposed);
        }
        exposed
    }

    /// Owner (dying): publish the **entire** private region so thieves can
    /// rescue tasks a panicking worker would otherwise strand forever.
    /// Returns how many tasks were exposed.
    ///
    /// This is the supervision layer's last-gasp handoff (DESIGN.md §5e):
    /// policy-agnostic (`public_bot ← bot` regardless of the variant's
    /// [`ExposurePolicy`]) because the owner is about to stop scheduling —
    /// the §4.1 policies exist to protect the *owner's* future `pop_bottom`,
    /// and a dying owner has none. Called on the worker's own thread from
    /// the unwind path, so the owner-only access discipline holds.
    pub fn expose_all(&self) -> u32 {
        let b = self.bot.load(Ordering::Relaxed);
        let pb = self.public_bot.load(Ordering::Relaxed);
        let exposed = sdist(b, pb).max(0) as u32;
        if exposed > 0 {
            // Release pairs with the Acquire in pop_top, exactly like
            // update_public_bottom: thieves must see the slot contents
            // before the moved boundary.
            self.public_bot.store(b, Ordering::Release);
            metrics::bump_by(metrics::Counter::Exposure, exposed as u64);
            trace::record(trace::EventKind::Expose, exposed);
        }
        exposed
    }

    /// Pool (at quiescence): restore the canonical `(bot, public_bot,
    /// age) = (0, 0, {tag+1, 0})` empty state before handing this deque to
    /// a respawned worker.
    ///
    /// Mirrors the reset arm of [`SplitDeque::pop_public_bottom`]: the tag
    /// bump invalidates any `age` snapshot a thief captured in the dead
    /// worker's era, and the push fast path's cached top bound must not
    /// carry over.
    ///
    /// # Safety (enforced by the caller)
    /// Only sound at quiescence with no concurrent owner or thief — the
    /// pool calls this between runs, under the run lock, after the `active`
    /// handshake of the previous generation completed.
    pub(crate) fn reset_for_respawn(&self) {
        self.bot.store(0, Ordering::Relaxed);
        self.public_bot.store(0, Ordering::Relaxed);
        self.ring.reset_top_bound();
        let new_age = self.age.load(Ordering::Relaxed).reset();
        self.age.store(new_age, Ordering::Relaxed);
    }

    /// Test hook: re-anchor an **empty, quiescent** deque so its next era
    /// starts at absolute index `start`. Lets the wraparound tests (and the
    /// `model` scenarios) reach the `u32` index boundary in a few pushes
    /// instead of 2³² operations. Bumps the ABA tag like every other reset
    /// path and reseeds the ring's cached top bound.
    ///
    /// Not part of the stable API; callable only with no concurrent owner,
    /// thief, or handler, like [`SplitDeque::reset_for_respawn`].
    #[doc(hidden)]
    pub fn set_start_index(&self, start: u32) {
        self.bot.store(start, Ordering::Relaxed);
        self.public_bot.store(start, Ordering::Relaxed);
        let new_age = Age {
            tag: self.age.load(Ordering::Relaxed).tag.wrapping_add(1),
            top: start,
        };
        self.age.store(new_age, Ordering::Relaxed);
        self.ring.set_top_bound(start);
    }

    /// Thief-side heuristic for the Conservative variant's notification
    /// condition (§4.1.1): does the victim hold at least two tasks?
    #[inline]
    pub fn has_two_tasks(&self) -> bool {
        let b = self.bot.load(Ordering::Relaxed);
        let top = self.age.load(Ordering::Relaxed).top;
        sdist(b, top) >= 2
    }

    /// Number of tasks currently in the private part (owner-accurate,
    /// racy for other threads).
    pub fn private_len(&self) -> u32 {
        let b = self.bot.load(Ordering::Relaxed);
        let pb = self.public_bot.load(Ordering::Relaxed);
        sdist(b, pb).max(0) as u32
    }

    /// Number of tasks currently in the public part (racy).
    pub fn public_len(&self) -> u32 {
        let pb = self.public_bot.load(Ordering::Relaxed);
        let top = self.age.load(Ordering::Relaxed).top;
        sdist(pb, top).max(0) as u32
    }

    /// Is the deque observably empty (racy)?
    pub fn is_empty(&self) -> bool {
        let b = self.bot.load(Ordering::Relaxed);
        let top = self.age.load(Ordering::Relaxed).top;
        sdist(b, top) <= 0
    }

    /// Raw `(bot, public_bot, age)` snapshot. For tests and the model
    /// checker, which assert the canonical `(0, 0)` empty-state repair;
    /// not part of the stable API.
    #[doc(hidden)]
    pub fn raw_state(&self) -> (u32, u32, Age) {
        (
            self.bot.load(Ordering::Relaxed),
            self.public_bot.load(Ordering::Relaxed),
            self.age.load(Ordering::Relaxed),
        )
    }

    #[cfg(test)]
    pub(crate) fn raw_indices(&self) -> (u32, u32, Age) {
        self.raw_state()
    }

    /// Free rings retired by growth.
    ///
    /// # Safety
    /// Callable only at quiescence: no thread may still hold a buffer
    /// captured before the grow that retired it (the pool calls this after
    /// the run-close `active` handshake).
    pub(crate) unsafe fn release_retired(&self) -> usize {
        self.ring.release_retired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(n: usize) -> *mut Job {
        n as *mut Job // opaque non-null cookie; never dereferenced here
    }

    #[test]
    fn double2int_matches_round_to_nearest_even() {
        assert_eq!(double2int(0.0), 0);
        assert_eq!(double2int(1.0), 1);
        assert_eq!(double2int(1.49), 1);
        assert_eq!(double2int(1.5), 2); // ties to even
        assert_eq!(double2int(2.5), 2); // ties to even
        assert_eq!(double2int(3.5), 4);
        assert_eq!(double2int(1234567.4), 1234567);
        for r in 0..1000u32 {
            let x = r as f64 / 2.0;
            let expected = {
                // round-half-to-even reference
                let fl = x.floor();
                if x - fl == 0.5 {
                    if (fl as i64) % 2 == 0 {
                        fl as i32
                    } else {
                        fl as i32 + 1
                    }
                } else {
                    x.round() as i32
                }
            };
            assert_eq!(double2int(x), expected, "r = {r}");
        }
    }

    #[test]
    fn push_pop_lifo_private() {
        let d = SplitDeque::new(16);
        for i in 1..=5 {
            d.push_bottom(job(i));
        }
        for i in (1..=5).rev() {
            assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(i)));
        }
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), None);
        assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), None);
    }

    #[test]
    fn steal_requires_exposure() {
        let d = SplitDeque::new(16);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        // Nothing public yet: thief sees PRIVATE_WORK.
        assert_eq!(d.pop_top(), Steal::PrivateWork);
        assert_eq!(d.update_public_bottom(ExposurePolicy::One), 1);
        // Thieves steal from the top: oldest task first.
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        assert_eq!(d.pop_top(), Steal::PrivateWork);
        // Owner still holds task 2 privately.
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(2)));
        assert_eq!(d.pop_top(), Steal::Empty);
    }

    #[test]
    fn owner_reclaims_exposed_work_via_public_pop() {
        let d = SplitDeque::new(16);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        d.update_public_bottom(ExposurePolicy::One);
        d.update_public_bottom(ExposurePolicy::One);
        // All work public: private pop fails, public pop succeeds
        // bottom-first (task 2 then task 1).
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), None);
        assert_eq!(d.pop_public_bottom(), Some(job(2)));
        assert_eq!(d.pop_public_bottom(), Some(job(1)));
        assert_eq!(d.pop_public_bottom(), None);
        let (bot, pb, age) = d.raw_indices();
        assert_eq!((bot, pb), (0, 0));
        assert_eq!(age.top, 0);
        assert!(age.tag >= 1, "reset path bumps the ABA tag");
    }

    #[test]
    fn conservative_exposure_keeps_last_task_private() {
        let d = SplitDeque::new(16);
        d.push_bottom(job(1));
        assert_eq!(d.update_public_bottom(ExposurePolicy::Conservative), 0);
        d.push_bottom(job(2));
        assert_eq!(d.update_public_bottom(ExposurePolicy::Conservative), 1);
        // Only one private task left now: no further exposure.
        assert_eq!(d.update_public_bottom(ExposurePolicy::Conservative), 0);
        assert_eq!(d.private_len(), 1);
        assert_eq!(d.public_len(), 1);
    }

    #[test]
    fn half_exposure_amounts() {
        let d = SplitDeque::new(64);
        // r = 1 → expose 1.
        d.push_bottom(job(1));
        assert_eq!(d.update_public_bottom(ExposurePolicy::Half), 1);
        // r = 2 → expose 1.
        d.push_bottom(job(2));
        d.push_bottom(job(3));
        assert_eq!(d.update_public_bottom(ExposurePolicy::Half), 1);
        // r = 7 → round(3.5) = 4.
        for i in 4..=9 {
            d.push_bottom(job(i));
        }
        assert_eq!(d.private_len(), 7);
        assert_eq!(d.update_public_bottom(ExposurePolicy::Half), 4);
        // r = 3 → round(1.5) = 2 (ties to even).
        assert_eq!(d.private_len(), 3);
        assert_eq!(d.update_public_bottom(ExposurePolicy::Half), 2);
    }

    #[test]
    fn signal_safe_pop_with_exposure_interleaving() {
        // Reproduce the §4 race resolution: one private task, exposure
        // "arrives" before the owner's comparison.
        let d = SplitDeque::new(16);
        d.push_bottom(job(1));
        // Handler exposes the only task.
        assert_eq!(d.update_public_bottom(ExposurePolicy::One), 1);
        // Owner's signal-safe pop must NOT return the now-public task...
        assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), None);
        // ...but pop_public_bottom retrieves it and repairs the indices.
        assert_eq!(d.pop_public_bottom(), Some(job(1)));
        assert_eq!(d.pop_public_bottom(), None);
        let (bot, pb, _) = d.raw_indices();
        assert_eq!((bot, pb), (0, 0));
    }

    #[test]
    fn empty_deque_signal_safe_pop_does_not_underflow() {
        let d = SplitDeque::new(4);
        assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), None);
        assert_eq!(d.pop_public_bottom(), None);
        // Deque stays usable.
        d.push_bottom(job(9));
        assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), Some(job(9)));
    }

    #[test]
    fn pop_public_bottom_repairs_bot_after_signal_safe_miss() {
        // SignalSafe pop decrements bot even when it returns None; the §4
        // modification makes pop_public_bottom reset bot when public_bot==0.
        let d = SplitDeque::new(16);
        d.push_bottom(job(1));
        d.update_public_bottom(ExposurePolicy::One);
        // Thief steals the exposed task.
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        // Owner pops: private empty (bot decremented to 0 by the miss path
        // or by the compare), then public pop resets cleanly.
        assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), None);
        assert_eq!(d.pop_public_bottom(), None);
        let (bot, pb, _) = d.raw_indices();
        assert_eq!((bot, pb), (0, 0));
        d.push_bottom(job(2));
        assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), Some(job(2)));
    }

    #[test]
    fn batch_steal_takes_half_of_public_rounded_up() {
        let d = SplitDeque::new(32);
        for i in 1..=8 {
            d.push_bottom(job(i));
        }
        // Expose all 8, then batch-steal: ⌈8/2⌉ = 4 tasks, one CAS.
        assert_eq!(d.expose_all(), 8);
        let mut extras = Vec::new();
        assert_eq!(
            d.pop_top_batch(&mut extras, STEAL_BATCH_MAX - 1),
            Steal::Ok(job(1))
        );
        // Extras come out in top-to-bottom (oldest-first) order.
        assert_eq!(extras, vec![job(2), job(3), job(4)]);
        assert_eq!(d.public_len(), 4, "surplus stays immediately re-stealable");
        // The remaining half is still stealable through the scalar path.
        assert_eq!(d.pop_top(), Steal::Ok(job(5)));
    }

    #[test]
    fn batch_steal_with_zero_budget_is_the_scalar_steal() {
        let d = SplitDeque::new(16);
        for i in 1..=4 {
            d.push_bottom(job(i));
        }
        d.expose_all();
        let mut extras = Vec::new();
        assert_eq!(d.pop_top_batch(&mut extras, 0), Steal::Ok(job(1)));
        assert!(extras.is_empty());
        assert_eq!(d.public_len(), 3);
    }

    #[test]
    fn batch_steal_single_public_task_and_empty_outcomes() {
        let d = SplitDeque::new(16);
        let mut extras = Vec::new();
        assert_eq!(d.pop_top_batch(&mut extras, 8), Steal::Empty);
        d.push_bottom(job(1));
        assert_eq!(d.pop_top_batch(&mut extras, 8), Steal::PrivateWork);
        d.update_public_bottom(ExposurePolicy::One);
        assert_eq!(d.pop_top_batch(&mut extras, 8), Steal::Ok(job(1)));
        assert!(extras.is_empty(), "a lone public task never batches");
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), None);
    }

    #[test]
    fn batch_steal_across_index_wrap() {
        let d = SplitDeque::new(4);
        d.set_start_index(u32::MAX - 2);
        for i in 1..=8 {
            d.push_bottom(job(i));
        }
        assert_eq!(d.expose_all(), 8);
        // The take range [top, top+4) straddles the u32 boundary.
        let mut extras = Vec::new();
        assert_eq!(d.pop_top_batch(&mut extras, 8), Steal::Ok(job(1)));
        assert_eq!(extras, vec![job(2), job(3), job(4)]);
        assert_eq!(d.public_len(), 4);
        for i in 5..=8 {
            assert_eq!(d.pop_public_bottom(), Some(job(8 + 5 - i)));
        }
    }

    #[test]
    fn batch_steal_caps_at_steal_batch_max() {
        let d = SplitDeque::new(64);
        for i in 1..=60 {
            d.push_bottom(job(i));
        }
        assert_eq!(d.expose_all(), 60);
        // ⌈60/2⌉ = 30 > STEAL_BATCH_MAX: the take is clamped to 16 total.
        let mut extras = Vec::new();
        assert_eq!(d.pop_top_batch(&mut extras, usize::MAX), Steal::Ok(job(1)));
        assert_eq!(extras.len(), STEAL_BATCH_MAX - 1);
        assert_eq!(d.public_len(), 60 - STEAL_BATCH_MAX as u32);
    }

    #[test]
    fn steal_race_on_last_public_task_has_single_winner() {
        // Owner and a simulated thief race for the single public task; the
        // CAS protocol must hand it to exactly one of them.
        for owner_first in [false, true] {
            let d = SplitDeque::new(16);
            d.push_bottom(job(7));
            d.update_public_bottom(ExposurePolicy::One);
            if owner_first {
                assert_eq!(d.pop_public_bottom(), Some(job(7)));
                assert!(matches!(d.pop_top(), Steal::Empty | Steal::Abort));
            } else {
                assert_eq!(d.pop_top(), Steal::Ok(job(7)));
                assert_eq!(d.pop_public_bottom(), None);
            }
        }
    }

    #[test]
    fn expose_all_publishes_entire_private_region() {
        let d = SplitDeque::new(16);
        for i in 1..=5 {
            d.push_bottom(job(i));
        }
        assert_eq!(d.update_public_bottom(ExposurePolicy::One), 1);
        // Dying-owner handoff: everything still private becomes stealable.
        assert_eq!(d.expose_all(), 4);
        assert_eq!(d.private_len(), 0);
        assert_eq!(d.public_len(), 5);
        for i in 1..=5 {
            assert_eq!(d.pop_top(), Steal::Ok(job(i)));
        }
        assert_eq!(d.pop_top(), Steal::Empty);
        // Idempotent on an empty deque.
        assert_eq!(d.expose_all(), 0);
    }

    #[test]
    fn reset_for_respawn_restores_canonical_state() {
        let d = SplitDeque::new(16);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        d.update_public_bottom(ExposurePolicy::One);
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        let tag_before = d.raw_state().2.tag;
        d.reset_for_respawn();
        let (bot, pb, age) = d.raw_state();
        assert_eq!((bot, pb, age.top), (0, 0, 0));
        assert!(
            age.tag > tag_before,
            "respawn reset must open a new tag era"
        );
        // The slot is fully reusable by the replacement owner.
        d.push_bottom(job(3));
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(3)));
    }

    #[test]
    fn push_past_capacity_grows_the_ring() {
        let d = SplitDeque::new(2);
        assert_eq!(d.capacity(), 2);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        // The old fixed array rejected this push; the ring doubles instead.
        d.push_bottom(job(3));
        assert_eq!(d.capacity(), 4);
        assert_eq!(d.generation(), 1);
        for i in (1..=3).rev() {
            assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(i)));
        }
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), None);
    }

    #[test]
    fn growth_preserves_live_range_across_many_doublings() {
        let d = SplitDeque::new(4);
        for i in 1..=100 {
            d.push_bottom(job(i));
        }
        assert_eq!(d.capacity(), 128);
        assert_eq!(d.generation(), 5, "4 -> 8 -> 16 -> 32 -> 64 -> 128");
        for i in (1..=100).rev() {
            assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(i)));
        }
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), None);
    }

    #[test]
    fn growth_keeps_public_part_stealable() {
        // Expose tasks, then grow: the copied ring must keep the public
        // range intact for thieves and the owner's public pop.
        let d = SplitDeque::new(2);
        d.push_bottom(job(1));
        d.push_bottom(job(2));
        assert_eq!(d.update_public_bottom(ExposurePolicy::One), 1);
        d.push_bottom(job(3)); // grows 2 -> 4
        d.push_bottom(job(4));
        d.push_bottom(job(5)); // grows 4 -> 8
        assert_eq!(d.generation(), 2);
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(5)));
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(4)));
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(3)));
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(2)));
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), None);
        assert_eq!(d.pop_top(), Steal::Empty);
    }

    #[test]
    fn ring_slots_recycle_after_reset_without_growing() {
        // Steals + resets advance the absolute indices; the ring must
        // recycle physical slots instead of growing.
        let d = SplitDeque::new(4);
        for round in 0..16 {
            d.push_bottom(job(round * 2 + 1));
            d.push_bottom(job(round * 2 + 2));
            d.update_public_bottom(ExposurePolicy::One);
            assert!(matches!(d.pop_top(), Steal::Ok(_)));
            assert!(d.pop_bottom(PopBottomMode::SignalSafe).is_some());
            assert!(d.pop_bottom(PopBottomMode::SignalSafe).is_none());
            assert!(d.pop_public_bottom().is_none()); // canonical reset
        }
        assert_eq!(d.generation(), 0, "steady-state reuse must not grow");
        assert_eq!(d.capacity(), 4);
    }

    #[test]
    fn wraparound_expose_steal_pop_and_grow() {
        // Start the era 8 slots below the u32 boundary and drive every
        // protocol operation across the wrap: growth, exposure (the new
        // public_bot lands exactly on 0), steals, SignalSafe pops, and the
        // owner's public-bottom pops with a wrapped decrement.
        let d = SplitDeque::new(4);
        let start = u32::MAX - 7;
        d.set_start_index(start);

        for i in 1..=16 {
            d.push_bottom(job(i)); // grows 4 -> 8 -> 16 across the wrap
        }
        assert_eq!(d.capacity(), 16);
        assert_eq!(d.generation(), 2);
        let (bot, pb, _) = d.raw_indices();
        assert_eq!(bot, start.wrapping_add(16)); // == 8, numerically < pb
        assert_eq!(pb, start);
        assert!(bot < pb, "raw indices must be inverted across the wrap");
        assert_eq!(d.private_len(), 16);
        assert_eq!(d.public_len(), 0);
        assert!(!d.is_empty());
        assert!(d.has_two_tasks());
        assert_eq!(d.pop_top(), Steal::PrivateWork);

        // Half policy: r = 16, expose 8 — public_bot wraps to exactly 0.
        assert_eq!(d.update_public_bottom(ExposurePolicy::Half), 8);
        assert_eq!(d.raw_indices().1, 0);
        assert_eq!(d.public_len(), 8);

        // Thief steals the two oldest tasks across the top end.
        assert_eq!(d.pop_top(), Steal::Ok(job(1)));
        assert_eq!(d.pop_top(), Steal::Ok(job(2)));

        // Owner drains the private part (indices 0..8 post-wrap).
        for i in (9..=16).rev() {
            assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), Some(job(i)));
        }
        assert_eq!(d.pop_bottom(PopBottomMode::SignalSafe), None);

        // Public pops decrement public_bot back across the boundary
        // (0 -> u32::MAX -> ...), ending in the canonical reset.
        for i in (3..=8).rev() {
            assert_eq!(d.pop_public_bottom(), Some(job(i)));
        }
        assert_eq!(d.pop_public_bottom(), None);
        let (bot, pb, age) = d.raw_indices();
        assert_eq!((bot, pb, age.top), (0, 0, 0));

        // The re-anchored deque is fully usable in the fresh era.
        d.push_bottom(job(99));
        assert_eq!(d.pop_bottom(PopBottomMode::Standard), Some(job(99)));
    }

    #[test]
    fn wraparound_concurrent_stress_no_loss_no_duplication() {
        // The concurrent stress, but with the era anchored just below the
        // u32 boundary and a small initial ring so growth, exposure, steals,
        // and pops all race across the wrap.
        use std::collections::HashSet;
        use std::sync::atomic::AtomicBool;
        use std::sync::Mutex;

        const N: usize = 2000;
        let d = SplitDeque::new(8);
        d.set_start_index(u32::MAX - 500);
        let taken = Mutex::new(Vec::<usize>::new());
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            _ => std::hint::spin_loop(),
                        }
                    }
                    loop {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            Steal::Abort => continue,
                            _ => break,
                        }
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            let mut local = Vec::new();
            for i in 1..=N {
                d.push_bottom(job(i));
                if i % 3 == 0 {
                    d.update_public_bottom(ExposurePolicy::Half);
                }
                if i % 5 == 0 {
                    if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                        local.push(j as usize);
                    } else if let Some(j) = d.pop_public_bottom() {
                        local.push(j as usize);
                    }
                }
            }
            loop {
                if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                    local.push(j as usize);
                } else if let Some(j) = d.pop_public_bottom() {
                    local.push(j as usize);
                } else {
                    break;
                }
            }
            done.store(true, Ordering::Release);
            taken.lock().unwrap().extend(local);
        });

        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "a task was executed twice");
        assert_eq!(set.len(), N, "a task was lost");
    }

    #[test]
    fn concurrent_steal_stress_no_loss_no_duplication() {
        // One owner exposing and popping, three thieves stealing; every
        // pushed cookie must be taken exactly once.
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicBool, AtomicUsize};
        use std::sync::Mutex;

        const N: usize = 2000;
        let d = SplitDeque::new(N + 1);
        let taken = Mutex::new(Vec::<usize>::new());
        let stolen_count = AtomicUsize::new(0);
        let done = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            _ => std::hint::spin_loop(),
                        }
                    }
                    // Final drain.
                    loop {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            Steal::Abort => continue,
                            _ => break,
                        }
                    }
                    stolen_count.fetch_add(local.len(), Ordering::Relaxed);
                    taken.lock().unwrap().extend(local);
                });
            }
            // Owner thread.
            let mut local = Vec::new();
            for i in 1..=N {
                d.push_bottom(job(i));
                if i % 3 == 0 {
                    d.update_public_bottom(ExposurePolicy::One);
                }
                if i % 5 == 0 {
                    if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                        local.push(j as usize);
                    } else if let Some(j) = d.pop_public_bottom() {
                        local.push(j as usize);
                    }
                }
            }
            // Drain everything the owner still holds.
            loop {
                if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                    local.push(j as usize);
                } else if let Some(j) = d.pop_public_bottom() {
                    local.push(j as usize);
                } else {
                    break;
                }
            }
            done.store(true, Ordering::Release);
            taken.lock().unwrap().extend(local);
        });

        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "a task was executed twice");
        assert_eq!(set.len(), N, "a task was lost");
        assert!(set.iter().all(|&v| (1..=N).contains(&v)));
    }
}
