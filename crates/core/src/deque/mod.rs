//! Work-stealing deques: the paper's split deque and the ABP/Parlay-style
//! fully-concurrent deque used as the WS baseline.
//!
//! Both deques store thin `*mut Job` pointers in a generation-tagged
//! growable ring buffer ([`ring`]; the paper's fixed
//! `array<alligned_task_t, size> deq` is the initial generation) and share
//! the packed `{tag, top}` [`crate::age::Age`] word at their top end.
//!
//! Synchronization accounting: every seq-cst fence goes through
//! [`lcws_metrics::fence_seq_cst`] and every CAS is recorded with
//! [`lcws_metrics::record_cas`], placed at exactly the program points of the
//! paper's Listings — this is what regenerates Figures 3 and 8. Ring growth
//! adds nothing to those counts: the fast path pays one extra atomic
//! pointer load per operation, never a fence or CAS.

mod abp;
pub mod ring;
mod split;

pub use abp::AbpDeque;
pub use ring::MAX_DEQUE_CAPACITY;
pub use split::{double2int, ExposurePolicy, PopBottomMode, SplitDeque, STEAL_BATCH_MAX};

use crate::job::Job;

/// Wrap-safe signed distance `a - b` between two absolute ring indices.
///
/// Absolute `u32` indices are monotone within an era but wrap modulo 2³²,
/// so direct `<`/`>` comparisons are wrong once a long-lived deque (a
/// `serve`-mode pool that never drains) pushes through the wrap. The
/// two's-complement reinterpretation is exact whenever the true distance
/// lies in `[-2³¹, 2³¹)` — guaranteed here because every live extent the
/// protocols compare (`bot - top`, `bot - public_bot`, `public_bot - top`)
/// is bounded by [`MAX_DEQUE_CAPACITY`] = 2³⁰, and the transient
/// negatives (the §4 signal-safe decrement-then-compare) are `-1`.
#[inline(always)]
pub(crate) fn sdist(a: u32, b: u32) -> i32 {
    a.wrapping_sub(b) as i32
}

/// Error of a fallible bottom push. With growable rings this is nearly
/// extinct: it arises only when the `faultpoints` layer forces the
/// `PushBottom` or `DequeResize` outcome, or when the ring already sits at
/// [`MAX_DEQUE_CAPACITY`]. The task was **not** enqueued; the caller still
/// owns it and is expected to degrade gracefully (the scheduler runs it
/// inline on the owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeFull;

impl std::fmt::Display for DequeFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deque is full")
    }
}

impl std::error::Error for DequeFull {}

/// Outcome of a thief's `pop_top` attempt on the **split** deque.
///
/// The ABP deque has its own outcome type ([`AbpSteal`]) without the
/// `PrivateWork` sentinel: a fully-concurrent deque has no private part, so
/// the type system — not a dead match arm — rules the state out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// A task was stolen.
    Ok(*mut Job),
    /// The public part holds no work at all.
    Empty,
    /// The public part is empty but the victim has private work — the thief
    /// should request exposure (set the `targeted` flag / send a signal).
    /// This is the paper's `PRIVATE_WORK` sentinel.
    PrivateWork,
    /// The CAS race was lost to another taker; retry elsewhere. This is the
    /// paper's `ABORT` sentinel.
    Abort,
}

impl Steal {
    /// The stolen job, if any.
    #[inline]
    pub fn success(self) -> Option<*mut Job> {
        match self {
            Steal::Ok(j) => Some(j),
            _ => None,
        }
    }
}

/// Outcome of a thief's `pop_top` attempt on the **ABP** deque, which can
/// never report `PrivateWork` — every task in a fully-concurrent deque is
/// public.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbpSteal {
    /// A task was stolen.
    Ok(*mut Job),
    /// The deque holds no work.
    Empty,
    /// The CAS race was lost to another taker; retry elsewhere.
    Abort,
}

impl AbpSteal {
    /// The stolen job, if any.
    #[inline]
    pub fn success(self) -> Option<*mut Job> {
        match self {
            AbpSteal::Ok(j) => Some(j),
            _ => None,
        }
    }
}

/// Default *initial* number of slots per worker deque.
///
/// Fork-join recursion depth bounds the live extent for `join`-structured
/// programs (depth ≤ log2 n), while `scope` spawns can fill it linearly;
/// either way the ring doubles itself on demand, so the initial capacity
/// only tunes how many early doublings a deep workload pays.
/// [`crate::PoolBuilder::deque_capacity`] sets it per pool.
pub const DEFAULT_DEQUE_CAPACITY: usize = 1 << 13;
