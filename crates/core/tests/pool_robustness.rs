//! Robustness tests for the pool lifecycle: concurrent pools, capacity
//! failures, reuse after panics, and ambient-API fallbacks.

use std::sync::atomic::{AtomicU64, Ordering};

use lcws_core::{join, par_for_grain, scope, PoolBuilder, ThreadPool, Variant};

#[test]
fn two_pools_run_concurrently_without_crosstalk() {
    // Two signal-based pools on different OS threads: SIGUSR1 traffic from
    // one must never corrupt the other (handler contexts are per-thread).
    let t1 = std::thread::spawn(|| {
        let pool = ThreadPool::new(Variant::Signal, 3);
        let mut acc = 0u64;
        for round in 0..10 {
            let sum = AtomicU64::new(0);
            pool.run(|| {
                par_for_grain(0..20_000, 32, |i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
            acc += sum.load(Ordering::Relaxed) + round;
        }
        acc
    });
    let t2 = std::thread::spawn(|| {
        let pool = ThreadPool::new(Variant::SignalHalf, 3);
        let mut acc = 0u64;
        for round in 0..10 {
            let sum = AtomicU64::new(0);
            pool.run(|| {
                par_for_grain(0..20_000, 32, |i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
            acc += sum.load(Ordering::Relaxed) + round;
        }
        acc
    });
    let expected: u64 = (0..20_000u64).sum();
    let expected_total = 10 * expected + 45;
    assert_eq!(t1.join().unwrap(), expected_total);
    assert_eq!(t2.join().unwrap(), expected_total);
}

#[test]
fn sequential_runs_from_different_caller_threads() {
    // The pool's worker-0 role migrates with the caller.
    let pool = std::sync::Arc::new(ThreadPool::new(Variant::Signal, 2));
    for k in 0..4u64 {
        let p = std::sync::Arc::clone(&pool);
        let out = std::thread::spawn(move || p.run(move || k * 2))
            .join()
            .unwrap();
        assert_eq!(out, k * 2);
    }
}

#[test]
fn deque_overflow_degrades_to_inline_execution() {
    // A full deque no longer aborts the run: the spawn that cannot be
    // queued executes inline on the spawner (a valid schedule for scope
    // tasks), counted in `overflow_inline`.
    let pool = PoolBuilder::new(Variant::UsLcws)
        .threads(2)
        .deque_capacity(8)
        .build();
    let ran = AtomicU64::new(0);
    let (_, m) = pool.run_measured(|| {
        // Spawn far more scope tasks than the deque can hold.
        scope(|s| {
            for _ in 0..1000 {
                let ran = &ran;
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(
        ran.load(Ordering::Relaxed),
        1000,
        "every spawned task runs exactly once, queued or inline"
    );
    assert!(
        m.overflow_inline() > 0,
        "a capacity-8 deque must overflow under 1000 eager spawns"
    );
    // The pool stays fully usable after degrading.
    assert_eq!(pool.run(|| 7), 7);
}

#[test]
fn deep_unbalanced_fork_tree_survives_tiny_deque() {
    // A left-spine fork tree of depth 20_000 on a capacity-8 deque: almost
    // every `join` finds the deque full and falls back to sequential
    // execution of both arms. The run must complete (no panic, no lost
    // work), which needs a caller stack big enough for the depth.
    fn spine(depth: u64) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = join(|| spine(depth - 1), || 1u64);
        a + b
    }
    const DEPTH: u64 = 20_000;
    let t = std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            let pool = PoolBuilder::new(Variant::Signal)
                .threads(4)
                .deque_capacity(8)
                .build();
            let (sum, m) = pool.run_measured(|| spine(DEPTH));
            (sum, m)
        })
        .expect("spawn deep-recursion thread");
    let (sum, m) = t.join().expect("deep fork tree must not panic");
    assert_eq!(sum, DEPTH + 1);
    assert!(
        m.overflow_inline() > 0,
        "depth {DEPTH} on capacity 8 must hit the inline fallback: {m}"
    );
}

#[test]
fn overflow_fallback_sustains_deep_recursion_on_capacity_4() {
    // Acceptance case from the fault-injection issue: a `deque_capacity(4)`
    // pool survives recursion depth >= 10^4 purely via the inline-execution
    // fallback, with the degradation visible in metrics.
    fn tree(depth: u64) -> u64 {
        if depth == 0 {
            return 1;
        }
        // Unbalanced: one deep arm, one shallow arm per level.
        let (a, b) = join(|| tree(depth - 1), || tree(depth.min(2) - 1));
        a + b + 1
    }
    const DEPTH: u64 = 10_000;
    let t = std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            let pool = PoolBuilder::new(Variant::UsLcws)
                .threads(2)
                .deque_capacity(4)
                .build();
            pool.run_measured(|| tree(DEPTH))
        })
        .expect("spawn deep-recursion thread");
    let (sum, m) = t.join().expect("capacity-4 pool must survive depth 10^4");
    assert!(sum > DEPTH, "tree result grows with depth: {sum}");
    assert!(
        m.overflow_inline() > 0,
        "capacity 4 at depth {DEPTH} must record inline fallbacks: {m}"
    );
}

#[test]
fn nested_scopes_and_joins_compose() {
    let pool = ThreadPool::new(Variant::SignalConservative, 4);
    let total = AtomicU64::new(0);
    pool.run(|| {
        scope(|outer| {
            for i in 0..8u64 {
                let total = &total;
                outer.spawn(move || {
                    let (a, b) = join(
                        || {
                            let mut acc = 0;
                            scope(|inner| {
                                let acc_ref = &mut acc;
                                inner.spawn(move || *acc_ref = i);
                            });
                            acc
                        },
                        || i * 10,
                    );
                    total.fetch_add(a + b, Ordering::Relaxed);
                });
            }
        });
    });
    let expected: u64 = (0..8).map(|i| i + i * 10).sum();
    assert_eq!(total.load(Ordering::Relaxed), expected);
}

#[test]
fn ambient_api_usable_without_pool_after_pool_use() {
    let pool = ThreadPool::new(Variant::Ws, 2);
    assert_eq!(pool.run(lcws_core::num_workers), 2);
    // Back outside: sequential fallback.
    assert_eq!(lcws_core::num_workers(), 1);
    let (a, b) = join(|| 1, || 2);
    assert_eq!(a + b, 3);
}

#[test]
fn variant_parse_round_trips_through_display() {
    for v in Variant::ALL {
        let s = format!("{v}");
        assert_eq!(s.parse::<Variant>().unwrap(), v);
    }
    assert!("".parse::<Variant>().is_err());
    let err = "nonsense".parse::<Variant>().unwrap_err();
    assert!(format!("{err}").contains("nonsense"));
}

#[test]
fn metrics_task_accounting_counts_forked_jobs() {
    let pool = ThreadPool::new(Variant::Signal, 2);
    let (_, m) = pool.run_measured(|| {
        par_for_grain(0..1024, 8, |_| {});
    });
    // 1024/8 = 128 leaves → 127 forks; each fork pushes one job. Every
    // pushed job is executed exactly once (inline, reclaimed, or stolen).
    assert!(m.get(lcws_core::Counter::Push) >= 127);
    assert!(m.tasks_run() <= m.get(lcws_core::Counter::Push));
}
