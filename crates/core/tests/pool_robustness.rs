//! Robustness tests for the pool lifecycle: concurrent pools, capacity
//! failures, reuse after panics, and ambient-API fallbacks.

use std::sync::atomic::{AtomicU64, Ordering};

use lcws_core::{join, par_for_grain, scope, PoolBuilder, ThreadPool, Variant};

#[test]
fn two_pools_run_concurrently_without_crosstalk() {
    // Two signal-based pools on different OS threads: SIGUSR1 traffic from
    // one must never corrupt the other (handler contexts are per-thread).
    let t1 = std::thread::spawn(|| {
        let pool = ThreadPool::new(Variant::Signal, 3);
        let mut acc = 0u64;
        for round in 0..10 {
            let sum = AtomicU64::new(0);
            pool.run(|| {
                par_for_grain(0..20_000, 32, |i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
            acc += sum.load(Ordering::Relaxed) + round;
        }
        acc
    });
    let t2 = std::thread::spawn(|| {
        let pool = ThreadPool::new(Variant::SignalHalf, 3);
        let mut acc = 0u64;
        for round in 0..10 {
            let sum = AtomicU64::new(0);
            pool.run(|| {
                par_for_grain(0..20_000, 32, |i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
            acc += sum.load(Ordering::Relaxed) + round;
        }
        acc
    });
    let expected: u64 = (0..20_000u64).sum();
    let expected_total = 10 * expected + 45;
    assert_eq!(t1.join().unwrap(), expected_total);
    assert_eq!(t2.join().unwrap(), expected_total);
}

#[test]
fn sequential_runs_from_different_caller_threads() {
    // The pool's worker-0 role migrates with the caller.
    let pool = std::sync::Arc::new(ThreadPool::new(Variant::Signal, 2));
    for k in 0..4u64 {
        let p = std::sync::Arc::clone(&pool);
        let out = std::thread::spawn(move || p.run(move || k * 2))
            .join()
            .unwrap();
        assert_eq!(out, k * 2);
    }
}

#[test]
fn deque_growth_absorbs_spawn_bursts_without_inline_fallback() {
    // A burst of spawns past the initial capacity no longer hits the
    // inline-execution fallback: `push_bottom` doubles the ring on demand,
    // so every task is queued (and stealable) and `overflow_inline` stays
    // zero while `deque_grows` records the doublings.
    let pool = PoolBuilder::new(Variant::UsLcws)
        .threads(2)
        .deque_capacity(8)
        .build();
    let ran = AtomicU64::new(0);
    let (_, m) = pool.run_measured(|| {
        // Spawn far more scope tasks than the initial ring can hold.
        scope(|s| {
            for _ in 0..1000 {
                let ran = &ran;
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(
        ran.load(Ordering::Relaxed),
        1000,
        "every spawned task runs exactly once"
    );
    assert_eq!(
        m.overflow_inline(),
        0,
        "growable rings never overflow under plain spawn pressure: {m}"
    );
    assert!(
        m.deque_grows() > 0,
        "1000 eager spawns from capacity 8 must double the ring: {m}"
    );
    // The pool stays fully usable afterwards.
    assert_eq!(pool.run(|| 7), 7);
}

#[test]
fn deep_unbalanced_fork_tree_grows_instead_of_degrading() {
    // A left-spine fork tree of depth 20_000 on an initial capacity-8
    // deque: before growable rings almost every `join` found the deque
    // full and serialized both arms; now the ring doubles and every level
    // queues its second arm normally. The run still needs a caller stack
    // big enough for the recursion depth.
    fn spine(depth: u64) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = join(|| spine(depth - 1), || 1u64);
        a + b
    }
    const DEPTH: u64 = 20_000;
    let t = std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            let pool = PoolBuilder::new(Variant::Signal)
                .threads(4)
                .deque_capacity(8)
                .build();
            let (sum, m) = pool.run_measured(|| spine(DEPTH));
            (sum, m)
        })
        .expect("spawn deep-recursion thread");
    let (sum, m) = t.join().expect("deep fork tree must not panic");
    assert_eq!(sum, DEPTH + 1);
    assert_eq!(
        m.overflow_inline(),
        0,
        "depth {DEPTH} on a growable ring must never hit the inline fallback: {m}"
    );
    assert!(
        m.deque_grows() > 0,
        "depth {DEPTH} from capacity 8 must double the ring: {m}"
    );
}

#[test]
fn join_recursion_at_depth_100k_grows_from_capacity_4() {
    // Join-spine variant of the acceptance case: recursion depth 10^5 from
    // `deque_capacity(4)`, bounded only by the caller's stack (each level
    // holds a `join` frame). The deque itself is bounded by ring growth —
    // zero inline fallbacks, with the doublings recorded in metrics.
    fn tree(depth: u64) -> u64 {
        if depth == 0 {
            return 1;
        }
        // Unbalanced: one deep arm, one shallow arm per level.
        let (a, b) = join(|| tree(depth - 1), || tree(depth.min(2) - 1));
        a + b + 1
    }
    const DEPTH: u64 = 100_000;
    let t = std::thread::Builder::new()
        .stack_size(512 << 20)
        .spawn(|| {
            let pool = PoolBuilder::new(Variant::UsLcws)
                .threads(2)
                .deque_capacity(4)
                .build();
            pool.run_measured(|| tree(DEPTH))
        })
        .expect("spawn deep-recursion thread");
    let (sum, m) = t.join().expect("capacity-4 pool must survive depth 10^5");
    assert!(sum > DEPTH, "tree result grows with depth: {sum}");
    assert_eq!(
        m.overflow_inline(),
        0,
        "capacity 4 at depth {DEPTH} must grow, not degrade: {m}"
    );
    assert!(
        m.deque_grows() > 0,
        "capacity 4 at depth {DEPTH} must record ring doublings: {m}"
    );
}

#[test]
fn depth_one_million_spawns_from_capacity_4_never_overflow() {
    // The issue's acceptance criterion: deque depth 10^6 starting from
    // capacity 4 completes with `overflow_inline == 0`. Scope spawns reach
    // that depth without deep native recursion: with a single worker the
    // scope body queues all 10^6 tasks before any is popped, so the ring
    // must double from 4 slots to 2^20 (18 grows) while holding every
    // queued task. A second, two-thread run covers the same pressure with
    // concurrent thieves draining mid-growth.
    const SPAWNS: u64 = 1_000_000;
    for threads in [1usize, 2] {
        let pool = PoolBuilder::new(if threads == 1 {
            Variant::Ws
        } else {
            Variant::UsLcws
        })
        .threads(threads)
        .deque_capacity(4)
        .build();
        let ran = AtomicU64::new(0);
        let (_, m) = pool.run_measured(|| {
            scope(|s| {
                for _ in 0..SPAWNS {
                    let ran = &ran;
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), SPAWNS, "threads = {threads}");
        assert_eq!(
            m.overflow_inline(),
            0,
            "threads = {threads}: 10^6 spawns from capacity 4 must never overflow: {m}"
        );
        assert!(
            m.deque_grows() > 0,
            "threads = {threads}: 10^6 spawns from capacity 4 must grow the ring: {m}"
        );
        if threads == 1 {
            // Deterministic with no thieves: depth exactly 10^6 needs
            // capacity 2^20, i.e. 18 doublings from 4.
            assert_eq!(m.deque_grows(), 18, "single-thread growth count: {m}");
        }
    }
}

#[test]
fn nested_scopes_and_joins_compose() {
    let pool = ThreadPool::new(Variant::SignalConservative, 4);
    let total = AtomicU64::new(0);
    pool.run(|| {
        scope(|outer| {
            for i in 0..8u64 {
                let total = &total;
                outer.spawn(move || {
                    let (a, b) = join(
                        || {
                            let mut acc = 0;
                            scope(|inner| {
                                let acc_ref = &mut acc;
                                inner.spawn(move || *acc_ref = i);
                            });
                            acc
                        },
                        || i * 10,
                    );
                    total.fetch_add(a + b, Ordering::Relaxed);
                });
            }
        });
    });
    let expected: u64 = (0..8).map(|i| i + i * 10).sum();
    assert_eq!(total.load(Ordering::Relaxed), expected);
}

#[test]
fn ambient_api_usable_without_pool_after_pool_use() {
    let pool = ThreadPool::new(Variant::Ws, 2);
    assert_eq!(pool.run(lcws_core::num_workers), 2);
    // Back outside: sequential fallback.
    assert_eq!(lcws_core::num_workers(), 1);
    let (a, b) = join(|| 1, || 2);
    assert_eq!(a + b, 3);
}

#[test]
fn variant_parse_round_trips_through_display() {
    for v in Variant::ALL {
        let s = format!("{v}");
        assert_eq!(s.parse::<Variant>().unwrap(), v);
    }
    assert!("".parse::<Variant>().is_err());
    let err = "nonsense".parse::<Variant>().unwrap_err();
    assert!(format!("{err}").contains("nonsense"));
}

#[test]
fn metrics_task_accounting_counts_forked_jobs() {
    let pool = ThreadPool::new(Variant::Signal, 2);
    let (_, m) = pool.run_measured(|| {
        par_for_grain(0..1024, 8, |_| {});
    });
    // 1024/8 = 128 leaves → 127 forks; each fork pushes one job. Every
    // pushed job is executed exactly once (inline, reclaimed, or stolen).
    assert!(m.get(lcws_core::Counter::Push) >= 127);
    assert!(m.tasks_run() <= m.get(lcws_core::Counter::Push));
}
