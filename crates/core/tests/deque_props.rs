//! Property-based model checking of the deque state machines.
//!
//! The deques are driven with arbitrary operation sequences (sequentially —
//! concurrency is covered by the stress tests) and compared step-by-step
//! against simple `VecDeque` reference models:
//!
//! * split deque: private part = owner stack, public part = FIFO towards
//!   thieves, exposure moves the *oldest private* task across the
//!   boundary; `pop_public_bottom` may only be called when the private
//!   part is empty (the scheduler's call contract).
//! * ABP deque: plain deque (owner at the back, thieves at the front).
//!
//! Both model-comparison tests start from initial capacity 4, so ordinary
//! scripts cross several ring doublings — every step-by-step assertion also
//! validates the growth path's copy/publish against the reference.

use std::collections::VecDeque;

use lcws_core::deque::{AbpDeque, AbpSteal, Steal};
use lcws_core::{ExposurePolicy, PopBottomMode, SplitDeque};
use proptest::prelude::*;

type Task = *mut lcws_core::deque::AbpDeque; // opaque cookie type

fn cookie(v: usize) -> *mut lcws_core::Job {
    (v + 1) as *mut lcws_core::Job // +1: never null
}

#[derive(Debug, Clone)]
enum Op {
    Push,
    PopBottom,
    PopPublicBottom,
    Expose(u8),
    StealTop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Push),
        3 => Just(Op::PopBottom),
        1 => Just(Op::PopPublicBottom),
        2 => (0u8..3).prop_map(Op::Expose),
        2 => Just(Op::StealTop),
    ]
}

fn policy_of(code: u8) -> ExposurePolicy {
    match code {
        0 => ExposurePolicy::One,
        1 => ExposurePolicy::Conservative,
        _ => ExposurePolicy::Half,
    }
}

/// Reference model of the split deque.
#[derive(Default)]
struct SplitModel {
    public: VecDeque<usize>,  // front = top (steal side), back = boundary
    private: VecDeque<usize>, // front = oldest (next to expose), back = bottom
}

impl SplitModel {
    fn expose(&mut self, policy: ExposurePolicy) -> u32 {
        let r = self.private.len() as u32;
        let k = match policy {
            ExposurePolicy::One => u32::from(r >= 1),
            ExposurePolicy::Conservative => u32::from(r >= 2),
            ExposurePolicy::Half => {
                if r >= 3 {
                    // round-half-to-even of r/2 — matches double2int: odd r
                    // gives x.5, which rounds up only onto even integers.
                    let half = r / 2;
                    if r % 2 == 1 && half % 2 == 1 {
                        half + 1
                    } else {
                        half
                    }
                } else {
                    u32::from(r >= 1)
                }
            }
        };
        for _ in 0..k {
            let t = self.private.pop_front().unwrap();
            self.public.push_back(t);
        }
        k
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn split_deque_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        signal_safe in any::<bool>(),
    ) {
        let mode = if signal_safe { PopBottomMode::SignalSafe } else { PopBottomMode::Standard };
        let deque = SplitDeque::new(4);
        let mut model = SplitModel::default();
        let mut next = 0usize;
        for op in &ops {
            match op {
                Op::Push => {
                    deque.push_bottom(cookie(next));
                    model.private.push_back(next);
                    next += 1;
                }
                Op::PopBottom => {
                    let got = deque.pop_bottom(mode);
                    let want = model.private.pop_back();
                    prop_assert_eq!(got, want.map(cookie), "pop_bottom mismatch");
                    // SignalSafe pop decrements `bot` on a miss; the
                    // scheduler contract repairs it via pop_public_bottom,
                    // which we invoke exactly as the scheduler does.
                    if got.is_none() {
                        let pub_got = deque.pop_public_bottom();
                        let pub_want = model.public.pop_back();
                        prop_assert_eq!(pub_got, pub_want.map(cookie), "repair pop mismatch");
                    }
                }
                Op::PopPublicBottom => {
                    // Contract: only when the private part is empty.
                    if model.private.is_empty() {
                        let got = deque.pop_public_bottom();
                        let want = model.public.pop_back();
                        prop_assert_eq!(got, want.map(cookie));
                    }
                }
                Op::Expose(code) => {
                    let policy = policy_of(*code);
                    let exposed = deque.update_public_bottom(policy);
                    let want = model.expose(policy);
                    prop_assert_eq!(exposed, want, "exposure count mismatch");
                }
                Op::StealTop => {
                    let got = deque.pop_top();
                    match model.public.pop_front() {
                        Some(t) => prop_assert_eq!(got, Steal::Ok(cookie(t))),
                        None => prop_assert!(
                            matches!(got, Steal::Empty | Steal::PrivateWork),
                            "stole from empty public part: {:?}", got
                        ),
                    }
                }
            }
            // Size invariants hold continuously.
            prop_assert_eq!(deque.public_len() as usize, model.public.len());
        }
        // Drain: every remaining task comes out exactly once, in order.
        while let Some(want) = model.private.pop_back() {
            prop_assert_eq!(deque.pop_bottom(mode), Some(cookie(want)));
        }
        prop_assert_eq!(deque.pop_bottom(mode), None);
        while let Some(want) = model.public.pop_back() {
            prop_assert_eq!(deque.pop_public_bottom(), Some(cookie(want)));
        }
        prop_assert_eq!(deque.pop_public_bottom(), None);
    }

    #[test]
    fn abp_deque_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let deque = AbpDeque::new(4);
        let mut model: VecDeque<usize> = VecDeque::new();
        let mut next = 0usize;
        for op in &ops {
            match op {
                Op::Push | Op::Expose(_) => {
                    deque.push_bottom(cookie(next));
                    model.push_back(next);
                    next += 1;
                }
                Op::PopBottom | Op::PopPublicBottom => {
                    let got = deque.pop_bottom();
                    prop_assert_eq!(got, model.pop_back().map(cookie));
                }
                Op::StealTop => {
                    let got = deque.pop_top();
                    match model.pop_front() {
                        Some(t) => prop_assert_eq!(got, AbpSteal::Ok(cookie(t))),
                        None => prop_assert_eq!(got, AbpSteal::Empty),
                    }
                }
            }
        }
        while let Some(want) = model.pop_back() {
            prop_assert_eq!(deque.pop_bottom(), Some(cookie(want)));
        }
        prop_assert_eq!(deque.pop_bottom(), None);
    }

    #[test]
    fn split_deque_growth_preserves_task_count(
        extra in 24usize..96,
        steal_stride in 4usize..9,
        do_steal in any::<bool>(),
        signal_safe in any::<bool>(),
    ) {
        // The growth contract replacing the old overflow cliff: a push past
        // capacity doubles the ring instead of rejecting the task, so from
        // initial capacity 4 every push succeeds, and 28+ pushes (minus at
        // most a quarter stolen) force at least three doublings. Steals are
        // interspersed so the copy windows start at non-zero `top` values
        // and growth interleaves with a moving public part.
        let mode = if signal_safe { PopBottomMode::SignalSafe } else { PopBottomMode::Standard };
        let deque = SplitDeque::new(4);
        let total = 4 + extra;
        let mut stolen: Vec<usize> = Vec::new();
        for i in 0..total {
            if do_steal && i > 0 && i % steal_stride == 0
                && deque.update_public_bottom(ExposurePolicy::One) == 1
            {
                match deque.pop_top() {
                    Steal::Ok(t) => stolen.push(t as usize - 1),
                    other => prop_assert!(false, "uncontended steal failed: {:?}", other),
                }
            }
            prop_assert!(deque.try_push_bottom(cookie(i)).is_ok(), "push {} rejected", i);
        }
        // ≤ total/4 steals leave a live extent > 16 slots, so the ring must
        // have doubled 4 → 8 → 16 → 32 at minimum.
        prop_assert!(
            deque.generation() >= 3,
            "expected ≥ 3 resizes, generation = {}", deque.generation()
        );
        prop_assert!(deque.capacity() as usize >= total - stolen.len());
        // Drain the owner side exactly as the scheduler acquires.
        let mut drained: Vec<usize> = Vec::new();
        loop {
            if let Some(t) = deque.pop_bottom(mode) {
                drained.push(t as usize - 1);
            } else if let Some(t) = deque.pop_public_bottom() {
                drained.push(t as usize - 1);
            } else {
                break;
            }
        }
        // Accounting across every resize: drained + stolen = exactly the
        // pushed tasks, nothing lost, nothing duplicated.
        let mut all: Vec<usize> = drained;
        all.extend(stolen);
        all.sort_unstable();
        prop_assert_eq!(all, (0..total).collect::<Vec<_>>());
        // After a full drain the deque resets and accepts pushes again.
        prop_assert!(deque.try_push_bottom(cookie(0)).is_ok());
    }

    #[test]
    fn abp_deque_growth_preserves_task_count(
        extra in 24usize..96,
        steal_stride in 4usize..9,
        do_steal in any::<bool>(),
    ) {
        let deque = AbpDeque::new(4);
        let total = 4 + extra;
        let mut stolen: Vec<usize> = Vec::new();
        for i in 0..total {
            if do_steal && i > 0 && i % steal_stride == 0 {
                if let AbpSteal::Ok(t) = deque.pop_top() {
                    stolen.push(t as usize - 1);
                }
            }
            prop_assert!(deque.try_push_bottom(cookie(i)).is_ok(), "push {} rejected", i);
        }
        prop_assert!(
            deque.generation() >= 3,
            "expected ≥ 3 resizes, generation = {}", deque.generation()
        );
        let mut drained: Vec<usize> = Vec::new();
        while let Some(t) = deque.pop_bottom() {
            drained.push(t as usize - 1);
        }
        let mut all = drained;
        all.extend(stolen);
        all.sort_unstable();
        prop_assert_eq!(all, (0..total).collect::<Vec<_>>());
        prop_assert!(deque.try_push_bottom(cookie(0)).is_ok());
    }

    /// Arbitrary interleave scripts of the §4 protocol steps — SignalSafe
    /// `pop_bottom` (with the scheduler's `pop_public_bottom` repair on a
    /// miss), exposures under every policy, owner public pops, and thief
    /// steals — driven over a seeded deque. Global accounting instead of a
    /// step-by-step model: every pushed task is taken exactly once, and a
    /// full drain always lands in the canonical empty state
    /// `(bot, public_bot) = (0, 0)` with `age.top = 0`, leaving the deque
    /// reusable.
    #[test]
    fn interleave_scripts_lose_nothing_and_repair_to_canonical(
        seed in 0usize..12,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let deque = SplitDeque::new(4);
        for i in 0..seed {
            deque.push_bottom(cookie(i));
        }
        let mut next = seed;
        let mut taken: Vec<usize> = Vec::new();
        for op in &ops {
            match op {
                Op::Push => {
                    deque.push_bottom(cookie(next));
                    next += 1;
                }
                Op::PopBottom => {
                    // The scheduler's acquire path: SignalSafe pop, then the
                    // §4 repair/acquire through pop_public_bottom on a miss.
                    if let Some(t) = deque.pop_bottom(PopBottomMode::SignalSafe) {
                        taken.push(t as usize - 1);
                    } else if let Some(t) = deque.pop_public_bottom() {
                        taken.push(t as usize - 1);
                    }
                }
                Op::PopPublicBottom => {
                    // Contract: only when the private part is empty.
                    if deque.private_len() == 0 {
                        if let Some(t) = deque.pop_public_bottom() {
                            taken.push(t as usize - 1);
                        }
                    }
                }
                Op::Expose(code) => {
                    deque.update_public_bottom(policy_of(*code));
                }
                Op::StealTop => {
                    if let Steal::Ok(t) = deque.pop_top() {
                        taken.push(t as usize - 1);
                    }
                }
            }
        }
        // Final drain, again exactly as the scheduler acquires.
        loop {
            if let Some(t) = deque.pop_bottom(PopBottomMode::SignalSafe) {
                taken.push(t as usize - 1);
            } else if let Some(t) = deque.pop_public_bottom() {
                taken.push(t as usize - 1);
            } else {
                break;
            }
        }
        taken.sort_unstable();
        prop_assert_eq!(taken, (0..next).collect::<Vec<_>>(), "task lost or duplicated");
        // Canonical §4 repair: a drained deque always reads (0, 0) indices
        // and a reset top, whatever path emptied it.
        let (bot, public_bot, age) = deque.raw_state();
        prop_assert_eq!((bot, public_bot, age.top), (0, 0, 0));
        // And it is immediately reusable from slot zero.
        prop_assert!(deque.try_push_bottom(cookie(0)).is_ok());
        prop_assert_eq!(deque.pop_bottom(PopBottomMode::SignalSafe), Some(cookie(0)));
    }

    #[test]
    fn double2int_agrees_with_round_over_valid_domain(x in 0.0f64..2_147_483_647.5) {
        // The paper's §4.1.2 ablation claims the bit trick agrees with
        // rounding; precisely, it is IEEE round-to-nearest-even, so it
        // matches `round_ties_even` everywhere in the valid domain and
        // plain `round` (half-away-from-zero) everywhere off the ties.
        let got = lcws_core::double2int(x);
        prop_assert_eq!(got, x.round_ties_even() as i32);
        if x.fract() != 0.5 {
            prop_assert_eq!(got, x.round() as i32);
        }
    }

    #[test]
    fn double2int_rounds_half_to_even(r in 0u32..100_000) {
        let x = r as f64 / 2.0;
        let got = lcws_core::double2int(x);
        let fl = x.floor();
        let expected = if x - fl == 0.5 {
            if (fl as i64) % 2 == 0 { fl as i32 } else { fl as i32 + 1 }
        } else {
            x.round() as i32
        };
        prop_assert_eq!(got, expected);
    }
}

#[allow(dead_code)]
fn unused_type_anchor(_: Task) {}
