//! Integration tests for the opt-in `trace` layer: a real pool run must
//! produce a coherent, time-ordered event stream, the Chrome trace-event
//! JSON export must be structurally valid (checked with a small JSON
//! parser below, not string matching), and the signal-latency reduction
//! must find send → handler-entry pairs on the signal variants.
#![cfg(feature = "trace")]

use std::sync::atomic::{AtomicU64, Ordering};

use lcws_core::{par_for_grain, EventKind, PoolBuilder, ThreadPool, Trace, Variant};

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate the Chrome export without
// trusting the producer's own formatting assumptions.

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // The export is pure ASCII; reject control characters.
                    let c = self.bytes[self.pos];
                    if c < 0x20 {
                        return Err(format!("raw control byte at {}", self.pos));
                    }
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}' but found {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------------

fn traced_run(pool: &ThreadPool, n: usize, grain: usize) -> Trace {
    let sum = AtomicU64::new(0);
    pool.run(|| {
        par_for_grain(0..n, grain, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
    });
    assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    pool.take_trace().expect("traced run must leave a trace")
}

#[test]
fn pool_run_produces_coherent_trace() {
    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    let trace = traced_run(&pool, 1 << 14, 8);

    assert_eq!(trace.workers, 4);
    assert!(!trace.events.is_empty());
    assert!(
        trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "merged trace must be time-ordered"
    );
    // Exactly one run lifecycle, bracketing everything else.
    let starts: Vec<_> = trace.of_kind(EventKind::RunStart).collect();
    assert_eq!(starts.len(), 1);
    assert_eq!(starts[0].payload, 4, "RunStart payload = worker count");
    assert_eq!(trace.of_kind(EventKind::RunClose).count(), 1);
    // The workload forks ~n/grain leaves: pushes and local pops must show.
    assert!(trace.of_kind(EventKind::Push).next().is_some());
    assert!(trace.of_kind(EventKind::LocalPop).next().is_some());
    // A second take is empty until the next run.
    assert!(pool.take_trace().is_none());

    // Parallelism is observable: eventually a helper records too. A single
    // short run can legitimately finish before any helper wakes, so retry.
    for round in 0.. {
        let trace = traced_run(&pool, 1 << 16, 1);
        let recorded: std::collections::HashSet<u16> =
            trace.events.iter().map(|e| e.worker).collect();
        if recorded.len() >= 2 {
            break;
        }
        assert!(round < 50, "helpers never recorded: {recorded:?}");
    }
}

#[test]
fn rings_reset_between_runs() {
    let pool = PoolBuilder::new(Variant::UsLcws).threads(2).build();
    let first = traced_run(&pool, 1 << 12, 4);
    let second = traced_run(&pool, 1 << 12, 4);
    // The second trace covers only the second run: one lifecycle, and no
    // event older than the second run's start.
    assert_eq!(second.of_kind(EventKind::RunStart).count(), 1);
    let first_close = first.of_kind(EventKind::RunClose).next().unwrap().ts_ns;
    assert!(
        second.events.iter().all(|e| e.ts_ns >= first_close),
        "stale events leaked across runs"
    );
}

#[test]
fn ws_variant_emits_no_signal_events() {
    let pool = PoolBuilder::new(Variant::Ws).threads(4).build();
    let trace = traced_run(&pool, 1 << 13, 4);
    for kind in [
        EventKind::SignalSend,
        EventKind::SignalSendFailed,
        EventKind::HandlerEntry,
        EventKind::HandlerExpose,
        EventKind::Expose,
        EventKind::TargetedPoll,
    ] {
        assert_eq!(
            trace.of_kind(kind).count(),
            0,
            "classic WS must not record {kind:?}"
        );
    }
    assert!(trace.of_kind(EventKind::Push).next().is_some());
}

#[test]
fn signal_variant_yields_latency_samples() {
    // Fine grain + repeated runs make thieves signal victims; at least one
    // send must pair with a handler entry across the attempts.
    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    let mut sends = 0usize;
    for _ in 0..50 {
        let trace = traced_run(&pool, 1 << 14, 1);
        sends += trace.of_kind(EventKind::SignalSend).count();
        let latencies = trace.signal_latencies_ns();
        if !latencies.is_empty() {
            assert!(
                latencies.iter().all(|&ns| ns < 60_000_000_000),
                "a latency sample exceeds a minute — pairing bug: {latencies:?}"
            );
            return;
        }
    }
    panic!("no signal latency sample in 50 runs ({sends} sends observed)");
}

#[test]
fn tiny_ring_reports_dropped_events() {
    let pool = PoolBuilder::new(Variant::Signal)
        .threads(4)
        .trace_capacity(32)
        .build();
    let trace = traced_run(&pool, 1 << 14, 1);
    assert!(
        trace.dropped > 0,
        "a 32-slot ring cannot hold a 16k-leaf run"
    );
    // Drops never corrupt what survives.
    assert!(trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    assert!(
        trace.events.len() <= 32 * 4 + 1,
        "kept at most cap per ring"
    );
}

#[test]
fn chrome_export_parses_and_matches_the_trace() {
    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    let trace = traced_run(&pool, 1 << 13, 4);
    let json = Parser::parse(&trace.to_chrome_json()).expect("export must be valid JSON");

    assert_eq!(
        json.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = match json.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(
        events.len(),
        trace.events.len(),
        "one JSON object per event"
    );

    let known: std::collections::HashSet<&str> = (0..32u16)
        .filter_map(EventKind::from_u16)
        .map(EventKind::name)
        .collect();
    let mut last_ts = f64::MIN;
    for (obj, src) in events.iter().zip(&trace.events) {
        let name = obj.get("name").and_then(Json::as_str).expect("name");
        assert!(known.contains(name), "unknown event name {name:?}");
        assert_eq!(name, src.kind.name());
        assert_eq!(obj.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(obj.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(obj.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            obj.get("tid").and_then(Json::as_f64),
            Some(f64::from(src.worker))
        );
        let ts = obj.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(ts >= 0.0 && ts >= last_ts, "timestamps must be sorted");
        last_ts = ts;
        let payload = obj
            .get("args")
            .and_then(|a| a.get("payload"))
            .and_then(Json::as_f64)
            .expect("args.payload");
        assert_eq!(payload, f64::from(src.payload));
    }
    // Relative timestamps: the first event sits at the origin.
    let first_ts = events[0].get("ts").and_then(Json::as_f64).unwrap();
    assert_eq!(first_ts, 0.0);
}
