//! Signal-delivery torture: external threads spray `SIGUSR1` at pool
//! workers at high frequency while computations run. The exposure handler
//! must be reentrancy-safe (signals can arrive back-to-back), must no-op
//! on threads without an armed context, and `SA_RESTART` must keep
//! blocking syscalls transparent. Results must stay exact throughout.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lcws_core::{join, par_for_grain, ThreadPool, Variant};

fn spray_signals<T>(
    pool_threads: &[libc::pthread_t],
    stop: &AtomicBool,
    body: impl FnOnce() -> T,
) -> T {
    std::thread::scope(|s| {
        for &target in pool_threads {
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    unsafe {
                        libc::pthread_kill(target, libc::SIGUSR1);
                    }
                    std::thread::yield_now();
                }
            });
        }
        let out = body();
        stop.store(true, Ordering::Release);
        out
    })
}

#[test]
fn external_signal_storm_does_not_corrupt_results() {
    // The pool's own threads are not directly reachable, but the *caller*
    // thread is worker 0: storm it specifically while it runs.
    let me = unsafe { libc::pthread_self() };
    for variant in [
        Variant::Signal,
        Variant::SignalHalf,
        Variant::SignalConservative,
    ] {
        let pool = ThreadPool::new(variant, 4);
        let stop = AtomicBool::new(false);
        let total = spray_signals(&[me], &stop, || {
            let sum = AtomicU64::new(0);
            for _round in 0..5 {
                pool.run(|| {
                    par_for_grain(0..30_000, 16, |i| {
                        sum.fetch_add(i as u64, Ordering::Relaxed);
                    });
                });
            }
            sum.load(Ordering::Relaxed)
        });
        let expected: u64 = 5 * (0..30_000u64).sum::<u64>();
        assert_eq!(total, expected, "variant {variant} corrupted under storm");
    }
}

#[test]
fn signal_storm_against_non_worker_thread_is_harmless() {
    // A thread that never participates in any pool has a null handler
    // context: delivered signals must be pure no-ops.
    lcws_core::PoolBuilder::new(Variant::Signal)
        .threads(2)
        .build(); // installs handler
    let victim_pthread = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            victim_pthread.store(unsafe { libc::pthread_self() } as u64, Ordering::Release);
            let mut acc = 0u64;
            while !stop.load(Ordering::Acquire) {
                acc = acc.wrapping_mul(31).wrapping_add(1);
            }
            acc
        });
        let target = loop {
            let t = victim_pthread.load(Ordering::Acquire);
            if t != 0 {
                break t as libc::pthread_t;
            }
            std::thread::yield_now();
        };
        for _ in 0..5_000 {
            unsafe {
                libc::pthread_kill(target, libc::SIGUSR1);
            }
        }
        stop.store(true, Ordering::Release);
        assert!(handle.join().unwrap() > 0);
    });
}

#[test]
fn storm_during_deep_fork_join_stays_exact() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    let me = unsafe { libc::pthread_self() };
    let pool = ThreadPool::new(Variant::Signal, 4);
    let stop = AtomicBool::new(false);
    let result = spray_signals(&[me], &stop, || {
        let mut acc = 0;
        for _ in 0..3 {
            acc += pool.run(|| fib(17));
        }
        acc
    });
    assert_eq!(result, 3 * 1597);
}
