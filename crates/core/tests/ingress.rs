//! Integration tests for external ingress: `ThreadPool::serve` windows,
//! `spawn`/`spawn_batch` + `JoinHandle`, the many-producer stress (the PR's
//! acceptance scenario), and the faultpoint/trace behaviour of the global
//! injector.
//!
//! The stress dimensions default to a debug-friendly size; set
//! `LCWS_INGRESS_FULL=1` to run the full 64 producers × 10⁵ tasks
//! acceptance configuration (use a release build — see EXPERIMENTS.md).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lcws_core::{Counter, PoolBuilder, ThreadPool, Variant};

fn stress_dims() -> (usize, usize) {
    if std::env::var("LCWS_INGRESS_FULL").is_ok_and(|v| v == "1") {
        (64, 100_000)
    } else {
        (8, 2_000)
    }
}

/// The acceptance scenario: many external producer threads hammer `spawn`
/// concurrently while the pool serves. Zero tasks may be lost, the
/// injector push/pop accounting must balance, and the sleeper must show
/// real wakes with a bounded spurious-wake count (parked workers are woken
/// by submissions, not by backstop polling).
#[test]
fn many_producer_stress_loses_nothing() {
    let (producers, per_producer) = stress_dims();
    let total = (producers * per_producer) as u64;
    for variant in [Variant::Ws, Variant::Signal] {
        let pool = Arc::new(PoolBuilder::new(variant).threads(4).build());
        pool.serve();
        let executed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..producers {
                let pool = Arc::clone(&pool);
                let executed = Arc::clone(&executed);
                s.spawn(move || {
                    for _ in 0..per_producer {
                        let executed = Arc::clone(&executed);
                        // Handles dropped: completion is observed through
                        // the counter and the shutdown drain.
                        drop(pool.spawn(move || {
                            executed.fetch_add(1, Ordering::Relaxed);
                        }));
                    }
                });
            }
        });
        let snap = pool.shutdown();
        assert_eq!(
            executed.load(Ordering::Relaxed),
            total,
            "{variant}: tasks lost in the many-producer stress"
        );
        // Every submission went through the injector (no faults forced) and
        // every queued task left it through a worker batch pop.
        assert_eq!(
            snap.get(Counter::InjectorPush),
            total,
            "{variant}: injector push accounting broken"
        );
        assert_eq!(
            snap.get(Counter::InjectorPop),
            total,
            "{variant}: injector pop accounting broken"
        );
        // Wake accounting: if anyone parked mid-stress, real wakes must
        // have been delivered, and the spurious (timed-backstop) count must
        // stay far below one-per-task — the bound that separates "woken by
        // submissions" from "found the work by polling".
        if snap.parks() > 0 {
            assert!(
                snap.unparks() > 0,
                "{variant}: workers parked but no wake was ever delivered"
            );
        }
        let spurious = snap.get(Counter::SpuriousWake);
        assert!(
            spurious < total / 4 + 500,
            "{variant}: {spurious} spurious wakes for {total} tasks — \
             parked workers are backstop-polling, not being woken"
        );
    }
}

#[test]
fn spawn_handle_returns_value_and_rethrows_panic() {
    let pool = ThreadPool::new(Variant::Signal, 3);
    pool.serve();
    let h = pool.spawn(|| String::from("computed on the pool"));
    assert_eq!(h.join(), "computed on the pool");
    let boom = pool.spawn(|| -> u32 { panic!("task boom") });
    let caught = panic::catch_unwind(AssertUnwindSafe(|| boom.join()));
    assert!(caught.is_err(), "join must rethrow the task panic");
    // A panicking task must not poison the window: the pool still serves.
    let after = pool.spawn(|| 7 * 6);
    assert_eq!(after.join(), 42);
    pool.shutdown();
}

#[test]
fn spawn_batch_returns_handles_in_submission_order() {
    let pool = ThreadPool::new(Variant::SignalHalf, 4);
    pool.serve();
    let handles = pool.spawn_batch((0..64u64).map(|i| move || i * i));
    let values: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();
    assert_eq!(values, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    let snap = pool.shutdown();
    assert_eq!(snap.get(Counter::InjectorPush), 64);
}

/// Parked workers must wake for an external submission promptly — through
/// the eventcount wake, not only the 1ms backstop. The latency bound here
/// is deliberately loose (CI machines); the real assertion is that the
/// join completes at all while every worker is parked beforehand.
#[test]
fn external_submit_wakes_parked_workers() {
    let pool = ThreadPool::new(Variant::Ws, 4);
    pool.serve();
    // Give every helper time to escalate into a park.
    std::thread::sleep(Duration::from_millis(30));
    let t0 = Instant::now();
    let h = pool.spawn(|| 123u32);
    assert_eq!(h.join(), 123);
    let latency = t0.elapsed();
    let snap = pool.shutdown();
    assert!(
        snap.parks() > 0,
        "helpers never parked in a 30ms idle window"
    );
    assert!(
        latency < Duration::from_secs(5),
        "external submit took {latency:?} to complete against a parked pool"
    );
}

/// `join` from inside a task (i.e. on a worker thread) must help run work
/// instead of blocking the worker — blocking could deadlock the very pool
/// that has to execute the joined task.
#[test]
fn worker_side_join_helps_instead_of_blocking() {
    let pool = Arc::new(ThreadPool::new(Variant::Signal, 2));
    pool.serve();
    let inner_pool = Arc::clone(&pool);
    let h = pool.spawn(move || {
        let inner = inner_pool.spawn(|| 40u64);
        inner.join() + 2
    });
    assert_eq!(h.join(), 42);
    pool.shutdown();
}

#[test]
fn serve_windows_and_runs_interleave() {
    let pool = ThreadPool::new(Variant::UsLcws, 3);
    // run → serve → run → serve on the same pool.
    assert_eq!(pool.run(|| 1), 1);
    pool.serve();
    let h = pool.spawn(|| 2);
    assert_eq!(h.join(), 2);
    pool.shutdown();
    assert_eq!(pool.run(|| 3), 3);
    pool.serve();
    let handles = pool.spawn_batch((0..8).map(|i| move || i));
    assert_eq!(handles.into_iter().map(|h| h.join()).sum::<i32>(), 28);
    pool.shutdown();
}

#[test]
fn spawn_outside_serve_window_panics() {
    let pool = ThreadPool::new(Variant::Ws, 2);
    let caught = panic::catch_unwind(AssertUnwindSafe(|| {
        drop(pool.spawn(|| ()));
    }));
    assert!(caught.is_err(), "spawn without serve() must panic");
    // The failed spawn must not corrupt the outstanding count: a full
    // serve window still opens and drains cleanly.
    pool.serve();
    let h = pool.spawn(|| 9);
    assert_eq!(h.join(), 9);
    pool.shutdown();
}

/// A single-worker pool has no helpers to drain the injector: `shutdown`
/// itself must become the worker and drain inline.
#[test]
fn single_worker_pool_drains_on_shutdown() {
    let pool = ThreadPool::new(Variant::Signal, 1);
    pool.serve();
    let executed = Arc::new(AtomicU64::new(0));
    for _ in 0..100 {
        let executed = Arc::clone(&executed);
        drop(pool.spawn(move || {
            executed.fetch_add(1, Ordering::Relaxed);
        }));
    }
    let snap = pool.shutdown();
    assert_eq!(executed.load(Ordering::Relaxed), 100);
    assert_eq!(snap.get(Counter::InjectorPush), 100);
}

/// Dropping a pool with an open serve window must drain it (tasks are
/// never lost), not leak the queued tasks or hang the teardown.
#[test]
fn drop_with_open_serve_window_drains() {
    let executed = Arc::new(AtomicU64::new(0));
    {
        let pool = ThreadPool::new(Variant::Ws, 3);
        pool.serve();
        for _ in 0..50 {
            let executed = Arc::clone(&executed);
            drop(pool.spawn(move || {
                executed.fetch_add(1, Ordering::Relaxed);
            }));
        }
    } // Drop runs shutdown.
    assert_eq!(executed.load(Ordering::Relaxed), 50);
}

/// Regression (this PR): a worker draining an injector batch re-queues the
/// tail tasks into its own deque, and used to fire one `wake_one` *per*
/// re-queued task — a stampede of redundant notifications under external
/// load. The requeue now coalesces into a single wake per drained batch
/// (pinned exactly in the pool's unit tests); here the end-to-end wake
/// budget is asserted through the public counters: at most one wake per
/// submission plus half a wake per pop (a coalescing batch wake needs at
/// least two pops behind it), plus a small constant for serve/shutdown
/// transitions. The per-task-stampede regime blows this bound.
#[test]
fn injector_tail_requeue_wakes_are_coalesced() {
    const TASKS: u64 = 2_000;
    let pool = ThreadPool::new(Variant::Ws, 4);
    pool.serve();
    let executed = Arc::new(AtomicU64::new(0));
    for _ in 0..TASKS {
        let executed = Arc::clone(&executed);
        drop(pool.spawn(move || {
            executed.fetch_add(1, Ordering::Relaxed);
        }));
    }
    let snap = pool.shutdown();
    assert_eq!(executed.load(Ordering::Relaxed), TASKS);
    let pushes = snap.injector_pushes();
    let pops = snap.injector_pops();
    assert_eq!(pushes, TASKS);
    assert_eq!(pops, TASKS);
    let wakes = snap.wake_attempts();
    assert!(
        wakes <= pushes + pops / 2 + 64,
        "wake stampede: {wakes} wake attempts for {pushes} submissions and \
         {pops} pops — tail-requeue wakes are not coalesced"
    );
}

/// Faultpoint storm on `Site::InjectorPush`: forced push rejections must
/// degrade to inline execution on the producer — graceful, never lost.
#[cfg(feature = "faultpoints")]
#[test]
fn injector_push_fault_storm_degrades_to_inline() {
    use lcws_core::fault::{self, FaultPlan, Site, SiteAction};

    const TASKS: u64 = 2_000;
    let plan =
        FaultPlan::new(0x1239_e55).with(Site::InjectorPush, SiteAction::fail_always().one_in(3));
    let guard = fault::install(plan);
    let pool = ThreadPool::new(Variant::Signal, 4);
    pool.serve();
    let executed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = &pool;
            let executed = Arc::clone(&executed);
            s.spawn(move || {
                for _ in 0..TASKS / 4 {
                    let executed = Arc::clone(&executed);
                    drop(pool.spawn(move || {
                        executed.fetch_add(1, Ordering::Relaxed);
                    }));
                }
            });
        }
    });
    let snap = pool.shutdown();
    assert_eq!(
        executed.load(Ordering::Relaxed),
        TASKS,
        "forced injector-push failures lost tasks"
    );
    assert!(
        guard.fires(Site::InjectorPush) > 0,
        "the storm never fired — plan not installed?"
    );
    // Rejected pushes ran inline; accepted ones flowed through the queue.
    let pushed = snap.get(Counter::InjectorPush);
    let inline = snap.get(Counter::OverflowInline);
    assert_eq!(
        pushed + inline,
        TASKS,
        "push + inline-fallback accounting must cover every submission"
    );
    assert!(pushed > 0 && inline > 0, "storm should split both ways");
    assert_eq!(
        snap.get(Counter::InjectorPop),
        pushed,
        "every accepted push must leave through a pop"
    );
}

/// With tracing on, worker-side injector pops land in the merged trace.
/// (External producers have no trace ring, so `Inject` events appear only
/// for worker-thread submissions — the pops are the ingress witness.)
#[cfg(feature = "trace")]
#[test]
fn trace_records_injector_pops() {
    use lcws_core::EventKind;

    let pool = ThreadPool::new(Variant::Signal, 3);
    pool.serve();
    let handles = pool.spawn_batch((0..32u32).map(|i| move || i));
    for h in handles {
        h.join();
    }
    pool.shutdown();
    let trace = pool.take_trace().expect("serve window must leave a trace");
    let pops = trace.of_kind(EventKind::InjectorPop).count();
    assert!(
        pops > 0,
        "no InjectorPop events in the serve-window trace ({} events total)",
        trace.events.len()
    );
}
