//! Chaos suite: scheduler correctness under an armed `FaultPlan`
//! (`--features faultpoints`; see `lcws_core::fault`).
//!
//! Every test here runs a real workload while a seeded plan perturbs or
//! fails the synchronization-critical transitions, and then checks the
//! *result* — the paper's correctness argument must hold under the forced
//! interleavings, not just the lucky ones. Failures are replayable: the
//! plan seed fully determines each site's fire pattern (EXPERIMENTS.md,
//! "Reproducing a chaos run").
//!
//! Plans are process-global, so the whole suite serializes on [`CHAOS`].

#![cfg(feature = "faultpoints")]

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use lcws_core::fault::{install, FaultPlan, Site, SiteAction};
use lcws_core::{join, par_for_grain, scope, PoolBuilder, Variant};

/// One plan at a time, process-wide.
static CHAOS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock just means an earlier chaos test failed; the plan
    // guard has dropped, so later tests can still run.
    CHAOS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` on a fresh big-stack thread, failing the test if it neither
/// completes nor panics within `secs` (chaos deadlocks must not hang CI).
fn run_with_timeout<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let t = std::thread::Builder::new()
        .name("chaos-driver".into())
        .stack_size(64 << 20)
        .spawn(move || {
            let _ = tx.send(panic::catch_unwind(AssertUnwindSafe(f)));
        })
        .expect("spawn chaos driver");
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(result) => {
            t.join().expect("chaos driver thread");
            match result {
                Ok(v) => v,
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        Err(_) => panic!("chaos run exceeded {secs}s — likely deadlock under the fault plan"),
    }
}

/// Acceptance case from the fault-injection issue: with *every*
/// `pthread_kill` forced to fail, a signal-variant pool must still finish a
/// 2^16-task fork-join tree — each failed send reroutes through the
/// victim's fallback-exposure flag, USLCWS-style.
#[test]
fn forced_signal_failure_storm_completes_via_flag_fallback() {
    let _g = lock();
    let guard =
        install(FaultPlan::new(0xBAD_516).with(Site::SignalSend, SiteAction::fail_always()));
    let (sum, m) = run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
        let sum = AtomicU64::new(0);
        let (_, m) = pool.run_measured(|| {
            // 2^16 leaves, grain 1: maximal forking pressure, every steal
            // needs a (failing) notification first.
            par_for_grain(0..1 << 16, 1, |i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        });
        (sum.into_inner(), m)
    });
    let n = 1u64 << 16;
    assert_eq!(
        sum,
        n * (n + 1) / 2,
        "fork-join tree lost work under signal failure"
    );
    assert!(
        guard.fires(Site::SignalSend) > 0,
        "a 4-thread grain-1 run must attempt notifications"
    );
    // Every send failed: nothing was delivered, every attempt is accounted
    // as a failure, and every failure was rerouted, not dropped.
    assert_eq!(
        m.signals_sent(),
        0,
        "no send succeeded, none may count: {m}"
    );
    assert_eq!(m.signal_send_failed(), m.signal_send_attempts(), "{m}");
    assert!(
        m.signal_fallback_flag() > 0,
        "failures must arm the fallback flag: {m}"
    );
}

/// Accounting regression for the signal-path metrics fix: with roughly
/// half of all `pthread_kill`s forced to fail, `signals_sent` must count
/// only the successful deliveries, and every attempt must land in exactly
/// one of the two outcome counters (no ESRCH retry exists and a live
/// target never EAGAINs, so the attempt ledger balances exactly).
#[test]
fn signal_send_accounting_balances_under_partial_failure() {
    let _g = lock();
    let guard = install(
        FaultPlan::new(0x51_6AA1).with(Site::SignalSend, SiteAction::fail_always().one_in(2)),
    );
    let m = run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
        let (_, m) = pool.run_measured(|| {
            par_for_grain(0..1 << 14, 1, |i| {
                std::hint::black_box(i);
            });
        });
        m
    });
    // The regression check is the ledger: every attempt resolves to
    // exactly one outcome. It must hold however many attempts happened.
    assert_eq!(
        m.signals_sent() + m.signal_send_failed(),
        m.signal_send_attempts(),
        "every attempt must resolve to exactly one outcome: {m}"
    );
    assert_eq!(guard.fires(Site::SignalSend), m.signal_send_failed(), "{m}");
    // The both-sides-populated checks need a minimally busy run: a starved
    // box (e.g. single-core CI) can produce so few notification attempts
    // that the seeded one_in(2) coin lands all on one side.
    if m.signal_send_attempts() >= 8 {
        assert!(
            m.signal_send_failed() > 0,
            "forced failures must be counted: {m}"
        );
        assert!(
            m.signals_sent() > 0,
            "the un-failed half must still deliver: {m}"
        );
    }
}

/// Exposure storm: long delays inside the handler path (`HandlerEntry`,
/// `UpdatePublicBottom`) and in the §4 `pop_bottom` race window stretch the
/// owner-vs-handler interleavings the SignalSafe pop exists for.
#[test]
fn exposure_delay_storm_keeps_results_correct() {
    let _g = lock();
    for seed in [1u64, 2, 3] {
        let guard = install(
            FaultPlan::new(seed)
                // Handler-context sites: spin delays only (async-signal-safe).
                .with(Site::HandlerEntry, SiteAction::delay(300).one_in(2))
                .with(Site::UpdatePublicBottom, SiteAction::delay(150).one_in(3))
                .with(Site::PopBottom, SiteAction::delay(40).one_in(5)),
        );
        let sum = run_with_timeout(60, move || {
            // Expose Half needs the SignalSafe pop: the widened race window
            // is exactly what the delays aim at.
            let pool = PoolBuilder::new(Variant::SignalHalf).threads(4).build();
            let sum = AtomicU64::new(0);
            pool.run(|| {
                par_for_grain(0..40_000, 8, |i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
            sum.into_inner()
        });
        assert_eq!(sum, (0..40_000u64).sum::<u64>(), "seed {seed}");
        assert!(
            guard.fires(Site::PopBottom) > 0,
            "seed {seed}: pop delays never fired"
        );
    }
}

/// Steal bursts against a near-empty public part: yield storms at the
/// thief's age-read → CAS window and delays between the owner's two
/// seq-cst fences force the last-task CAS races of Listing 2.
#[test]
fn steal_bursts_on_last_task_races_stay_linearizable() {
    use lcws_core::deque::Steal;
    use lcws_core::{ExposurePolicy, PopBottomMode, SplitDeque};
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;

    let _g = lock();
    let guard = install(
        FaultPlan::new(0xCA5)
            .with(Site::PopTop, SiteAction::yield_storm(1).one_in(2))
            .with(Site::PopPublicBottom, SiteAction::delay(60).one_in(2))
            .with(Site::PopBottom, SiteAction::yield_storm(1).one_in(4)),
    );
    const N: usize = 1500;
    run_with_timeout(60, || {
        let d = SplitDeque::new(N + 1);
        let taken = Mutex::new(Vec::<usize>::new());
        let done = AtomicBool::new(false);
        let cookie = |v: usize| (v + 1) as *mut lcws_core::Job;
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        if let Steal::Ok(j) = d.pop_top() {
                            local.push(j as usize);
                        }
                    }
                    loop {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            Steal::Abort => continue,
                            _ => break,
                        }
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            // Owner: keep the public part starved (expose rarely, pop
            // often) so steals keep hitting the last-task path.
            let mut local = Vec::new();
            for i in 1..=N {
                d.push_bottom(cookie(i - 1));
                if i % 2 == 0 {
                    d.update_public_bottom(ExposurePolicy::One);
                }
                if i % 3 == 0 {
                    if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                        local.push(j as usize);
                    } else if let Some(j) = d.pop_public_bottom() {
                        local.push(j as usize);
                    }
                }
            }
            loop {
                if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                    local.push(j as usize);
                } else if let Some(j) = d.pop_public_bottom() {
                    local.push(j as usize);
                } else {
                    break;
                }
            }
            done.store(true, Ordering::Release);
            taken.lock().unwrap().extend(local);
        });
        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "a task ran twice under chaos");
        assert_eq!(set.len(), N, "a task was lost under chaos");
    });
    assert!(guard.fires(Site::PopTop) > 0);
}

/// Park/unpark races: delays right before a sleeper announces itself and
/// yield storms inside wake delivery stress the announce-then-sleep window
/// the eventcount protocol closes.
#[test]
fn park_unpark_races_never_strand_a_run() {
    let _g = lock();
    let guard = install(
        FaultPlan::new(0x5EE9)
            .with(Site::SleeperPark, SiteAction::delay(400).one_in(2))
            .with(Site::SleeperUnpark, SiteAction::yield_storm(2).one_in(2)),
    );
    run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::UsLcws).threads(4).build();
        // Each round forks work (waking parked helpers through the
        // perturbed deliver path), then starves the helpers long enough
        // for the idle backoff (64 spins + 16 yields) to park them again.
        for round in 0..30u64 {
            let sum = AtomicU64::new(0);
            pool.run(|| {
                par_for_grain(0..256, 4, |i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
                std::thread::sleep(Duration::from_millis(2));
            });
            assert_eq!(sum.into_inner(), (0..256u64).sum::<u64>(), "round {round}");
        }
    });
    assert!(
        guard.hits(Site::SleeperPark) > 0,
        "rounds must park workers"
    );
}

/// Overflow pressure without tiny deques: forced `push_bottom` failures
/// make roughly one join in three degrade to inline execution; results and
/// the `overflow_inline` counter must both show it.
#[test]
fn forced_push_failures_degrade_to_inline_joins() {
    let _g = lock();
    let guard = install(
        FaultPlan::new(0x0F107).with(Site::PushBottom, SiteAction::fail_always().one_in(3)),
    );
    let (sum, m, ran) = run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
        let sum = AtomicU64::new(0);
        let ran = AtomicU64::new(0);
        let (_, m) = pool.run_measured(|| {
            par_for_grain(0..20_000, 16, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            // Scope spawns exercise the second overflow path.
            scope(|s| {
                for _ in 0..200 {
                    let ran = &ran;
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        (sum.into_inner(), m, ran.into_inner())
    });
    assert_eq!(sum, (0..20_000u64).sum::<u64>());
    assert_eq!(ran, 200, "every scope task runs despite rejected pushes");
    assert!(guard.fires(Site::PushBottom) > 0);
    assert!(
        m.overflow_inline() > 0,
        "rejected pushes must be counted: {m}"
    );
}

/// Resize-window storm: `Site::DequeResize` delays stretch the window
/// between a grow's copy loop and its buffer publish while thieves keep
/// stealing from the ring that is about to be retired. The correctness
/// claim under §4 is that a thief's stale buffer capture is harmless —
/// its `age` CAS validates that `top` never moved — so the storm must
/// lose nothing and run no task twice, on both deques.
#[test]
fn delay_storms_inside_the_resize_window_stay_linearizable() {
    use lcws_core::deque::{AbpDeque, AbpSteal, Steal};
    use lcws_core::{ExposurePolicy, PopBottomMode, SplitDeque};
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;

    let _g = lock();
    let guard = install(
        FaultPlan::new(0x6209)
            .with(Site::DequeResize, SiteAction::delay(500))
            .with(Site::PopTop, SiteAction::yield_storm(1).one_in(3)),
    );
    const N: usize = 3000;
    let cookie = |v: usize| (v + 1) as *mut lcws_core::Job;

    // Split deque. Exposure is deliberately rare (One per 4 pushes): `top`
    // advances at most N/4, so the live extent provably outgrows capacity
    // 4 and growth is guaranteed to happen while thieves are stealing.
    run_with_timeout(60, move || {
        let d = SplitDeque::new(4);
        let taken = Mutex::new(Vec::<usize>::new());
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        if let Steal::Ok(j) = d.pop_top() {
                            local.push(j as usize);
                        }
                    }
                    loop {
                        match d.pop_top() {
                            Steal::Ok(j) => local.push(j as usize),
                            Steal::Abort => continue,
                            _ => break,
                        }
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            let mut local = Vec::new();
            for i in 1..=N {
                d.push_bottom(cookie(i - 1));
                if i % 4 == 0 {
                    d.update_public_bottom(ExposurePolicy::One);
                }
                if i % 5 == 0 {
                    if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                        local.push(j as usize);
                    } else if let Some(j) = d.pop_public_bottom() {
                        local.push(j as usize);
                    }
                }
            }
            loop {
                if let Some(j) = d.pop_bottom(PopBottomMode::SignalSafe) {
                    local.push(j as usize);
                } else if let Some(j) = d.pop_public_bottom() {
                    local.push(j as usize);
                } else {
                    break;
                }
            }
            done.store(true, Ordering::Release);
            taken.lock().unwrap().extend(local);
        });
        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(
            set.len(),
            all.len(),
            "split: a task ran twice across a resize"
        );
        assert_eq!(set.len(), N, "split: a task was lost across a resize");
        assert!(
            d.generation() > 0,
            "split: capacity 4 under {N} pushes must grow"
        );
    });

    // ABP deque: same storm over the fully-concurrent deque. A small
    // pre-fill before the thieves start guarantees at least one growth
    // even if the thieves then keep pace with the pushes.
    run_with_timeout(60, move || {
        let d = AbpDeque::new(4);
        for i in 0..8 {
            d.push_bottom(cookie(i));
        }
        assert!(d.generation() > 0, "abp: pre-fill must grow capacity 4");
        let taken = Mutex::new(Vec::<usize>::new());
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        if let AbpSteal::Ok(j) = d.pop_top() {
                            local.push(j as usize);
                        }
                    }
                    while let AbpSteal::Ok(j) = d.pop_top() {
                        local.push(j as usize);
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            let mut local = Vec::new();
            for i in 8..N {
                d.push_bottom(cookie(i));
                if i % 5 == 0 {
                    if let Some(j) = d.pop_bottom() {
                        local.push(j as usize);
                    }
                }
            }
            while let Some(j) = d.pop_bottom() {
                local.push(j as usize);
            }
            done.store(true, Ordering::Release);
            taken.lock().unwrap().extend(local);
        });
        let all = taken.into_inner().unwrap();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(
            set.len(),
            all.len(),
            "abp: a task ran twice across a resize"
        );
        assert_eq!(set.len(), N, "abp: a task was lost across a resize");
    });

    assert!(
        guard.fires(Site::DequeResize) > 0,
        "growth must pass through the resize-window delay"
    );
}

/// Forced grow failure: with `Site::DequeResize` failing always, every
/// growth attempt reports `DequeFull`, so spawn pressure past the initial
/// capacity must fall back to inline execution (the pre-growth degradation
/// path, kept for exactly this case) instead of panicking or losing work.
#[test]
fn forced_resize_failure_degrades_to_inline_execution() {
    let _g = lock();
    let guard = install(FaultPlan::new(0x9120F).with(Site::DequeResize, SiteAction::fail_always()));
    let (m, ran) = run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::UsLcws)
            .threads(2)
            .deque_capacity(4)
            .build();
        let ran = AtomicU64::new(0);
        let (_, m) = pool.run_measured(|| {
            scope(|s| {
                for _ in 0..1000 {
                    let ran = &ran;
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        (m, ran.into_inner())
    });
    assert_eq!(ran, 1000, "every task runs, queued or inline");
    assert!(
        guard.fires(Site::DequeResize) > 0,
        "growth must be attempted"
    );
    assert!(
        m.overflow_inline() > 0,
        "failed growth must fall back to inline execution: {m}"
    );
    assert_eq!(
        m.deque_grows(),
        0,
        "no doubling may succeed under fail_always: {m}"
    );
}

/// A forced spawn failure mid-build must tear the partial pool down (every
/// already-spawned worker joined) and leave the process able to build a
/// fresh pool once the plan is gone.
#[test]
fn spawn_failure_mid_build_tears_down_and_recovers() {
    let _g = lock();
    let guard = install(
        // Hits 0 and 1 (workers 1 and 2) succeed; hit 2 (worker 3) fails.
        FaultPlan::new(7).with(Site::ThreadSpawn, SiteAction::fail_always().after(2)),
    );
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        PoolBuilder::new(Variant::Signal).threads(4).build()
    }));
    let msg = match result {
        Ok(_) => panic!("build must fail under the forced spawn fault"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
    };
    assert!(
        msg.contains("failed to spawn worker thread 3 of 4"),
        "panic must name the failing worker: {msg}"
    );
    assert!(
        msg.contains("2 already-spawned worker(s) joined (0 of them panicked)"),
        "panic must confirm the partial teardown: {msg}"
    );
    assert_eq!(guard.fires(Site::ThreadSpawn), 1);
    drop(guard);
    // The failed build left no residue: a fresh pool works.
    let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
    assert_eq!(pool.run(|| join(|| 20, || 22)), (20, 22));
}

/// Staggered worker startup: long delays at every `ThreadSpawn` stretch
/// the window in which some worker slots still hold the pre-spawn zero
/// pthread handle. `build` must still wait out every registration (its
/// ready-gate is what keeps the first run's `pthread_kill`s safe), and a
/// signal-heavy workload right after the delayed build must complete with
/// nothing lost. The zero-handle reroute itself is unit-tested in
/// `pool::tests::signal_to_unregistered_worker_reroutes_to_fallback`.
#[test]
fn delayed_worker_spawns_keep_signal_runs_correct() {
    let _g = lock();
    let guard = install(
        // Delay-only action: `fail_at` performs the delay and reports
        // no-failure, so every spawn succeeds — late.
        FaultPlan::new(0x57A66E2).with(Site::ThreadSpawn, SiteAction::delay(5_000)),
    );
    let (sum, m) = run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
        let sum = AtomicU64::new(0);
        let (_, m) = pool.run_measured(|| {
            par_for_grain(0..1 << 14, 1, |i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        });
        (sum.into_inner(), m)
    });
    let n = 1u64 << 14;
    assert_eq!(sum, n * (n + 1) / 2, "work lost under staggered startup");
    assert_eq!(
        guard.hits(Site::ThreadSpawn),
        3,
        "one delay per helper spawn"
    );
    assert_eq!(
        m.signal_send_failed(),
        0,
        "the ready-gate must keep every post-build send on a live handle: {m}"
    );
}

/// Steal-abort storm: force roughly every other `pop_top` that found work
/// to lose its CAS race (`Steal::Abort`). Aborts now mean "work exists —
/// stay hot" in the scheduler's backoff, and they are accounted by the new
/// `steal_aborts` counter. (Before the fix, aborts walked thieves up the
/// idle-backoff ladder toward parking at peak contention — and were
/// invisible in the metrics.)
#[test]
fn forced_steal_abort_storm_completes_and_is_counted() {
    use lcws_core::deque::{AbpDeque, AbpSteal, Steal};
    use lcws_core::{ExposurePolicy, SplitDeque};

    let _g = lock();
    let guard =
        install(FaultPlan::new(0xAB027).with(Site::PopTop, SiteAction::fail_always().one_in(2)));

    // A full pool run first: Contended outcomes must not strand the run
    // (they keep thieves hot instead of escalating toward a park).
    let sum = run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
        let sum = AtomicU64::new(0);
        pool.run(|| {
            par_for_grain(0..1 << 14, 1, |i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        });
        sum.into_inner()
    });
    let n = 1u64 << 14;
    assert_eq!(sum, n * (n + 1) / 2, "work lost under the abort storm");

    // Deterministic accounting section, independent of how much the pool
    // actually stole on this machine: drive both deques' thief path
    // directly and balance the counter ledger.
    let cookie = |v: usize| (v + 1) as *mut lcws_core::Job;
    lcws_metrics::reset_local();
    let c = lcws_metrics::Collector::new();
    let mut forced = 0u64;
    let mut stolen = 0u64;
    {
        let d = SplitDeque::new(64);
        for i in 0..32 {
            d.push_bottom(cookie(i));
        }
        // Expose half: 16 public tasks for the storm to fight over.
        d.update_public_bottom(ExposurePolicy::Half);
        loop {
            match d.pop_top() {
                Steal::Ok(_) => stolen += 1,
                Steal::Abort => forced += 1,
                Steal::PrivateWork | Steal::Empty => break,
            }
        }
        assert_eq!(stolen, 16, "every public task is eventually stolen");
    }
    {
        let d = AbpDeque::new(16);
        for i in 0..8 {
            d.push_bottom(cookie(i));
        }
        loop {
            match d.pop_top() {
                AbpSteal::Ok(_) => stolen += 1,
                AbpSteal::Abort => forced += 1,
                AbpSteal::Empty => break,
            }
        }
        assert_eq!(stolen, 24, "the ABP deque drains through the storm too");
    }
    lcws_metrics::flush_into(&c);
    let s = c.snapshot();
    assert!(forced > 0, "one_in(2) over 24+ eligible steals must fire");
    assert_eq!(
        s.steal_aborts(),
        forced,
        "every abort lands in the counter: {s}"
    );
    // +2: the two loop-terminating calls (PrivateWork / Empty) are
    // attempts too, and cannot be forced to abort (no work present).
    assert_eq!(
        s.steal_attempts(),
        stolen + forced + 2,
        "attempt ledger balances: {s}"
    );
    assert!(guard.fires(Site::PopTop) > 0);
}

/// Batch-steal ledger under a CAS storm: with roughly every third
/// `pop_top` CAS forced to abort, an Expose Half pool must still run every
/// task exactly once, and the deterministic deque-level section must
/// balance the new ledger exactly — tasks migrated = `steals_ok`
/// (one per successful batch CAS) + `steal_batch_tasks` (the surplus), with
/// every forced abort landing in `steal_aborts` and no slot delivered
/// twice.
#[test]
fn batch_steal_ledger_balances_under_cas_storm() {
    use lcws_core::deque::{Steal, STEAL_BATCH_MAX};
    use lcws_core::{ExposurePolicy, SplitDeque};
    use std::collections::HashSet;

    let _g = lock();
    let guard =
        install(FaultPlan::new(0xBA7C4).with(Site::PopTop, SiteAction::fail_always().one_in(3)));

    // Pool section: the storm hits the batch CAS window of a SignalHalf
    // run; aborts retry hot, and nothing may be lost or doubled.
    let (executed, m) = run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::SignalHalf).threads(4).build();
        let executed = AtomicU64::new(0);
        let (_, m) = pool.run_measured(|| {
            scope(|s| {
                for _ in 0..4_000 {
                    let executed = &executed;
                    s.spawn(move || {
                        executed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        (executed.into_inner(), m)
    });
    assert_eq!(executed, 4_000, "batch-steal storm lost or doubled tasks");
    assert_eq!(
        m.tasks_run(),
        4_000,
        "task accounting drifted under the storm"
    );

    // Deterministic ledger section: drive `pop_top_batch` directly against
    // a wholesale-exposed run and balance every counter.
    let cookie = |v: usize| (v + 1) as *mut lcws_core::Job;
    lcws_metrics::reset_local();
    let c = lcws_metrics::Collector::new();
    const N: usize = 128;
    let d = SplitDeque::new(2 * N);
    for i in 0..N {
        d.push_bottom(cookie(i));
    }
    // Expose Half publishes ⌈N/2⌉ = 64 tasks for the storm to fight over.
    d.update_public_bottom(ExposurePolicy::Half);
    let (mut batches, mut surplus, mut aborts) = (0u64, 0u64, 0u64);
    let mut taken = Vec::new();
    loop {
        let mut extras = Vec::new();
        match d.pop_top_batch(&mut extras, STEAL_BATCH_MAX - 1) {
            Steal::Ok(j) => {
                batches += 1;
                surplus += extras.len() as u64;
                taken.push(j as usize);
                taken.extend(extras.into_iter().map(|e| e as usize));
            }
            Steal::Abort => aborts += 1,
            Steal::PrivateWork | Steal::Empty => break,
        }
    }
    let set: HashSet<_> = taken.iter().copied().collect();
    assert_eq!(set.len(), taken.len(), "a slot was delivered twice");
    assert_eq!(set.len(), N / 2, "the exposed half must drain exactly");
    assert!(surplus > 0, "⌈public/2⌉ takes must move surplus tasks");
    assert!(
        aborts > 0,
        "one_in(3) over ≥8 batch CASes must force aborts"
    );
    lcws_metrics::flush_into(&c);
    let s = c.snapshot();
    assert_eq!(
        s.steals_ok(),
        batches,
        "one StealOk per successful batch CAS: {s}"
    );
    assert_eq!(
        s.steal_batch_tasks(),
        surplus,
        "surplus ledger drifted: {s}"
    );
    assert_eq!(
        s.steals_ok() + s.steal_batch_tasks(),
        (N / 2) as u64,
        "migrated tasks must equal steals_ok + steal_batch_tasks: {s}"
    );
    assert_eq!(
        s.steal_aborts(),
        aborts,
        "forced aborts must be counted: {s}"
    );
    assert!(guard.fires(Site::PopTop) > 0);
}

/// Same seed, same plan → same per-site fire pattern over a deterministic
/// (single-threaded) hit sequence — the property that makes a chaos
/// failure replayable from its seed alone.
#[test]
fn chaos_runs_replay_from_their_seed() {
    let _g = lock();
    let fires_for = |seed: u64| {
        let guard = install(
            FaultPlan::new(seed).with(Site::SignalSend, SiteAction::fail_always().one_in(5)),
        );
        let pattern: Vec<bool> = (0..512)
            .map(|_| {
                // Single-threaded hits: the pattern is the pure seeded
                // schedule, no interleaving noise.
                lcws_core::fault::probe(Site::SignalSend)
            })
            .collect();
        let fires = guard.fires(Site::SignalSend);
        drop(guard);
        (pattern, fires)
    };
    let (p1, f1) = fires_for(0xD15EA5E);
    let (p2, f2) = fires_for(0xD15EA5E);
    let (p3, _) = fires_for(0xD15EA5E + 1);
    assert_eq!(p1, p2, "identical seeds must replay identically");
    assert_eq!(f1, f2);
    assert_ne!(p1, p3, "a different seed must perturb differently");
}
