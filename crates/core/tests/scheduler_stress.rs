//! Cross-variant stress tests for the five schedulers: identical results,
//! panic containment, signal storms during long sequential tasks, and deep
//! nesting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use lcws_core::{join, par_for_grain, scope, PoolBuilder, ThreadPool, Variant};

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn all_variants_compute_fib_identically() {
    for variant in Variant::ALL {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(variant, threads);
            let result = pool.run(|| fib(18));
            assert_eq!(result, 2584, "variant {variant} threads {threads}");
        }
    }
}

#[test]
fn par_for_touches_every_index_once_under_steal_pressure() {
    const N: usize = 50_000;
    for variant in Variant::ALL {
        let pool = ThreadPool::new(variant, 4);
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|| {
            // Tiny grain maximizes task count and steal pressure.
            par_for_grain(0..N, 8, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        let bad = hits
            .iter()
            .enumerate()
            .find(|(_, h)| h.load(Ordering::Relaxed) != 1);
        assert!(
            bad.is_none(),
            "variant {variant}: index {:?} executed {:?} times",
            bad.map(|(i, _)| i),
            bad.map(|(_, h)| h.load(Ordering::Relaxed)),
        );
    }
}

#[test]
fn nested_joins_inside_scope_spawns() {
    for variant in [Variant::Ws, Variant::Signal, Variant::SignalHalf] {
        let pool = ThreadPool::new(variant, 4);
        let total = AtomicU64::new(0);
        pool.run(|| {
            scope(|s| {
                for k in 0..32u64 {
                    let total = &total;
                    s.spawn(move || {
                        let v = fib(10) + k;
                        total.fetch_add(v, Ordering::Relaxed);
                    });
                }
            });
        });
        let expected: u64 = (0..32).map(|k| 55 + k).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected, "variant {variant}");
    }
}

#[test]
fn long_sequential_task_gets_work_exposed_mid_task() {
    // The Lace-weakness scenario from §2: a busy worker executes one long
    // sequential task while holding a private (joinable) sibling. With
    // signals, thieves must be able to get that sibling exposed and stolen
    // *during* the long task. We verify both siblings complete and, on
    // multi-worker signal pools, that the run makes progress regardless of
    // which worker takes what.
    for variant in [
        Variant::Signal,
        Variant::SignalConservative,
        Variant::SignalHalf,
    ] {
        let pool = ThreadPool::new(variant, 4);
        let ((_, b), metrics) = pool.run_measured(|| {
            join(
                || {
                    // Long sequential "task": no scheduler interaction.
                    let mut acc = 1u64;
                    for i in 0..3_000_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    acc
                },
                || 7u64,
            )
        });
        assert_eq!(b, 7, "variant {variant}");
        // The sibling must have been exposed (via a handled signal) or run
        // by the owner after the long task. On the base/half signal
        // variants idle thieves must have requested exposure at least once.
        // Conservative is *expected* to stay silent here: the victim never
        // holds two tasks, which is precisely its notification condition.
        match variant {
            Variant::SignalConservative => assert_eq!(
                metrics.signals_sent(),
                0,
                "conservative must not signal single-task victims ({metrics})"
            ),
            _ => assert!(
                metrics.signals_sent() >= 1,
                "variant {variant}: idle thieves never requested exposure ({metrics})"
            ),
        }
    }
}

#[test]
fn panics_in_stolen_tasks_propagate_to_root() {
    for variant in Variant::ALL {
        let pool = ThreadPool::new(variant, 4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|| {
                par_for_grain(0..1_000, 4, |i| {
                    if i == 777 {
                        panic!("injected failure at 777");
                    }
                });
            });
        }));
        assert!(caught.is_err(), "variant {variant} swallowed the panic");
        // Pool remains usable afterwards.
        assert_eq!(
            pool.run(|| fib(8)),
            21,
            "variant {variant} broken after panic"
        );
    }
}

#[test]
fn repeated_runs_are_stable_under_signal_storms() {
    let pool = ThreadPool::new(Variant::Signal, 8);
    for round in 0..30 {
        let n = 10_000 + round * 100;
        let sum = AtomicU64::new(0);
        pool.run(|| {
            par_for_grain(0..n, 16, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        let expected = (n as u64 - 1) * n as u64 / 2;
        assert_eq!(sum.load(Ordering::Relaxed), expected, "round {round}");
    }
}

#[test]
fn oversubscribed_pool_completes() {
    // More workers than cores (this CI host has very few): correctness and
    // termination under heavy timeslicing.
    for variant in [Variant::Ws, Variant::UsLcws, Variant::Signal] {
        let pool = ThreadPool::new(variant, 8);
        let result = pool.run(|| fib(16));
        assert_eq!(result, 987, "variant {variant}");
    }
}

#[test]
fn lcws_uses_far_fewer_fences_than_ws_on_low_parallelism() {
    // The paper's headline profile (Figure 3a): USLCWS executes < 1% of
    // WS's memory fences because local operations are synchronization-free.
    let n = 200_000;
    let work = |_: usize| {
        std::hint::black_box(0u64);
    };

    let ws = ThreadPool::new(Variant::Ws, 2);
    let (_, ws_m) = ws.run_measured(|| par_for_grain(0..n, 64, work));

    let us = ThreadPool::new(Variant::UsLcws, 2);
    let (_, us_m) = us.run_measured(|| par_for_grain(0..n, 64, work));

    assert!(
        ws_m.fences() > 1_000,
        "WS should fence per local op: {ws_m}"
    );
    let ratio = us_m.fences() as f64 / ws_m.fences() as f64;
    assert!(
        ratio < 0.10,
        "USLCWS should need far fewer fences than WS (got ratio {ratio:.4}; us={us_m}, ws={ws_m})"
    );
}

#[test]
fn deque_capacity_is_configurable() {
    let pool = PoolBuilder::new(Variant::Signal)
        .threads(2)
        .deque_capacity(1 << 16)
        .build();
    assert_eq!(pool.run(|| fib(12)), 144);
}

#[test]
fn results_flow_back_from_stolen_branches() {
    // Return values (not just side effects) must cross the steal boundary.
    let pool = ThreadPool::new(Variant::SignalHalf, 4);
    let v = pool.run(|| {
        fn build(depth: usize) -> Vec<usize> {
            if depth == 0 {
                return vec![1];
            }
            let (mut a, b) = join(|| build(depth - 1), || build(depth - 1));
            a.extend(b);
            a
        }
        build(10)
    });
    assert_eq!(v.len(), 1024);
    assert!(v.iter().all(|&x| x == 1));
}
