//! Supervision suite: pool lifecycle churn (ROADMAP item 5) and —
//! under `--features faultpoints` — deterministic worker-death storms
//! exercising the containment → expose-private → quiesce → respawn
//! protocol of DESIGN.md §5e.
//!
//! Fault plans are process-global, so the faulted tests serialize on
//! [`SUPERVISION`]; the churn test takes the same lock so an armed plan
//! from a concurrently scheduled test can never leak into it.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use lcws_core::{join, par_for_grain, PoolBuilder, Variant};

/// One fault plan at a time, process-wide.
static SUPERVISION: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock just means an earlier test failed; any plan guard has
    // dropped, so later tests can still run.
    SUPERVISION.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` on a fresh big-stack thread, failing the test if it neither
/// completes nor panics within `secs` (supervision bugs tend to present as
/// quiescence hangs, which must not hang CI).
fn run_with_timeout<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let t = std::thread::Builder::new()
        .name("supervision-driver".into())
        .stack_size(64 << 20)
        .spawn(move || {
            let _ = tx.send(panic::catch_unwind(AssertUnwindSafe(f)));
        })
        .expect("spawn supervision driver");
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(result) => {
            t.join().expect("supervision driver thread");
            match result {
                Ok(v) => v,
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        Err(_) => panic!("supervision run exceeded {secs}s — likely a quiescence hang"),
    }
}

/// ROADMAP item 5 (shutdown/restart churn + oversubscription): build → run
/// → drop across every variant and several thread counts, including one
/// past the core count of small CI boxes. Each round must produce the
/// exact sum and each drop must join its helpers cleanly.
#[test]
fn lifecycle_churn_all_variants() {
    let _g = lock();
    run_with_timeout(180, || {
        for &threads in &[1, 2, 4, 8] {
            for v in Variant::ALL {
                let pool = PoolBuilder::new(v).threads(threads).build();
                for round in 0..3u64 {
                    let sum = AtomicU64::new(0);
                    pool.run(|| {
                        par_for_grain(0..256, 16, |i| {
                            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
                        });
                    });
                    assert_eq!(
                        sum.into_inner(),
                        (256 * 257) / 2,
                        "{v:?} x{threads} round {round} lost or duplicated work"
                    );
                }
                // Implicit drop here: helpers must join without hanging.
            }
        }
    });
}

/// Watchdog with a comfortable timeout never fires on healthy runs — the
/// supervision layer must be invisible when nothing is wrong.
#[test]
fn watchdog_silent_on_healthy_runs() {
    let _g = lock();
    run_with_timeout(60, || {
        let pool = PoolBuilder::new(Variant::SignalHalf)
            .threads(4)
            .stall_timeout(Duration::from_millis(500))
            .build();
        for _ in 0..5 {
            assert_eq!(pool.run(|| join(|| 1, || 2)), (1, 2));
        }
        assert_eq!(pool.stall_reports(), 0);
    });
}

#[cfg(feature = "faultpoints")]
mod faulted {
    use super::*;
    use lcws_core::fault::{install, FaultPlan, Site, SiteAction};

    /// The issue's acceptance scenario: a seeded `Site::WorkerLoop` plan
    /// kills helpers mid-run on a capacity-4 pool. The run must terminate
    /// (no quiescence hang), zero tasks may be lost (the dying owner's
    /// expose-all handoff plus the task-boundary containment argument),
    /// the panic payload must resume on the caller, and the *next* run on
    /// the same pool must succeed after the healer respawned the dead
    /// slots.
    #[test]
    fn worker_death_storm_contained_and_healed() {
        let _g = lock();
        run_with_timeout(120, || {
            let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
            // Installed after build: the plan must hit running helpers,
            // not the build-time ThreadSpawn site.
            let guard = install(FaultPlan::new(0x5EED_0007).with(
                Site::WorkerLoop,
                // Let the storm ramp up first, then kill two of the three
                // helpers (never all: fires are per-site, one panic each).
                // Helpers hit the loop-top probe a few hundred times over a
                // run this size, so 30 leaves wide margin on both sides.
                SiteAction::fail_always().after(30).max_fires(2),
            ));
            let done = AtomicU64::new(0);
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(|| {
                    par_for_grain(0..8192, 1, |_| {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }));
            let fires = guard.fires(Site::WorkerLoop);
            drop(guard);
            assert!(fires >= 1, "the plan never killed a helper");
            // Zero loss: every task ran exactly once despite the deaths.
            assert_eq!(done.into_inner(), 8192);
            // The escaped payload resumed on the caller...
            let payload = result.expect_err("worker death must resume on the caller");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(|s| s.as_str()))
                .unwrap_or("<non-string>");
            assert!(
                msg.contains("injected worker-loop fault"),
                "unexpected payload: {msg}"
            );
            // ...and was counted before quiescence released the caller.
            assert!(pool.metrics().worker_deaths() >= 1);
            assert_eq!(pool.metrics().worker_respawns(), 0);

            // Self-heal: the next run respawns the dead helpers and
            // completes normally.
            let sum = AtomicU64::new(0);
            pool.run(|| {
                par_for_grain(0..1024, 4, |i| {
                    sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
                });
            });
            assert_eq!(sum.into_inner(), (1024 * 1025) / 2);
            assert!(
                pool.metrics().worker_respawns() >= 1,
                "healer must have respawned at least one helper"
            );
            assert_eq!(pool.metrics().worker_deaths(), 0);
        });
    }

    /// A failed respawn (forced `Site::ThreadSpawn` fire during healing)
    /// must leave the pool running degraded, not broken; once the plan is
    /// gone, the following run's healer retries and fully recovers.
    #[test]
    fn failed_respawn_degrades_then_heals() {
        let _g = lock();
        run_with_timeout(120, || {
            let pool = PoolBuilder::new(Variant::UsLcws).threads(4).build();
            // Round 1: kill exactly one helper.
            {
                let guard = install(
                    FaultPlan::new(0xDEAD_0001)
                        .with(Site::WorkerLoop, SiteAction::fail_always().max_fires(1)),
                );
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    pool.run(|| {
                        // Big enough that helpers iterate while the run is
                        // still open (a tiny workload can close the
                        // generation before any helper wakes, and a helper
                        // that wakes into a closed generation exits at the
                        // `finished` check before reaching the fault
                        // probe).
                        let sum = AtomicU64::new(0);
                        par_for_grain(0..8192, 1, |i| {
                            sum.fetch_add(i as u64, Ordering::Relaxed);
                        });
                        sum.into_inner()
                    });
                }));
                assert!(result.is_err(), "the death payload must resume");
                drop(guard);
                assert!(pool.metrics().worker_deaths() >= 1);
            }
            // Round 2: healer's respawn is forced to fail — the pool keeps
            // working with the slot dead (excluded from the handshake).
            {
                let guard = install(
                    FaultPlan::new(0xDEAD_0002).with(Site::ThreadSpawn, SiteAction::fail_always()),
                );
                assert_eq!(pool.run(|| 40 + 2), 42);
                assert_eq!(
                    pool.metrics().worker_respawns(),
                    0,
                    "respawn was forced to fail, none may be counted"
                );
                drop(guard);
            }
            // Round 3: no plan — the healer retries and recovers the slot.
            assert_eq!(pool.run(|| 21 * 2), 42);
            assert!(pool.metrics().worker_respawns() >= 1);
        });
    }

    /// Watchdog under a genuine stall: helpers wedged in huge forced
    /// sleeper delays while the caller closes the run. The 2ms quiescence
    /// waits must expire into stall reports, and the run must still
    /// complete correctly once the delays drain — report-and-keep-waiting,
    /// never report-and-give-up.
    #[test]
    fn stall_watchdog_reports_and_recovers() {
        let _g = lock();
        run_with_timeout(120, || {
            let pool = PoolBuilder::new(Variant::Ws)
                .threads(2)
                .stall_timeout(Duration::from_millis(2))
                .build();
            let guard = install(FaultPlan::new(0x57A1_1).with(
                Site::SleeperPark,
                // Every park entry spins ~tens of ms, far past the 2ms
                // watchdog, wedging the helper across the run close.
                SiteAction::delay(50_000_000),
            ));
            let v = pool.run(|| {
                // Idle the helper long enough to escalate spin → yield →
                // park and take the forced delay.
                std::thread::sleep(Duration::from_millis(30));
                7
            });
            drop(guard);
            assert_eq!(v, 7);
            assert!(
                pool.stall_reports() >= 1,
                "a 2ms watchdog must have fired across a ~50ms wedge"
            );
        });
    }
}
