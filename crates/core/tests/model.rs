//! Exhaustive interleaving checks for the §4 owner/thief/handler races
//! (`cargo test -p lcws-core --features model --test model`).
//!
//! Each scenario sets up a small deque script — push during single-threaded
//! setup, then one owner pop round racing one thief steal, with the
//! variant's exposure policy running either at an owner scheduling point
//! (USLCWS-style synchronous polling) or as a signal handler the scheduler
//! may inject between *any* two owner atomic accesses (the signal
//! variants). The explorer enumerates every schedule; after each one we
//! drain the deque on the (unscheduled) explorer thread and check
//!
//! 1. no task was lost or executed twice, and
//! 2. the deque returned to the canonical empty state
//!    (`bot == public_bot == 0` and `age.top == 0`) — the §4 `bot ← 0`
//!    repair in `pop_public_bottom`.
//!
//! The five paper pairings (WS, USLCWS, Signal, Conservative, Half) must
//! pass exhaustively; the known-unsound pairing `Standard` + `Half` must
//! be *caught* as a double-take (negative test).

#![cfg(feature = "model")]

use std::sync::Mutex;

use lcws_core::deque::{
    AbpDeque, AbpSteal, ExposurePolicy, PopBottomMode, SplitDeque, Steal, STEAL_BATCH_MAX,
};
use lcws_core::model::{explore, pause, Execution, Options, Report};
use lcws_core::Job;

/// Distinguishable non-null fake job pointers (never dereferenced).
fn cookie(i: usize) -> *mut Job {
    (i + 1) as *mut Job
}

fn uncookie(t: *mut Job) -> usize {
    t as usize - 1
}

/// Sorted multiset check: everything taken during the execution plus
/// everything drained afterwards must be exactly `0..ntasks`.
fn check_no_loss_no_dup(mut all: Vec<usize>, ntasks: usize) -> Result<(), String> {
    all.sort_unstable();
    let expect: Vec<usize> = (0..ntasks).collect();
    if all == expect {
        Ok(())
    } else {
        Err(format!(
            "task loss/duplication: took {all:?}, expected {expect:?}"
        ))
    }
}

/// Who runs `update_public_bottom` in the script.
#[derive(Clone, Copy, PartialEq)]
enum Exposer {
    /// At an owner scheduling point before the pop (USLCWS's synchronous
    /// poll — exposures cannot land inside `pop_bottom`).
    Owner,
    /// As a signal handler the scheduler may deliver between any two owner
    /// accesses (the signal variants).
    Handler,
}

/// One owner pop round vs one thief steal on a split deque, under the
/// given (pop mode × exposure policy × exposure mechanism) triple.
fn check_split(
    mode: PopBottomMode,
    policy: ExposurePolicy,
    exposer: Exposer,
    ntasks: usize,
) -> Report {
    explore(Options::default(), || {
        let d = SplitDeque::new(8);
        for i in 0..ntasks {
            d.push_bottom(cookie(i));
        }
        let taken = Mutex::new(Vec::new());

        let exec = Execution::new()
            .thread("owner", || {
                // Leading pause: lets the handler/thief act on the fully
                // private deque before the owner's first own access.
                pause();
                if exposer == Exposer::Owner {
                    d.update_public_bottom(policy);
                }
                let job = d.pop_bottom(mode).or_else(|| d.pop_public_bottom());
                if let Some(t) = job {
                    taken.lock().unwrap().push(uncookie(t));
                }
                // Trailing pause: a handler may also arrive after the
                // protocol completed (must be harmless).
                pause();
            })
            .thread("thief", || {
                if let Steal::Ok(t) = d.pop_top() {
                    taken.lock().unwrap().push(uncookie(t));
                }
            });
        let exec = match exposer {
            Exposer::Owner => exec,
            Exposer::Handler => exec.handler_on(0, || {
                d.update_public_bottom(policy);
            }),
        };
        exec.run();

        // Drain on the explorer thread (unregistered: accesses pass the
        // scheduler by). Mirrors the scheduler's acquire path. Always uses
        // the SignalSafe pop: it is total even on the inconsistent states a
        // *violating* execution leaves behind (e.g. `bot == 0` with
        // `public_bot == 1` after a Standard-mode double-take), where the
        // Standard pop would underflow instead of reporting the damage.
        let mut all = taken.into_inner().unwrap();
        loop {
            if let Some(t) = d.pop_bottom(PopBottomMode::SignalSafe) {
                all.push(uncookie(t));
            } else if let Some(t) = d.pop_public_bottom() {
                all.push(uncookie(t));
            } else {
                break;
            }
        }
        check_no_loss_no_dup(all, ntasks)?;

        let (bot, public_bot, age) = d.raw_state();
        if (bot, public_bot, age.top) != (0, 0, 0) {
            return Err(format!(
                "non-canonical empty state: bot={bot} public_bot={public_bot} \
                 top={} (expected 0/0/0)",
                age.top
            ));
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// The five paper pairings (positive: must pass exhaustively).
// ---------------------------------------------------------------------------

/// WS baseline: ABP deque, owner `pop_bottom` racing a thief `pop_top`
/// for the last task(s).
fn check_abp(ntasks: usize) -> Report {
    explore(Options::default(), || {
        let d = AbpDeque::new(8);
        for i in 0..ntasks {
            d.push_bottom(cookie(i));
        }
        let taken = Mutex::new(Vec::new());
        Execution::new()
            .thread("owner", || {
                if let Some(t) = d.pop_bottom() {
                    taken.lock().unwrap().push(uncookie(t));
                }
            })
            .thread("thief", || {
                if let AbpSteal::Ok(t) = d.pop_top() {
                    taken.lock().unwrap().push(uncookie(t));
                }
            })
            .run();
        let mut all = taken.into_inner().unwrap();
        while let Some(t) = d.pop_bottom() {
            all.push(uncookie(t));
        }
        check_no_loss_no_dup(all, ntasks)?;
        let (bot, age) = d.raw_state();
        if (bot, age.top) != (0, 0) {
            return Err(format!(
                "non-canonical empty state: bot={bot} top={} (expected 0/0)",
                age.top
            ));
        }
        Ok(())
    })
}

#[test]
fn ws_abp_owner_thief_race() {
    for ntasks in [1, 2] {
        let report = check_abp(ntasks);
        report.assert_exhaustive_pass("WS/ABP owner-vs-thief");
        assert!(report.schedules >= 10, "expected a real interleaving space");
    }
}

#[test]
fn uslcws_standard_one_owner_side_exposure() {
    // USLCWS: Standard pop is safe because exposure happens only at the
    // owner's own polling points, never inside pop_bottom.
    for ntasks in [1, 2] {
        check_split(
            PopBottomMode::Standard,
            ExposurePolicy::One,
            Exposer::Owner,
            ntasks,
        )
        .assert_exhaustive_pass("USLCWS (Standard + One, owner-side)");
    }
}

#[test]
fn signal_signalsafe_one_handler_exposure() {
    for ntasks in [1, 2] {
        let report = check_split(
            PopBottomMode::SignalSafe,
            ExposurePolicy::One,
            Exposer::Handler,
            ntasks,
        );
        report.assert_exhaustive_pass("Signal (SignalSafe + One, handler)");
        assert!(
            report.schedules >= 100,
            "handler injection must multiply the schedule count, got {}",
            report.schedules
        );
    }
}

#[test]
fn signal_conservative_standard_handler_exposure() {
    // Conservative exposure keeps the bottom-most task private, which is
    // exactly what makes the cheaper Standard pop safe again (§4.1.1).
    for ntasks in [1, 2, 3] {
        check_split(
            PopBottomMode::Standard,
            ExposurePolicy::Conservative,
            Exposer::Handler,
            ntasks,
        )
        .assert_exhaustive_pass("Conservative (Standard + Conservative, handler)");
    }
}

#[test]
fn signal_half_signalsafe_handler_exposure() {
    // Expose Half moves round(r/2) tasks at once; SignalSafe pop keeps the
    // owner correct even when its bottom task goes public mid-pop.
    for ntasks in [1, 2, 3] {
        check_split(
            PopBottomMode::SignalSafe,
            ExposurePolicy::Half,
            Exposer::Handler,
            ntasks,
        )
        .assert_exhaustive_pass("Half (SignalSafe + Half, handler)");
    }
}

/// The §4 scenario in isolation: no thief, just the owner's pop racing a
/// handler exposure of the task under its feet, including the
/// `pop_public_bottom` index repair (`bot ← 0` when `public_bot == 0`).
#[test]
fn signalsafe_owner_vs_handler_only() {
    let report = explore(Options::default(), || {
        let d = SplitDeque::new(8);
        d.push_bottom(cookie(0));
        let taken = Mutex::new(Vec::new());
        Execution::new()
            .thread("owner", || {
                pause();
                let job = d
                    .pop_bottom(PopBottomMode::SignalSafe)
                    .or_else(|| d.pop_public_bottom());
                if let Some(t) = job {
                    taken.lock().unwrap().push(uncookie(t));
                }
                pause();
            })
            .handler_on(0, || {
                d.update_public_bottom(ExposurePolicy::One);
            })
            .run();
        let mut all = taken.into_inner().unwrap();
        loop {
            if let Some(t) = d.pop_bottom(PopBottomMode::SignalSafe) {
                all.push(uncookie(t));
            } else if let Some(t) = d.pop_public_bottom() {
                all.push(uncookie(t));
            } else {
                break;
            }
        }
        check_no_loss_no_dup(all, 1)?;
        let (bot, public_bot, age) = d.raw_state();
        if (bot, public_bot, age.top) != (0, 0, 0) {
            return Err(format!(
                "non-canonical empty state after repair: bot={bot} \
                 public_bot={public_bot} top={}",
                age.top
            ));
        }
        Ok(())
    });
    report.assert_exhaustive_pass("§4 owner-vs-handler with index repair");
}

/// Supervision (DESIGN.md §5e): a dying owner's last-gasp `expose_all`
/// racing a thief's steal, with a handler exposure still injectable on the
/// owner (a SIGUSR1 can land mid-unwind, before the handler ctx is torn
/// down). The whole-region publish must not double-publish the task the
/// thief is concurrently taking, and afterwards every task must be
/// rescuable by thieves exactly once, with nothing left private
/// (stranded).
#[test]
fn dying_owner_expose_all_vs_thief_and_handler() {
    for ntasks in [1, 2, 3] {
        let report = explore(Options::default(), || {
            let d = SplitDeque::new(8);
            for i in 0..ntasks {
                d.push_bottom(cookie(i));
            }
            // Mid-run state: one task already public, so the thief races
            // the boundary move itself, not just its result.
            d.update_public_bottom(ExposurePolicy::One);
            let taken = Mutex::new(Vec::new());
            Execution::new()
                .thread("dying-owner", || {
                    pause();
                    d.expose_all();
                    pause();
                })
                .thread("thief", || {
                    for _ in 0..2 {
                        if let Steal::Ok(t) = d.pop_top() {
                            taken.lock().unwrap().push(uncookie(t));
                        }
                    }
                })
                .handler_on(0, || {
                    d.update_public_bottom(ExposurePolicy::One);
                })
                .run();
            // Rescue drain, thief-side only: the owner is dead, so steals
            // are the single remaining path to its tasks.
            let mut all = taken.into_inner().unwrap();
            loop {
                match d.pop_top() {
                    Steal::Ok(t) => all.push(uncookie(t)),
                    Steal::Abort => continue,
                    Steal::Empty | Steal::PrivateWork => break,
                }
            }
            check_no_loss_no_dup(all, ntasks)?;
            let (bot, public_bot, _) = d.raw_state();
            if public_bot != bot {
                return Err(format!(
                    "stranded private work after expose_all: bot={bot} \
                     public_bot={public_bot}"
                ));
            }
            Ok(())
        });
        report.assert_exhaustive_pass("dying-owner expose_all vs thief + handler");
        assert!(
            report.schedules >= 10,
            "expected a real interleaving space, got {}",
            report.schedules
        );
    }
}

// ---------------------------------------------------------------------------
// Ring growth (the Resize decision point).
// ---------------------------------------------------------------------------

/// Owner-grow vs thief-steal vs handler-expose on a capacity-2 split
/// deque: the owner's third push must double the ring, so its grow-publish
/// store and the thief's buffer capture become scheduling points. The DFS
/// covers both sides of the race that decides whether growth happens at
/// all — if the thief's CAS lands before the owner's full-check refresh,
/// `top` has advanced and the push fits without growing — and, in the
/// growing branch, every placement of the thief's capture and the
/// handler's exposure around the copy/publish window. Stale captures must
/// be harmless (the thief's `age` CAS validates them) and the retired
/// ring's contents must never be re-read after a steal.
#[test]
fn split_resize_vs_thief_and_handler() {
    let ntasks = 3;
    let report = explore(Options::default(), || {
        let d = SplitDeque::new(2);
        d.push_bottom(cookie(0));
        d.push_bottom(cookie(1));
        // Seed the public part so the thief races the growth, not just the
        // exposure.
        d.update_public_bottom(ExposurePolicy::One);
        let taken = Mutex::new(Vec::new());
        Execution::new()
            .thread("owner", || {
                pause();
                // The ring holds 2 of 2 slots: this push grows 2 → 4
                // unless the thief's steal already advanced `top`.
                d.push_bottom(cookie(2));
                let job = d
                    .pop_bottom(PopBottomMode::SignalSafe)
                    .or_else(|| d.pop_public_bottom());
                if let Some(t) = job {
                    taken.lock().unwrap().push(uncookie(t));
                }
                pause();
            })
            .thread("thief", || {
                if let Steal::Ok(t) = d.pop_top() {
                    taken.lock().unwrap().push(uncookie(t));
                }
            })
            .handler_on(0, || {
                d.update_public_bottom(ExposurePolicy::One);
            })
            .run();
        if d.generation() > 1 {
            return Err(format!(
                "at most one doubling is reachable, generation = {}",
                d.generation()
            ));
        }
        let mut all = taken.into_inner().unwrap();
        loop {
            if let Some(t) = d.pop_bottom(PopBottomMode::SignalSafe) {
                all.push(uncookie(t));
            } else if let Some(t) = d.pop_public_bottom() {
                all.push(uncookie(t));
            } else {
                break;
            }
        }
        check_no_loss_no_dup(all, ntasks)?;
        let (bot, public_bot, age) = d.raw_state();
        if (bot, public_bot, age.top) != (0, 0, 0) {
            return Err(format!(
                "non-canonical empty state: bot={bot} public_bot={public_bot} \
                 top={} (expected 0/0/0)",
                age.top
            ));
        }
        Ok(())
    });
    report.assert_exhaustive_pass("split resize vs thief vs handler");
    assert!(
        report.schedules >= 100,
        "resize + handler injection must multiply the schedule count, got {}",
        report.schedules
    );
}

/// Owner-grow vs thief-steal on a capacity-2 ABP deque: same Resize
/// decision point over the fully-concurrent deque, where the thief's
/// capture races the owner's publish directly (no exposure step).
#[test]
fn abp_resize_vs_thief() {
    let ntasks = 3;
    let report = explore(Options::default(), || {
        let d = AbpDeque::new(2);
        d.push_bottom(cookie(0));
        d.push_bottom(cookie(1));
        let taken = Mutex::new(Vec::new());
        Execution::new()
            .thread("owner", || {
                d.push_bottom(cookie(2));
                if let Some(t) = d.pop_bottom() {
                    taken.lock().unwrap().push(uncookie(t));
                }
            })
            .thread("thief", || {
                if let AbpSteal::Ok(t) = d.pop_top() {
                    taken.lock().unwrap().push(uncookie(t));
                }
            })
            .run();
        if d.generation() > 1 {
            return Err(format!(
                "at most one doubling is reachable, generation = {}",
                d.generation()
            ));
        }
        let mut all = taken.into_inner().unwrap();
        while let Some(t) = d.pop_bottom() {
            all.push(uncookie(t));
        }
        check_no_loss_no_dup(all, ntasks)?;
        let (bot, age) = d.raw_state();
        if (bot, age.top) != (0, 0) {
            return Err(format!(
                "non-canonical empty state: bot={bot} top={} (expected 0/0)",
                age.top
            ));
        }
        Ok(())
    });
    report.assert_exhaustive_pass("ABP resize vs thief");
    assert!(
        report.schedules >= 20,
        "expected a real interleaving space, got {}",
        report.schedules
    );
}

// ---------------------------------------------------------------------------
// Index wraparound (PR 8): the same races across the u32 era boundary.
// ---------------------------------------------------------------------------

/// `check_split`, but with the deque's absolute indices re-anchored just
/// below `u32::MAX` so pushes, pops, steals, and exposures cross the wrap
/// boundary *during* the race. The emptiness/ordering guards are
/// `sdist`-based (wrap-safe signed distance) rather than raw comparisons;
/// a regression to raw `<`/`== 0` reasoning shows up here as task loss
/// (e.g. the old SignalSafe guard read `bot == 0` as "empty" — on a
/// wrapped era that is a *full* deque whose bottom index happens to be 0).
///
/// The canonical-empty assertion is relaxed to "all three indices equal":
/// the `bot ← 0` repair re-anchors only at the era base (`public_bot == 0
/// && top == 0`), so a deque drained privately in a wrapped era rests at
/// its wrapped indices — empty, consistent, just not at zero.
fn check_split_wrapped(
    mode: PopBottomMode,
    policy: ExposurePolicy,
    exposer: Exposer,
    ntasks: usize,
    start: u32,
) -> Report {
    explore(Options::default(), || {
        let d = SplitDeque::new(8);
        d.set_start_index(start);
        for i in 0..ntasks {
            d.push_bottom(cookie(i));
        }
        let taken = Mutex::new(Vec::new());

        let exec = Execution::new()
            .thread("owner", || {
                pause();
                if exposer == Exposer::Owner {
                    d.update_public_bottom(policy);
                }
                let job = d.pop_bottom(mode).or_else(|| d.pop_public_bottom());
                if let Some(t) = job {
                    taken.lock().unwrap().push(uncookie(t));
                }
                pause();
            })
            .thread("thief", || {
                if let Steal::Ok(t) = d.pop_top() {
                    taken.lock().unwrap().push(uncookie(t));
                }
            });
        let exec = match exposer {
            Exposer::Owner => exec,
            Exposer::Handler => exec.handler_on(0, || {
                d.update_public_bottom(policy);
            }),
        };
        exec.run();

        let mut all = taken.into_inner().unwrap();
        loop {
            if let Some(t) = d.pop_bottom(PopBottomMode::SignalSafe) {
                all.push(uncookie(t));
            } else if let Some(t) = d.pop_public_bottom() {
                all.push(uncookie(t));
            } else {
                break;
            }
        }
        check_no_loss_no_dup(all, ntasks)?;

        let (bot, public_bot, age) = d.raw_state();
        if bot != public_bot || public_bot != age.top {
            return Err(format!(
                "inconsistent empty state across the index boundary: \
                 bot={bot} public_bot={public_bot} top={}",
                age.top
            ));
        }
        Ok(())
    })
}

/// Signal pairing (SignalSafe + One, handler injection) with every index
/// crossing the u32 boundary mid-race. With `start = u32::MAX - 1` and two
/// tasks, `bot` sits at exactly 0 while the deque is full — the state the
/// pre-`sdist` emptiness guards misread.
#[test]
fn wrapped_era_signalsafe_handler_race() {
    for ntasks in [1, 2, 3] {
        let report = check_split_wrapped(
            PopBottomMode::SignalSafe,
            ExposurePolicy::One,
            Exposer::Handler,
            ntasks,
            u32::MAX - 1,
        );
        report.assert_exhaustive_pass("wrapped era (SignalSafe + One, handler)");
        assert!(
            report.schedules >= 10,
            "expected a real interleaving space, got {}",
            report.schedules
        );
    }
}

/// USLCWS pairing (Standard + One, owner-side exposure) across the same
/// boundary: the Standard pop's decrement and the public-bottom compare
/// both wrap.
#[test]
fn wrapped_era_uslcws_owner_race() {
    for ntasks in [1, 2] {
        check_split_wrapped(
            PopBottomMode::Standard,
            ExposurePolicy::One,
            Exposer::Owner,
            ntasks,
            u32::MAX - 1,
        )
        .assert_exhaustive_pass("wrapped era (Standard + One, owner-side)");
    }
}

/// Half exposure across the boundary: `round(r/2)` of the public-bottom
/// advance lands on the far side of the wrap while the thief steals from
/// just below it.
#[test]
fn wrapped_era_half_exposure_race() {
    for ntasks in [2, 3] {
        check_split_wrapped(
            PopBottomMode::SignalSafe,
            ExposurePolicy::Half,
            Exposer::Handler,
            ntasks,
            u32::MAX - 2,
        )
        .assert_exhaustive_pass("wrapped era (SignalSafe + Half, handler)");
    }
}

// ---------------------------------------------------------------------------
// Batch steals (this PR): the multi-slot take's single validating CAS.
// ---------------------------------------------------------------------------

/// A batch thief racing the owner's SignalSafe pop while a handler exposes
/// Half — the full Expose Half + StealAmount::Half pairing. The batch
/// thief's k slot reads are validated by one age CAS (§4's argument
/// extended to multi-slot takes: the CAS pins `{tag, top}`, and concurrent
/// exposures only move `public_bot` away from the stolen range); the
/// explorer must find no interleaving where a slot is delivered twice or
/// dropped, including handler exposures landing between the batch's slot
/// reads and its CAS.
fn check_split_batch(ntasks: usize, start: Option<u32>) -> Report {
    explore(Options::default(), || {
        let d = SplitDeque::new(8);
        if let Some(s) = start {
            d.set_start_index(s);
        }
        for i in 0..ntasks {
            d.push_bottom(cookie(i));
        }
        let taken = Mutex::new(Vec::new());
        Execution::new()
            .thread("owner", || {
                pause();
                let job = d
                    .pop_bottom(PopBottomMode::SignalSafe)
                    .or_else(|| d.pop_public_bottom());
                if let Some(t) = job {
                    taken.lock().unwrap().push(uncookie(t));
                }
                pause();
            })
            .thread("batch-thief", || {
                let mut extras = Vec::new();
                if let Steal::Ok(t) = d.pop_top_batch(&mut extras, STEAL_BATCH_MAX - 1) {
                    let mut g = taken.lock().unwrap();
                    g.push(uncookie(t));
                    g.extend(extras.into_iter().map(uncookie));
                }
            })
            .handler_on(0, || {
                d.update_public_bottom(ExposurePolicy::Half);
            })
            .run();

        let mut all = taken.into_inner().unwrap();
        loop {
            if let Some(t) = d.pop_bottom(PopBottomMode::SignalSafe) {
                all.push(uncookie(t));
            } else if let Some(t) = d.pop_public_bottom() {
                all.push(uncookie(t));
            } else {
                break;
            }
        }
        check_no_loss_no_dup(all, ntasks)?;

        let (bot, public_bot, age) = d.raw_state();
        if bot != public_bot || public_bot != age.top {
            return Err(format!(
                "inconsistent empty state after batch race: bot={bot} \
                 public_bot={public_bot} top={}",
                age.top
            ));
        }
        Ok(())
    })
}

#[test]
fn batch_steal_vs_owner_and_handler() {
    for ntasks in [2, 3] {
        let report = check_split_batch(ntasks, None);
        report.assert_exhaustive_pass("batch steal (SignalSafe + Half + batch CAS)");
        assert!(
            report.schedules >= 100,
            "handler injection must multiply the schedule count, got {}",
            report.schedules
        );
    }
}

/// The same batch race re-anchored just below `u32::MAX`: the batch's
/// `top.wrapping_add(i)` slot walk and its `with_top_advanced(k)` CAS both
/// straddle the era boundary. A regression to raw index arithmetic in the
/// k-computation (`avail` as unsigned difference) or the slot loop shows
/// up as loss or double-delivery here.
#[test]
fn wrapped_era_batch_steal_race() {
    for ntasks in [2, 3] {
        check_split_batch(ntasks, Some(u32::MAX - 2))
            .assert_exhaustive_pass("wrapped era batch steal");
    }
}

/// Two thieves — one batch, one scalar — fighting over a pre-exposed run
/// of tasks, with no owner or handler in the race (their interplay is
/// covered above; leaving them out keeps the space exhaustively small).
/// Exactly one CAS can win each slot range: the batch's multi-slot take
/// and the scalar steal must partition the public region with no slot
/// delivered twice and none dropped, in every interleaving — including the
/// one where the scalar CAS lands between the batch's slot reads and its
/// validating CAS (which must then abort or re-window, never deliver stale
/// slots).
#[test]
fn batch_steal_vs_scalar_steal_single_winner_per_slot() {
    for ntasks in [2, 3] {
        let report = explore(Options::default(), || {
            let d = SplitDeque::new(8);
            for i in 0..ntasks {
                d.push_bottom(cookie(i));
            }
            // Whole region public: the two thieves race pure steal CASes.
            d.expose_all();
            let taken = Mutex::new(Vec::new());
            Execution::new()
                .thread("batch-thief", || {
                    let mut extras = Vec::new();
                    if let Steal::Ok(t) = d.pop_top_batch(&mut extras, STEAL_BATCH_MAX - 1) {
                        let mut g = taken.lock().unwrap();
                        g.push(uncookie(t));
                        g.extend(extras.into_iter().map(uncookie));
                    }
                })
                .thread("scalar-thief", || {
                    if let Steal::Ok(t) = d.pop_top() {
                        taken.lock().unwrap().push(uncookie(t));
                    }
                })
                .run();
            // Thief-side rescue drain, as after an owner death.
            let mut all = taken.into_inner().unwrap();
            loop {
                match d.pop_top() {
                    Steal::Ok(t) => all.push(uncookie(t)),
                    Steal::Abort => continue,
                    Steal::Empty | Steal::PrivateWork => break,
                }
            }
            check_no_loss_no_dup(all, ntasks)
        });
        report.assert_exhaustive_pass("batch CAS vs scalar CAS single winner");
        assert!(
            report.schedules >= 10,
            "expected a real interleaving space, got {}",
            report.schedules
        );
    }
}

// ---------------------------------------------------------------------------
// Negative: the known-unsound pairing must be *detected*.
// ---------------------------------------------------------------------------

/// `Standard` pop + `Half` exposure is the combination §4 warns about: the
/// handler can expose the task the owner has already committed to taking
/// (between the owner's `public_bot` load and its `bot` store), after which
/// a thief steals the same slot — a double-take. The explorer must find it.
#[test]
fn standard_half_double_take_detected() {
    let report = check_split(
        PopBottomMode::Standard,
        ExposurePolicy::Half,
        Exposer::Handler,
        1,
    );
    let v = report
        .violation
        .expect("Standard+Half must double-take under handler exposure");
    assert!(
        v.message.contains("loss/duplication"),
        "unexpected violation kind: {}",
        v.message
    );
    assert!(
        v.trace.iter().any(|l| l.contains("SIGUSR1")),
        "the counterexample must involve a signal delivery:\n{}",
        v.render()
    );
    assert!(!v.schedule.is_empty());
    // The rendered trace is the artefact EXPERIMENTS.md walks through.
    eprintln!("{}", v.render());
}

/// Same unsoundness, base policy: `Standard` + `One` under handler
/// exposure double-takes too (this is *why* the base signal variant uses
/// the SignalSafe pop).
#[test]
fn standard_one_double_take_detected() {
    let report = check_split(
        PopBottomMode::Standard,
        ExposurePolicy::One,
        Exposer::Handler,
        1,
    );
    let v = report
        .violation
        .expect("Standard+One must double-take under handler exposure");
    assert!(v.message.contains("loss/duplication"));
    assert!(v.trace.iter().any(|l| l.contains("SIGUSR1")));
}
