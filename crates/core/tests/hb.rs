//! Happens-before checker soundness suite (ISSUE 9 satellite).
//!
//! Every test here drives a *sound* schedule — the five paper pairings, a
//! supervision death-storm round, and a trimmed many-producer ingress
//! stress — under full `hb` instrumentation and asserts that the checker
//! files **zero** race reports. The complementary negative tests (broken
//! orderings the checker MUST report) are unit tests in `src/hb.rs`, where
//! the crate-private `StackJob`/deque internals can be driven directly.
//!
//! The checker is process-global, so every test serializes on [`HB`] and
//! drains state with `hb::reset()` before running its scenario.

#![cfg(all(feature = "hb", not(feature = "model")))]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use lcws_core::{hb, join, par_for_grain, Counter, PoolBuilder, ThreadPool, Variant};

/// One hb scenario at a time, process-wide (the checker state is global).
static HB: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    HB.lock().unwrap_or_else(|e| e.into_inner())
}

/// Assert the checker filed nothing, printing every report on failure.
fn assert_clean(context: &str) {
    let reports = hb::take_reports();
    assert!(
        reports.is_empty(),
        "{context}: hb checker filed {} report(s):\n{}",
        reports.len(),
        reports.join("\n")
    );
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// The five sound pairings (WS, USLCWS, Signal, Conservative, Half): a
/// fork-join fib plus a tiny-grain `par_for` per variant, which together
/// exercise push/pop/steal, ring growth, exposure (owner- and
/// handler-side), and the sleeper — all of it instrumented.
#[test]
fn five_sound_pairings_report_no_races() {
    let _g = lock();
    for variant in Variant::ALL {
        hb::reset();
        let pool = ThreadPool::new(variant, 4);
        assert_eq!(pool.run(|| fib(16)), 987, "variant {variant}");
        let hits: Vec<AtomicU64> = (0..4096).map(|_| AtomicU64::new(0)).collect();
        pool.run(|| {
            par_for_grain(0..4096, 4, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        drop(pool);
        assert_clean(&format!("sound pairing {variant}"));
        assert_eq!(hb::report_count(), 0);
    }
}

/// A supervision round under hb: the panic-containment → expose-private →
/// quiesce path must be race-free, not just loss-free. Without
/// `faultpoints` this still runs the full run/drop lifecycle churn; with
/// it, a seeded `WorkerLoop` plan kills helpers mid-run first.
#[test]
fn supervision_round_reports_no_races() {
    let _g = lock();
    hb::reset();

    #[cfg(feature = "faultpoints")]
    {
        use lcws_core::fault::{install, FaultPlan, Site, SiteAction};
        use std::panic::{self, AssertUnwindSafe};

        let pool = PoolBuilder::new(Variant::Signal).threads(4).build();
        let guard = install(FaultPlan::new(0x5EED_0009).with(
            Site::WorkerLoop,
            SiteAction::fail_always().after(30).max_fires(2),
        ));
        let done = AtomicU64::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| {
                par_for_grain(0..4096, 1, |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        drop(guard);
        // The storm may or may not have fired depending on helper timing;
        // either way no task is lost and — the point here — no race is
        // filed by the containment/respawn protocol.
        if result.is_err() {
            assert_eq!(done.load(Ordering::Relaxed), 4096);
            // Healing run: the healer respawns dead slots.
            pool.run(|| {
                par_for_grain(0..1024, 4, |_| {});
            });
        }
        drop(pool);
    }

    // Lifecycle churn: build → run → drop across all variants.
    for variant in Variant::ALL {
        let pool = ThreadPool::new(variant, 3);
        let sum = AtomicU64::new(0);
        pool.run(|| {
            par_for_grain(0..2048, 8, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.into_inner(), 2048 * 2047 / 2, "variant {variant}");
    }
    assert_clean("supervision round");
}

/// The batch-steal CAS window under full instrumentation (this PR): the
/// multi-slot take records one speculative read per transferred slot and
/// commits them all on the single validating age CAS, so a stale read that
/// slipped past the validation would surface here as a racing-read report.
/// Skewed tiny-task rounds on the Expose Half + steal-half + near-first
/// composition drive real batches (retrying across rounds — one round can
/// get unlucky with scheduling), and the checker must stay silent.
#[test]
fn batch_steal_window_reports_no_races() {
    use lcws_core::{scope, Policies, VictimSelection};

    let _g = lock();
    hb::reset();
    let mut batched = 0u64;
    for _round in 0..10 {
        let mut p = Policies::signal_half();
        p.victim = VictimSelection::NearFirst;
        let pool = PoolBuilder::new(Variant::SignalHalf)
            .policies(p)
            .threads(4)
            .build();
        let executed = AtomicU64::new(0);
        let (_, snap) = pool.run_measured(|| {
            scope(|s| {
                for _ in 0..2_000 {
                    let executed = &executed;
                    s.spawn(move || {
                        executed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(executed.into_inner(), 2_000, "skewed round lost tasks");
        batched += snap.steal_batch_tasks();
        drop(pool);
        if batched > 0 {
            break;
        }
    }
    assert!(
        batched > 0,
        "ten skewed rounds never drove a multi-slot take under hb"
    );
    assert_clean("batch-steal window");
    assert_eq!(hb::report_count(), 0);
}

/// Trimmed ingress stress (8 producers × 10⁴ tasks = 8×10⁴): external
/// submission through the global injector, batch pops, and targeted join
/// wakes — zero reports, and the `hb_reports` counter that feeds the sweep
/// CSV agrees with the checker.
#[test]
fn trimmed_ingress_stress_reports_no_races() {
    let _g = lock();
    hb::reset();
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 10_000;
    let pool = Arc::new(PoolBuilder::new(Variant::Signal).threads(4).build());
    pool.serve();
    let executed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..PRODUCERS {
            let pool = Arc::clone(&pool);
            let executed = Arc::clone(&executed);
            s.spawn(move || {
                for _ in 0..PER_PRODUCER {
                    let executed = Arc::clone(&executed);
                    drop(pool.spawn(move || {
                        executed.fetch_add(1, Ordering::Relaxed);
                    }));
                }
            });
        }
    });
    let snap = pool.shutdown();
    assert_eq!(
        executed.load(Ordering::Relaxed),
        (PRODUCERS * PER_PRODUCER) as u64,
        "tasks lost in the trimmed ingress stress"
    );
    // The checker's verdict and the metrics pipeline must agree: the
    // counter is how sweep CSVs surface hb findings.
    assert_eq!(snap.get(Counter::HbReport), 0, "hb_reports counter nonzero");
    assert_eq!(snap.hb_reports(), 0);
    assert_clean("trimmed ingress stress");
}
